#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace chk::util {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  bool passthrough = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (passthrough) { positional_.emplace_back(arg); continue; }
    if (arg == "--") { passthrough = true; continue; }
    if (arg.starts_with("--")) {
      // Unambiguous grammar: --key=value assigns, --no-key clears, bare
      // --key is boolean true. (A "--key value" form would make "value"
      // indistinguishable from a positional argument.)
      std::string_view body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string_view::npos) {
        values_[std::string(body.substr(0, eq))] = std::string(body.substr(eq + 1));
      } else if (body.starts_with("no-")) {
        values_[std::string(body.substr(3))] = "false";
      } else {
        values_[std::string(body)] = "true";
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.contains(key); }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

namespace {

/// Full-string numeric parse; "" / "0.5x" / "nan" all fail.
double parse_strict(const std::string& key, const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || v != v) {
    throw std::invalid_argument("--" + key + ": expected a number, got \"" + text + "\"");
  }
  return v;
}

}  // namespace

double Cli::get_prob(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const double v = parse_strict(key, it->second);
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument("--" + key + ": probability must be in [0, 1], got " +
                                it->second);
  }
  return v;
}

double Cli::get_nonneg_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const double v = parse_strict(key, it->second);
  if (v < 0.0) {
    throw std::invalid_argument("--" + key + ": value must be >= 0, got " + it->second);
  }
  return v;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

bool verify_requested(const Cli& cli) {
#ifdef CHK_INVARIANTS
  return cli.get_bool("verify", true);
#else
  return cli.get_bool("verify", false);
#endif
}

}  // namespace chk::util
