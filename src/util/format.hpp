// Formatting shim.
//
// The toolchain (GCC 12) does not ship <format>, so we use the vendored
// header-only {fmt} library under the project alias chk::util::format.
// Call sites use CHK_FORMAT-style compile-time checked format strings via
// fmt's FMT_STRING-free API (fmt checks literals at compile time since v8).
#pragma once

#define FMT_HEADER_ONLY 1
#include <fmt/format.h>

namespace chk::util {

using fmt::format;

template <typename... T>
using format_string = fmt::format_string<T...>;

}  // namespace chk::util
