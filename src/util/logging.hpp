// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded at any instant (the
// DES kernel serializes simulated processes), so no locking is needed on
// the hot path; a mutex still guards the sink for safety when host-side
// tooling logs from other threads (CP.1).
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

#include "util/format.hpp"

namespace chk::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

std::string_view to_string(LogLevel level) noexcept;

class Logger {
 public:
  /// Process-wide logger. Defaults to kWarn so tests and benches stay quiet.
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Redirect output (default: stderr). The stream must outlive the logger use.
  void set_sink(std::ostream* sink) noexcept;

  void write(LogLevel level, std::string_view component, std::string_view message);

  template <typename... Args>
  void log(LogLevel level, std::string_view component,
           format_string<Args...> fmt, Args&&... args) {
    if (!enabled(level)) return;
    write(level, component, format(fmt, std::forward<Args>(args)...));
  }

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_;
  std::mutex mutex_;
};

#define CHK_LOG(level, component, ...)                                        \
  do {                                                                        \
    auto& chk_logger_ = ::chk::util::Logger::instance();                      \
    if (chk_logger_.enabled(level)) chk_logger_.log(level, component, __VA_ARGS__); \
  } while (false)

#define CHK_TRACE(component, ...) CHK_LOG(::chk::util::LogLevel::kTrace, component, __VA_ARGS__)
#define CHK_DEBUG(component, ...) CHK_LOG(::chk::util::LogLevel::kDebug, component, __VA_ARGS__)
#define CHK_INFO(component, ...) CHK_LOG(::chk::util::LogLevel::kInfo, component, __VA_ARGS__)
#define CHK_WARN(component, ...) CHK_LOG(::chk::util::LogLevel::kWarn, component, __VA_ARGS__)
#define CHK_ERROR(component, ...) CHK_LOG(::chk::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace chk::util
