#include "util/logging.hpp"

#include <iostream>

namespace chk::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() : sink_(&std::cerr) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) noexcept {
  std::scoped_lock lock(mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  std::scoped_lock lock(mutex_);
  if (sink_ == nullptr) return;
  *sink_ << '[' << to_string(level) << "] " << component << ": " << message << '\n';
}

}  // namespace chk::util
