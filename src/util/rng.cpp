#include "util/rng.hpp"

#include <cmath>

namespace chk::util {

double Rng::log_approx(double x) noexcept { return std::log(x); }

}  // namespace chk::util
