// Minimal binary serialization for checkpoint images and metadata.
//
// Fixed little-endian-as-memcpy encoding (the simulation never crosses a
// real machine boundary); length-prefixed strings and blobs; explicit
// bounds checking on read so corrupt images fail loudly instead of UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace chk::util {

class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), raw, raw + sizeof(T));
  }

  void put_bytes(std::span<const std::byte> bytes) {
    put<std::uint64_t>(bytes.size());
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  void put_string(const std::string& s) {
    put_bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* raw = reinterpret_cast<const std::byte*>(v.data());
    buffer_.insert(buffer_.end(), raw, raw + v.size() * sizeof(T));
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T value;
    require(sizeof(T));
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::vector<std::byte> get_bytes() {
    const auto n = get<std::uint64_t>();
    require(n);
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Zero-copy view of a length-prefixed blob (valid while source lives).
  std::span<const std::byte> get_bytes_view() {
    const auto n = get<std::uint64_t>();
    require(n);
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  std::string get_string() {
    const auto view = get_bytes_view();
    return std::string(reinterpret_cast<const char*>(view.data()), view.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> out(n);
    if (n > 0) std::memcpy(out.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  void require(std::uint64_t n) const {
    if (pos_ + n > data_.size()) {
      throw SerializeError("ByteReader: truncated input");
    }
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// View of a trivially copyable object as writable bytes.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<std::byte> as_writable_bytes_of(T& value) {
  return std::span<std::byte>(reinterpret_cast<std::byte*>(&value), sizeof(T));
}

/// View of a vector's elements as writable bytes.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::span<std::byte> as_writable_bytes_of(std::vector<T>& v) {
  return std::span<std::byte>(reinterpret_cast<std::byte*>(v.data()), v.size() * sizeof(T));
}

}  // namespace chk::util
