// Deterministic pseudo-random number generation for the simulator.
//
// Every source of randomness in the project flows through Rng so that a
// given experiment seed reproduces bit-identical runs. The generator is
// xoshiro256** seeded via splitmix64; independent streams are derived with
// Rng::fork so that subsystems (per-node timers, workload generators, ...)
// do not perturb each other's sequences.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace chk::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream. The tag keeps forks for different
  /// purposes decorrelated even when issued in a different order.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept {
    std::uint64_t mix = (*this)() ^ (tag * 0x2545f4914f6cdd1dull);
    return Rng{splitmix64(mix)};
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid bias.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (> 0). Used for jittered timers.
  double exponential(double mean) noexcept {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * log_approx(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // std::log is not constexpr-friendly in all toolchains; keep a thin
  // wrapper so the header stays <cmath>-free for fast compiles.
  static double log_approx(double x) noexcept;

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace chk::util
