// Tiny command-line flag parser used by examples and bench binaries.
// Supports --name=value, --name value and boolean --flag forms; unknown
// flags are preserved so google-benchmark flags can pass through.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chk::util {

class Cli {
 public:
  /// Parses argv, consuming recognized "--key[=value]" tokens. Tokens after
  /// "--" and unrecognized tokens are kept in remaining().
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Strict probability flag: the whole value must parse as a number in
  /// [0, 1]. Throws std::invalid_argument naming the flag otherwise.
  [[nodiscard]] double get_prob(const std::string& key, double fallback) const;
  /// Strict non-negative flag: the whole value must parse as a number >= 0.
  /// Throws std::invalid_argument naming the flag otherwise.
  [[nodiscard]] double get_nonneg_double(const std::string& key, double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Shared "--verify" / "--no-verify" convention for example and bench
/// binaries: run with the protocol invariant monitor installed. The default
/// follows the build: on under CHK_INVARIANTS, off otherwise.
[[nodiscard]] bool verify_requested(const Cli& cli);

}  // namespace chk::util
