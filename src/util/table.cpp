#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include "util/format.hpp"
#include <sstream>
#include <utility>

namespace chk::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_separator() { separators_.push_back(rows_.size()); }

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digit_seen = true;
    else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ' ' &&
             c != 'e' && c != 'E' && c != 'x' && c != 'K' && c != 'M' &&
             c != 'G' && c != 'B' && c != 'i' && c != 's')
      return false;
  }
  return digit_seen;
}

}  // namespace

std::string Table::render(const std::string& title) const {
  const std::size_t ncols = header_.size();
  std::vector<std::size_t> width(ncols);
  std::vector<bool> numeric(ncols, true);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < ncols; ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!row[c].empty() && !looks_numeric(row[c])) numeric[c] = false;
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t c = 0; c < ncols; ++c) line += std::string(width[c] + 2, '-') + "+";
    return line + "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right_numeric) {
    std::string line = "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      line += ' ';
      if (align_right_numeric && numeric[c]) {
        line.append(pad, ' ').append(cell);
      } else {
        line.append(cell).append(pad, ' ');
      }
      line += " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  out << rule() << emit_row(header_, false) << rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end()) out << rule();
    out << emit_row(rows_[r], true);
  }
  out << rule();
  return out.str();
}

std::string Table::fixed(double value, int digits) {
  return util::format("{:.{}f}", value, digits);
}

std::string Table::percent(double fraction, int digits) {
  return util::format("{:.{}f} %", fraction * 100.0, digits);
}

std::string Table::seconds(double value) {
  if (value < 0.1) return util::format("{:.4f}s", value);
  return util::format("{:.2f}s", value);
}

std::string Table::bytes(double value) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  int unit = 0;
  while (value >= 1024.0 && unit < 3) { value /= 1024.0; ++unit; }
  return util::format("{:.1f} {}", value, kUnits[unit]);
}

std::string Table::integer(long long value) { return util::format("{}", value); }

}  // namespace chk::util
