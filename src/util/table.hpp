// ASCII table rendering for the paper-style result tables printed by the
// benchmark harness (Tables 1-3 of the paper and the ablation studies).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace chk::util {

/// Column-aligned text table. Cells are strings; use Table::cell helpers
/// for consistent numeric formatting across all benches.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Insert a horizontal separator before the next row.
  void add_separator();

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with a title, column alignment (numbers right-aligned
  /// heuristically), and box-drawing separators.
  [[nodiscard]] std::string render(const std::string& title = {}) const;

  // Formatting helpers shared by all benches.
  static std::string fixed(double value, int digits);
  static std::string percent(double fraction, int digits);  // 0.0123 -> "1.23 %"
  static std::string seconds(double value);
  static std::string bytes(double value);
  static std::string integer(long long value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices that get a rule above
};

}  // namespace chk::util
