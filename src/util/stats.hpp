// Streaming statistics accumulators used by the experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace chk::util {

/// Welford online mean/variance plus min/max/sum.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) { *this = other; return; }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ = (na * mean_ + nb * other.mean_) / n;
    sum_ += other.sum_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a retained sample set (small sample counts here).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Nearest-rank percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace chk::util
