// svc: a request-serving workload — the paper's checkpoint schemes measured
// by what a live service feels, not by batch completion time.
//
// A sharded in-memory key-value store is hosted on the existing ranks: keys
// are hash-partitioned, each rank owns one shard and also runs an open-loop
// Poisson client population (the stand-in for "millions of users" — the
// aggregate arrival process of a large population is Poisson, so one
// forked, schedule-independent RNG stream per rank with a fixed draw order
// generates it exactly). Requests and responses are ordinary application
// messages over the comm/transport layer, so the link and storage fault
// domains compose with the workload for free; the shard state is registered
// with the checkpoint registry (dynamic regions — it grows and shrinks with
// the put/delete mix) and recovered through the normal stable-storage door.
//
// The measurement is per-request end-to-end latency against the *scheduled*
// arrival time: a request that lands while its owner rank is frozen,
// draining a checkpoint, or replaying after a rollback waits, and that wait
// is the scheme's cost. Latencies land in a power-of-two log histogram kept
// in registered state (deterministic across replay), and the wait from
// scheduled arrival to service start is emitted as kSvcQueueWait spans for
// the attribution buckets.
//
// Conflict resolution is last-writer-wins on a version derived from
// (scheduled arrival, client rank, request seq). The final shard contents
// are then a pure function of the generated request *set* — independent of
// message interleaving, scheme, and fault timing — which is what makes the
// result digest comparable across all five schemes and checkable against a
// simulator-free reference (svc_reference_digest).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chklib/runtime.hpp"

namespace chk::svc {

using chklib::AppContext;
using chklib::AppFn;
using chklib::Rank;

/// RNG stream tag for the per-rank client population: the stream is forked
/// off the rank's root stream and kept inside registered state, so replay
/// after a rollback continues the draw sequence exactly.
inline constexpr std::uint64_t kSvcStreamTag = 0x57C0;

/// Latency histogram range: power-of-two buckets from 2^13 ns (~8 us, well
/// below one request's service time) to 2^40 ns (~18 min, far above any
/// recovery window). +1 bucket for overflow.
inline constexpr int kLatMinExp = 13;
inline constexpr int kLatMaxExp = 40;
inline constexpr std::size_t kLatBuckets =
    static_cast<std::size_t>(kLatMaxExp - kLatMinExp + 1) + 1;

/// Merged workload metrics, filled in by rank 0 when the service drains
/// (reduce over all ranks; survives only the final, completed execution, so
/// faulty runs report the state that actually terminated).
struct SvcMetrics {
  std::uint64_t issued = 0;      ///< requests generated (all ranks)
  std::uint64_t completed = 0;   ///< responses observed by their client
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t hits = 0;        ///< gets that found a live value
  std::uint64_t live_keys = 0;   ///< non-tombstone entries at drain
  std::uint64_t live_bytes = 0;  ///< their value bytes at drain
  std::uint64_t latency_sum_ns = 0;
  std::uint64_t latency_max_ns = 0;
  std::uint64_t queue_wait_sum_ns = 0;  ///< scheduled arrival -> service start
  /// Merged end-to-end latency counts, kLatBuckets entries binned by
  /// obs::LogHistogram::bucket_of(lat_ns, kLatMinExp, kLatMaxExp).
  std::vector<std::uint64_t> latency_counts;
};

struct SvcParams {
  std::uint64_t keys = 4096;   ///< keyspace size (hash-partitioned)
  std::uint64_t prefill = 512; ///< keys [0, prefill) pre-populated at init
  double zipf_s = 0.9;         ///< keyspace skew exponent (0 = uniform)
  double arrival_hz = 400.0;   ///< per-rank open-loop arrival rate
  double horizon_s = 4.0;      ///< arrivals are scheduled in [0, horizon)
  double get_frac = 0.70;      ///< op mix: gets
  double put_frac = 0.25;      ///< puts; the remainder are deletes
  std::uint32_t min_value_bytes = 64;
  std::uint32_t max_value_bytes = 512;
  double service_flops = 40.0;   ///< owner-side CPU per request
  double flops_per_byte = 0.05;  ///< plus this per value byte moved
  /// When set, rank 0 stores the merged SvcMetrics here at drain.
  std::shared_ptr<SvcMetrics> sink;
};

/// Rank that owns `key`'s shard.
[[nodiscard]] std::size_t svc_owner(std::uint64_t key, std::size_t nprocs) noexcept;

/// Build the service application (one AppFn hosting shard + clients).
[[nodiscard]] AppFn make_svc(SvcParams params);

/// The digest make_svc's rank 0 reports, computed without the simulator by
/// generating every rank's request schedule and applying last-writer-wins
/// directly. `seed` is the experiment seed (ExperimentConfig::seed).
[[nodiscard]] double svc_reference_digest(const SvcParams& params, std::size_t nprocs,
                                          std::uint64_t seed);

}  // namespace chk::svc
