#include "svc/kvstore.hpp"

#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include <algorithm>

#include "chklib/comm/typed.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"

namespace chk::svc {

namespace {

/// Every svc message travels under ONE application tag, with the frame
/// kind inside an 8-byte prologue. The event loop must block on
/// "anything the service can receive" — and a wildcard-tag recv would
/// also match the reserved collective tags of the drain-time reductions,
/// stealing a peer's reduction frame while this rank is still serving.
constexpr int kTagSvc = 100;

constexpr std::uint64_t kKindRequest = 1;
constexpr std::uint64_t kKindResponse = 2;
constexpr std::uint64_t kKindFin = 3;

constexpr std::uint8_t kOpGet = 0;
constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpDelete = 2;

constexpr std::uint32_t kTombstone = 1;

/// One stored key. `off` points into the shard's value heap; tombstones
/// keep their key and LWW version so later lower-versioned mutations stay
/// suppressed regardless of arrival order.
struct Entry {
  std::uint64_t key = 0;
  std::uint64_t ver = 0;
  std::uint64_t off = 0;
  std::uint32_t len = 0;
  std::uint32_t flags = 0;
};
static_assert(std::is_trivially_copyable_v<Entry>);

struct ReqHeader {
  std::uint64_t kind = kKindRequest;
  std::uint64_t key = 0;
  std::uint64_t ver = 0;      ///< LWW version; 0 for gets
  std::int64_t sched_ns = 0;  ///< scheduled (open-loop) arrival instant
  std::uint32_t len = 0;      ///< put: value bytes (carried in the payload)
  std::uint16_t client = 0;
  std::uint8_t op = kOpGet;
  std::uint8_t pad0 = 0;
};
static_assert(std::is_trivially_copyable_v<ReqHeader> && sizeof(ReqHeader) == 40);

struct RespHeader {
  std::uint64_t kind = kKindResponse;
  std::int64_t sched_ns = 0;
  std::uint32_t len = 0;  ///< get hit: value bytes (carried in the payload)
  std::uint8_t hit = 0;
  std::uint8_t pad0[3] = {};
};
static_assert(std::is_trivially_copyable_v<RespHeader> && sizeof(RespHeader) == 24);

struct FinMsg {
  std::uint64_t kind = kKindFin;
  std::uint64_t sent = 0;  ///< requests this client sent you, total
};
static_assert(std::is_trivially_copyable_v<FinMsg> && sizeof(FinMsg) == 16);

/// Registered scalar state (one fixed-size region).
struct Scalars {
  util::Rng rng{0};            ///< the client population's draw stream
  std::int64_t next_arrival_ns = 0;
  std::uint64_t next_seq = 0;  ///< == requests issued so far
  std::uint64_t completed = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t hits = 0;
  std::uint64_t heap_live = 0;  ///< live (non-tombstone) value bytes
  std::uint64_t lat_sum_ns = 0;
  std::uint64_t lat_max_ns = 0;
  std::uint64_t queue_wait_sum_ns = 0;
  std::uint64_t fins_sent = 0;
};
static_assert(std::is_trivially_copyable_v<Scalars>);

/// Persistent per-rank state (survives restarts; registered pieces roll
/// back with the recovery line, so replay continues the schedule exactly).
struct SvcState {
  Scalars sc;
  std::vector<Entry> entries;            ///< shard (dynamic region)
  std::vector<std::byte> heap;           ///< value bytes (dynamic region)
  std::vector<std::uint64_t> lat_counts; ///< kLatBuckets, LogHistogram binning
  std::vector<std::uint64_t> sent_to;    ///< per peer: requests sent to them
  std::vector<std::uint64_t> served_from;///< per peer: their requests served
  std::vector<std::int64_t> fin_expect;  ///< per peer: fin count, -1 = none yet
};

std::uint64_t hash64(std::uint64_t x) noexcept {
  std::uint64_t s = x * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  return util::splitmix64(s);
}

/// LWW version: scheduled arrival first (the population's intent order),
/// client rank and per-rank seq as tie-breakers for same-nanosecond
/// arrivals. Bounds: sched < 2^43 ns (~2.4 h), <= 64 ranks.
std::uint64_t make_ver(std::int64_t sched_ns, std::size_t rank, std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(sched_ns) << 20) |
         ((static_cast<std::uint64_t>(rank) & 0x3F) << 14) | (seq & 0x3FFF);
}

std::uint32_t prefill_len(const SvcParams& p, std::uint64_t key) noexcept {
  const std::uint64_t span = p.max_value_bytes - p.min_value_bytes + 1;
  return p.min_value_bytes + static_cast<std::uint32_t>(hash64(key ^ 0xF1F0ull) % span);
}

/// Zipf(s) cumulative distribution over [0, keys); draw by binary search.
std::vector<double> build_zipf_cdf(std::uint64_t keys, double s) {
  std::vector<double> cdf(keys);
  double total = 0;
  for (std::uint64_t i = 0; i < keys; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::uint64_t draw_key(util::Rng& rng, const std::vector<double>& cdf) {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end() ? cdf.size() - 1
                         : static_cast<std::uint64_t>(it - cdf.begin());
}

std::int64_t draw_gap_ns(util::Rng& rng, double hz) {
  const auto ns = static_cast<std::int64_t>(std::llround(rng.exponential(1.0 / hz) * 1e9));
  return ns > 0 ? ns : 1;
}

/// One generated request, minus its scheduled instant (kept by the caller).
struct Drawn {
  std::uint64_t key = 0;
  std::uint8_t op = kOpGet;
  std::uint32_t len = 0;
};

/// Fixed draw order — key, op, len — for every request regardless of the
/// op actually chosen, so the stream is schedule-independent.
Drawn draw_request(util::Rng& rng, const std::vector<double>& cdf, const SvcParams& p) {
  Drawn d;
  d.key = draw_key(rng, cdf);
  const double op_u = rng.uniform();
  const double len_u = rng.uniform();
  d.op = op_u < p.get_frac          ? kOpGet
         : op_u < p.get_frac + p.put_frac ? kOpPut
                                          : kOpDelete;
  const std::uint64_t span = p.max_value_bytes - p.min_value_bytes + 1;
  d.len = p.min_value_bytes +
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(
              len_u * static_cast<double>(span)));
  return d;
}

void append_value(std::vector<std::byte>& heap, std::uint64_t key, std::uint64_t ver,
                  std::uint32_t len) {
  std::uint64_t s = key ^ (ver * 0x9e3779b97f4a7c15ull);
  for (std::uint32_t i = 0; i < len; ++i) {
    heap.push_back(static_cast<std::byte>(util::splitmix64(s) & 0xFF));
  }
}

Entry* find_entry(std::vector<Entry>& entries, std::uint64_t key) {
  for (Entry& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

/// Apply a mutation under last-writer-wins. Returns true if it took.
bool apply_mutation(SvcState& st, const ReqHeader& req) {
  Entry* e = find_entry(st.entries, req.key);
  if (e == nullptr) {
    st.entries.push_back(Entry{req.key, 0, 0, 0, kTombstone});
    e = &st.entries.back();
  }
  if (req.ver <= e->ver) return false;  // an older writer lost the race
  if ((e->flags & kTombstone) == 0) st.sc.heap_live -= e->len;
  e->ver = req.ver;
  if (req.op == kOpPut) {
    e->off = st.heap.size();
    e->len = req.len;
    e->flags = 0;
    append_value(st.heap, req.key, req.ver, req.len);
    st.sc.heap_live += req.len;
  } else {
    e->off = 0;
    e->len = 0;
    e->flags = kTombstone;
  }
  return true;
}

/// Reclaim heap holes once more than half the heap is dead. The shard's
/// registered size tracks the live working set, which is what makes the
/// checkpoint image bytes a measured curve rather than a constant.
void maybe_compact(SvcState& st) {
  if (st.heap.size() < 4096 || st.heap.size() < 2 * st.sc.heap_live) return;
  std::vector<std::byte> packed;
  packed.reserve(st.sc.heap_live);
  for (Entry& e : st.entries) {
    if ((e.flags & kTombstone) != 0) continue;
    const std::uint64_t off = packed.size();
    packed.insert(packed.end(), st.heap.begin() + static_cast<std::ptrdiff_t>(e.off),
                  st.heap.begin() + static_cast<std::ptrdiff_t>(e.off + e.len));
    e.off = off;
  }
  st.heap = std::move(packed);
}

/// Order-insensitive contribution of one entry to the result digest
/// (offsets excluded: they depend on apply order, the LWW outcome does not).
std::uint64_t entry_hash(const Entry& e) noexcept {
  const std::uint64_t tomb = (e.flags & kTombstone) != 0 ? 1 : 0;
  return hash64(e.key ^ (e.ver * 3) ^ (static_cast<std::uint64_t>(e.len) << 40) ^
                (tomb << 63)) %
         (1ull << 20);
}

void record_latency(SvcState& st, std::int64_t lat_ns) {
  const auto lat = static_cast<std::uint64_t>(lat_ns > 0 ? lat_ns : 0);
  ++st.lat_counts[obs::LogHistogram::bucket_of(lat, kLatMinExp, kLatMaxExp)];
  st.sc.lat_sum_ns += lat;
  if (lat > st.sc.lat_max_ns) st.sc.lat_max_ns = lat;
  ++st.sc.completed;
}

}  // namespace

std::size_t svc_owner(std::uint64_t key, std::size_t nprocs) noexcept {
  return hash64(key) % nprocs;
}

AppFn make_svc(SvcParams params) {
  return [params](AppContext& ctx) {
    const std::size_t nprocs = ctx.nprocs();
    const std::size_t rank = ctx.rank();
    const auto horizon_ns =
        static_cast<std::int64_t>(std::llround(params.horizon_s * 1e9));

    auto& st = ctx.state<SvcState>();
    if (ctx.fresh()) {
      st = SvcState{};
      st.sc.rng = ctx.fork_rng(kSvcStreamTag);
      st.sc.next_arrival_ns = draw_gap_ns(st.sc.rng, params.arrival_hz);
      st.lat_counts.assign(kLatBuckets, 0);
      st.sent_to.assign(nprocs, 0);
      st.served_from.assign(nprocs, 0);
      st.fin_expect.assign(nprocs, -1);
      for (std::uint64_t key = 0; key < params.prefill; ++key) {
        if (svc_owner(key, nprocs) != rank) continue;
        const std::uint32_t len = prefill_len(params, key);
        st.entries.push_back(Entry{key, 0, st.heap.size(), len, 0});
        append_value(st.heap, key, 0, len);
        st.sc.heap_live += len;
      }
    }
    ctx.register_value("svc/scalars", st.sc);
    ctx.register_dynamic_vector("svc/entries", st.entries);
    ctx.register_dynamic_vector("svc/heap", st.heap);
    ctx.register_vector("svc/lat_counts", st.lat_counts);
    ctx.register_vector("svc/sent_to", st.sent_to);
    ctx.register_vector("svc/served_from", st.served_from);
    ctx.register_vector("svc/fin_expect", st.fin_expect);
    ctx.ready();

    // Schedule-independent lookup table; rebuilt identically each start.
    const std::vector<double> cdf = build_zipf_cdf(params.keys, params.zipf_s);

    // Owner-side service: CPU work, LWW apply, response. Returns with the
    // simulation clock at this request's completion instant.
    auto serve = [&](const ReqHeader& req) {
      const std::int64_t start_ns = ctx.now().to_nanos();
      const std::int64_t wait_ns = start_ns - req.sched_ns;
      st.sc.queue_wait_sum_ns += static_cast<std::uint64_t>(wait_ns > 0 ? wait_ns : 0);
      if (wait_ns > 0) {
        if (auto* tracer = ctx.runtime().tracer()) {
          tracer->span(obs::EventKind::kSvcQueueWait, static_cast<std::uint16_t>(rank),
                       req.sched_ns, start_ns, 0,
                       static_cast<std::uint32_t>(req.client));
        }
      }
      RespHeader resp;
      resp.sched_ns = req.sched_ns;
      std::uint32_t moved = 0;
      const Entry* found = find_entry(st.entries, req.key);
      if (req.op == kOpGet) {
        if (found != nullptr && (found->flags & kTombstone) == 0) {
          resp.hit = 1;
          resp.len = found->len;
          moved = found->len;
          ++st.sc.hits;
        }
      } else {
        moved = req.op == kOpPut ? req.len : 0;
      }
      ctx.compute(params.service_flops + params.flops_per_byte * moved);
      if (req.op != kOpGet) apply_mutation(st, req);
      maybe_compact(st);
      if (req.client == rank) {
        record_latency(st, ctx.now().to_nanos() - req.sched_ns);
        return;
      }
      std::vector<std::byte> payload = chklib::to_bytes(resp);
      if (resp.hit != 0 && resp.len > 0) {
        const Entry* e = find_entry(st.entries, req.key);
        // The entry may have just been re-pointed by compaction; re-find.
        payload.insert(payload.end(),
                       st.heap.begin() + static_cast<std::ptrdiff_t>(e->off),
                       st.heap.begin() + static_cast<std::ptrdiff_t>(e->off + e->len));
      }
      ctx.send(req.client, kTagSvc, std::move(payload));
      ++st.served_from[req.client];
    };

    // Open-loop injection: one client arrival, stamped with its *scheduled*
    // instant — if the rank was frozen or busy, the backlog drains late and
    // the delay lands in the latency measurement, exactly as a live
    // population would experience it.
    auto issue_one = [&]() {
      const std::int64_t sched_ns = st.sc.next_arrival_ns;
      const Drawn d = draw_request(st.sc.rng, cdf, params);
      const std::uint64_t seq = st.sc.next_seq++;
      st.sc.next_arrival_ns += draw_gap_ns(st.sc.rng, params.arrival_hz);
      ReqHeader req;
      req.key = d.key;
      req.sched_ns = sched_ns;
      req.client = static_cast<std::uint16_t>(rank);
      req.op = d.op;
      if (d.op == kOpGet) {
        ++st.sc.gets;
      } else if (d.op == kOpPut) {
        ++st.sc.puts;
        req.ver = make_ver(sched_ns, rank, seq);
        req.len = d.len;
      } else {
        ++st.sc.deletes;
        req.ver = make_ver(sched_ns, rank, seq);
      }
      const std::size_t owner = svc_owner(d.key, nprocs);
      if (owner == rank) {
        serve(req);
        return;
      }
      ++st.sent_to[owner];
      std::vector<std::byte> payload = chklib::to_bytes(req);
      if (req.op == kOpPut) append_value(payload, req.key, req.ver, req.len);
      ctx.send(owner, kTagSvc, std::move(payload));
    };

    auto drained = [&]() {
      if (st.sc.fins_sent == 0 || st.sc.completed != st.sc.next_seq) return false;
      for (std::size_t p = 0; p < nprocs; ++p) {
        if (p == rank) continue;
        if (st.fin_expect[p] < 0) return false;
        if (st.served_from[p] != static_cast<std::uint64_t>(st.fin_expect[p])) return false;
      }
      return true;
    };

    for (;;) {
      ctx.checkpoint_here();
      while (st.sc.next_arrival_ns < horizon_ns &&
             st.sc.next_arrival_ns <= ctx.now().to_nanos()) {
        issue_one();
      }
      const bool schedule_done = st.sc.next_arrival_ns >= horizon_ns;
      if (schedule_done && st.sc.fins_sent == 0) {
        // FIFO channels deliver the fin after our last request to a peer,
        // so fin counts are exact serve targets.
        for (std::size_t p = 0; p < nprocs; ++p) {
          if (p == rank) continue;
          FinMsg fin;
          fin.sent = st.sent_to[p];
          ctx.send_value(p, kTagSvc, fin);
        }
        st.sc.fins_sent = 1;
      }
      if (schedule_done && drained()) break;
      std::optional<chklib::Envelope> env;
      if (schedule_done) {
        env = ctx.recv(chklib::kAnySource, kTagSvc);
      } else {
        env = ctx.recv_until(des::TimePoint::from_nanos(st.sc.next_arrival_ns),
                             chklib::kAnySource, kTagSvc);
      }
      if (!env) continue;  // the clock reached the next scheduled arrival
      const auto kind = chklib::from_bytes<std::uint64_t>(env->payload);
      if (kind == kKindRequest) {
        serve(chklib::from_bytes<ReqHeader>(env->payload));
      } else if (kind == kKindResponse) {
        const auto resp = chklib::from_bytes<RespHeader>(env->payload);
        record_latency(st, ctx.now().to_nanos() - resp.sched_ns);
      } else {
        st.fin_expect[env->src] = static_cast<std::int64_t>(
            chklib::from_bytes<FinMsg>(env->payload).sent);
      }
    }

    // Result digest: order-insensitive shard contents (LWW makes them a
    // pure function of the request set) plus schedule-conservation counts.
    double partial = 0;
    std::uint64_t live_keys = 0;
    for (const Entry& e : st.entries) {
      partial += static_cast<double>(entry_hash(e));
      if ((e.flags & kTombstone) == 0) ++live_keys;
    }
    partial += 3.0 * static_cast<double>(st.sc.next_seq) +
               5.0 * static_cast<double>(st.sc.completed) +
               7.0 * static_cast<double>(st.sc.puts) +
               11.0 * static_cast<double>(st.sc.deletes);
    const double digest = ctx.allreduce_sum(partial);
    if (rank == 0) ctx.report_result(digest);

    // Merge the workload metrics at rank 0 (exact: integer-valued doubles).
    std::vector<double> merged;
    merged.reserve(11 + kLatBuckets);
    merged.push_back(static_cast<double>(st.sc.next_seq));
    merged.push_back(static_cast<double>(st.sc.completed));
    merged.push_back(static_cast<double>(st.sc.gets));
    merged.push_back(static_cast<double>(st.sc.puts));
    merged.push_back(static_cast<double>(st.sc.deletes));
    merged.push_back(static_cast<double>(st.sc.hits));
    merged.push_back(static_cast<double>(live_keys));
    merged.push_back(static_cast<double>(st.sc.heap_live));
    merged.push_back(static_cast<double>(st.sc.lat_sum_ns));
    merged.push_back(static_cast<double>(st.sc.queue_wait_sum_ns));
    merged.push_back(0);  // reserved
    for (const std::uint64_t c : st.lat_counts) merged.push_back(static_cast<double>(c));
    const std::vector<double> sums = ctx.reduce_sum_vec(0, std::move(merged));
    const double neg_max =
        ctx.reduce_min(0, -static_cast<double>(st.sc.lat_max_ns));
    if (rank == 0 && params.sink) {
      SvcMetrics& m = *params.sink;
      m.issued = static_cast<std::uint64_t>(sums[0]);
      m.completed = static_cast<std::uint64_t>(sums[1]);
      m.gets = static_cast<std::uint64_t>(sums[2]);
      m.puts = static_cast<std::uint64_t>(sums[3]);
      m.deletes = static_cast<std::uint64_t>(sums[4]);
      m.hits = static_cast<std::uint64_t>(sums[5]);
      m.live_keys = static_cast<std::uint64_t>(sums[6]);
      m.live_bytes = static_cast<std::uint64_t>(sums[7]);
      m.latency_sum_ns = static_cast<std::uint64_t>(sums[8]);
      m.queue_wait_sum_ns = static_cast<std::uint64_t>(sums[9]);
      m.latency_max_ns = static_cast<std::uint64_t>(-neg_max);
      m.latency_counts.resize(kLatBuckets);
      for (std::size_t i = 0; i < kLatBuckets; ++i) {
        m.latency_counts[i] = static_cast<std::uint64_t>(sums[11 + i]);
      }
    }
  };
}

double svc_reference_digest(const SvcParams& params, std::size_t nprocs,
                            std::uint64_t seed) {
  const std::vector<double> cdf = build_zipf_cdf(params.keys, params.zipf_s);
  const auto horizon_ns =
      static_cast<std::int64_t>(std::llround(params.horizon_s * 1e9));

  // Global LWW state, seeded with every rank's prefill.
  SvcState scratch;  // reuse apply_mutation via a scratch state
  for (std::uint64_t key = 0; key < params.prefill; ++key) {
    const std::uint32_t len = prefill_len(params, key);
    scratch.entries.push_back(Entry{key, 0, scratch.heap.size(), len, 0});
    append_value(scratch.heap, key, 0, len);
    scratch.sc.heap_live += len;
  }

  double digest = 0;
  for (std::size_t rank = 0; rank < nprocs; ++rank) {
    // Exactly the app's stream: root(seed) -> 0x1000+rank -> kSvcStreamTag.
    // chklint:allow(unique-fork-tags): the reference digest must replay the
    // runtime's own per-rank derivation (runtime.hpp), not a fresh stream.
    util::Rng rng = util::Rng(seed).fork(0x1000 + rank).fork(kSvcStreamTag);
    std::int64_t next_arrival_ns = draw_gap_ns(rng, params.arrival_hz);
    std::uint64_t seq = 0, puts = 0, deletes = 0;
    while (next_arrival_ns < horizon_ns) {
      const std::int64_t sched_ns = next_arrival_ns;
      const Drawn d = draw_request(rng, cdf, params);
      next_arrival_ns += draw_gap_ns(rng, params.arrival_hz);
      if (d.op != kOpGet) {
        ReqHeader req;
        req.key = d.key;
        req.sched_ns = sched_ns;
        req.client = static_cast<std::uint16_t>(rank);
        req.op = d.op;
        req.ver = make_ver(sched_ns, rank, seq);
        if (d.op == kOpPut) {
          ++puts;
          req.len = d.len;
        } else {
          ++deletes;
        }
        apply_mutation(scratch, req);
      }
      ++seq;
    }
    digest += 3.0 * static_cast<double>(seq) + 5.0 * static_cast<double>(seq) +
              7.0 * static_cast<double>(puts) + 11.0 * static_cast<double>(deletes);
  }
  for (const Entry& e : scratch.entries) digest += static_cast<double>(entry_hash(e));
  return digest;
}

}  // namespace chk::svc
