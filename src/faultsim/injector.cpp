#include "faultsim/injector.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace chk::faultsim {

namespace {

// Child-stream tag for the injector's RNG ('FAIL' spelled sideways); the
// plan's stream index forks once more below it.
constexpr std::uint64_t kInjectorRngTag = 0xFA11;

des::Duration duration_from_seconds(double seconds) {
  constexpr double kMaxNs = 9.0e18;  // stay clear of int64 overflow
  const double ns = std::min(seconds * 1e9, kMaxNs);
  return des::Duration::nanos(static_cast<std::int64_t>(ns));
}

}  // namespace

FaultInjector::FaultInjector(chklib::Runtime& runtime, chklib::RecoveryManager& recovery,
                             FaultPlan plan)
    : rt_(&runtime),
      recovery_(&recovery),
      plan_(plan),
      // chklint:allow(unique-fork-tags): plan.stream is a per-run campaign
      // index, not a domain tag — the literal kInjectorRngTag parent already
      // decorrelates this family from every other fault stream.
      rng_(runtime.fork_rng(kInjectorRngTag).fork(plan.stream)) {}

FaultInjector::~FaultInjector() {
  // Detach the hooks: the runtime may outlive the injector.
  rt_->store().storage().set_write_hook(nullptr);
  recovery_->remove_observer(this);
}

void FaultInjector::arm() {
  if (plan_.max_failures == 0) return;
  recovery_->add_observer(this);
  if (plan_.ensure_midwrite) {
    rt_->store().storage().set_write_hook(
        [this](chklib::Rank from, const std::string& key, std::size_t bytes) {
          // Target checkpoint *image* writes; the commit record (a few
          // bytes under "ckpt/commit") makes for a near-degenerate window.
          if (!key.starts_with("ckpt/p") || bytes == 0) return;
          const bool restorable = recovery_->restore_would_read();
          if (restorable) seen_restorable_ = true;
          if (midwrite_done_ || midwrite_armed_ || exhausted()) return;
          // Prefer a write whose failure rolls back to a non-origin line:
          // that recovery has timed reads, which is both the interesting
          // mid-write case and the window the during-recovery strike needs.
          // If the line never leaves the origin (independent domino), stop
          // waiting after 2*num_ranks gate misses.
          if (!restorable &&
              ++origin_image_writes_ <= 2 * rt_->num_ranks()) {
            return;
          }
          midwrite_armed_ = true;
          const auto pure = rt_->store().storage().pure_write_time(from, bytes);
          rt_->sim().schedule_after(pure.scaled(plan_.midwrite_frac), [this, from] {
            midwrite_armed_ = false;
            strike(from, Require::kMidWrite);
          });
        });
  }
  schedule_arrival();
}

void FaultInjector::schedule_arrival() {
  // Draw gap and victim up front so the stream consumption per arrival is
  // fixed regardless of what the strike finds.
  const double gap_s = rng_.exponential(plan_.mtbf.to_seconds());
  const chklib::Rank victim = draw_victim();
  rt_->sim().schedule_after(duration_from_seconds(gap_s), [this, victim] {
    strike(victim, Require::kNothing);
    if (!exhausted() && !rt_->apps_done()) schedule_arrival();
  });
}

void FaultInjector::on_recovery_begin(chklib::Rank /*failed*/) {
  if (!plan_.ensure_during_recovery) return;
  if (overlap_done_ || overlap_armed_ || exhausted()) return;
  // A restore with timed reads gives on_restore_progress a guaranteed
  // mid-restore window below — the richer scenario; leave it to that path.
  if (recovery_->restore_would_read()) return;
  // Origin-line restore: it completes instantaneously, so the only way to
  // overlap it is to strike before its loaders run. Do so only when the run
  // has never shown a real restore window (or keeps producing degenerate
  // ones) — otherwise hold out for the mid-restore abort.
  ++origin_recovery_begins_;
  if (seen_restorable_ && origin_recovery_begins_ < 2) return;
  // This callback runs inside on_failure, before the loader processes are
  // spawned: the schedule_now event below therefore runs before any loader
  // starts, while the restore is formally in flight.
  overlap_armed_ = true;
  const chklib::Rank victim = draw_victim();
  rt_->sim().schedule_now([this, victim] {
    overlap_armed_ = false;
    strike(victim, Require::kDuringRecovery);
  });
}

void FaultInjector::on_restore_progress(chklib::Rank /*restored*/, std::size_t remaining) {
  if (!plan_.ensure_during_recovery) return;
  if (overlap_done_ || overlap_armed_ || exhausted()) return;
  if (remaining == 0) return;
  // At least one loader rank is still restoring; strike at this same
  // instant (deferred into kernel context — this callback runs inside a
  // loader process). If the remaining loaders nonetheless finish first
  // (origin-index loaders do no timed reads and drain at this same
  // timestamp), the strike finds its window closed, skips, and the
  // targeting re-arms on the next recovery.
  overlap_armed_ = true;
  const chklib::Rank victim = draw_victim();
  rt_->sim().schedule_now([this, victim] {
    overlap_armed_ = false;
    strike(victim, Require::kDuringRecovery);
  });
}

void FaultInjector::strike(chklib::Rank victim, Require require) {
  if (exhausted() || rt_->apps_done()) return;
  const bool mid_write = rt_->store().storage().inflight_writes() > 0;
  const bool during_recovery = recovery_->recovering();
  // A targeted strike only fires inside the window it was armed for; a
  // skipped strike costs nothing and the targeting re-arms. A Poisson
  // strike skips while only the reserved targeted budget remains (arrivals
  // keep being drawn, so the stream consumption stays schedule-independent).
  if (require == Require::kMidWrite && !mid_write) return;
  if (require == Require::kDuringRecovery && !during_recovery) return;
  if (require == Require::kNothing && poisson_exhausted()) return;
  ++stats_.injected;
  if (mid_write) {
    ++stats_.mid_write;
    midwrite_done_ = true;
  }
  if (during_recovery) {
    ++stats_.during_recovery;
    overlap_done_ = true;
  }
  CHK_INFO("faultsim", "strike #{} on rank {} (mid_write={} during_recovery={})",
           stats_.injected, victim, mid_write, during_recovery);
  recovery_->fail_now(victim);
}

}  // namespace chk::faultsim
