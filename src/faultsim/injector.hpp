// Stochastic fault injection for one experiment run.
//
// The injector drives RecoveryManager::fail_now under an exponential
// (MTBF-parameterized) failure arrival process: inter-failure gaps are
// Exp(mtbf) draws and the victim rank is uniform, both from a child stream
// of the experiment's seeded RNG — same seed, same failure schedule, same
// trace. On top of the Poisson arrivals two *targeted* strikes can be
// armed, because the interesting recovery bugs live in narrow windows the
// arrival process rarely hits:
//
//   ensure_midwrite         strike a checkpoint image write mid-pipeline (a
//                           fraction of its uncontended service time after
//                           submission, which is always strictly before its
//                           completion). Prefers a write whose failure
//                           would roll back to a non-origin line — that
//                           recovery then has a real restore window for the
//                           during-recovery target to compose with. If no
//                           such write shows up within 2*num_ranks image
//                           writes (independent checkpointing can domino
//                           every line to the origin), the next image write
//                           is struck ungated.
//   ensure_during_recovery  strike again while a restore is in flight. A
//                           restore with timed reads is struck as soon as
//                           the first loader rank finishes — the remaining
//                           loaders are still reading, so the strike lands
//                           mid-restore. Degenerate origin-line restores
//                           complete instantaneously and leave no such
//                           window; those are struck right at recovery
//                           begin (before their loaders run), but only when
//                           a non-degenerate window has never been observed
//                           or origin restores keep repeating — schemes
//                           with real restore windows get the interesting
//                           mid-restore abort, schemes without still get an
//                           overlapping failure.
//
// Budget is reserved for unmet targets: Poisson arrivals stop consuming
// `max_failures` once only the reserved strikes remain.
//
// A targeted strike whose window has closed by the time its event runs (a
// restore can finish degenerately fast when the line is at the origin, and
// loaders with no timed reads complete at the strike's own timestamp) is
// skipped — no failure is injected, no budget is spent — and the targeting
// re-arms for the next opportunity; it disarms only once it actually lands
// inside its window. Every strike that does land — targeted or Poisson —
// counts against `max_failures`.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "chklib/recovery/manager.hpp"
#include "chklib/runtime.hpp"
#include "util/rng.hpp"

namespace chk::faultsim {

struct FaultPlan {
  /// Mean of the exponential inter-failure gap (simulated time).
  des::Duration mtbf = des::Duration::secs(60);
  /// Hard cap on injected failures per run; 0 disarms the injector.
  std::uint32_t max_failures = 6;
  /// Stream selector forked off the experiment seed: one experiment config
  /// can host many campaign runs that differ only in the failure schedule.
  std::uint64_t stream = 0;
  bool ensure_midwrite = false;
  bool ensure_during_recovery = false;
  /// Redirect every strike at the current coordinator (membership runs:
  /// coordinator death mid-round is the interesting election scenario). The
  /// victim draw still happens — the stream consumption per arrival stays
  /// fixed — but the drawn rank is overridden by the coordinator provider.
  bool target_coordinator = false;
  /// Where inside the write's uncontended service time the targeted
  /// mid-write strike lands (0, 1); the observed write takes at least that
  /// long, so the strike is guaranteed to catch the write in flight.
  double midwrite_frac = 0.5;
};

struct InjectionStats {
  std::uint32_t injected = 0;
  std::uint32_t mid_write = 0;        ///< strikes with storage writes in flight
  std::uint32_t during_recovery = 0;  ///< strikes with a restore in flight
};

class FaultInjector final : public chklib::RecoveryObserver {
 public:
  FaultInjector(chklib::Runtime& runtime, chklib::RecoveryManager& recovery,
                FaultPlan plan);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install the hooks and schedule the first Poisson arrival. Call once,
  /// before Runtime::run_to_completion.
  void arm();

  /// Who the coordinator is *right now* (queried at strike-scheduling time,
  /// so an elected successor becomes the next target). Required when
  /// plan.target_coordinator is set; ignored otherwise.
  void set_coordinator_provider(std::function<chklib::Rank()> provider) noexcept {
    coordinator_provider_ = std::move(provider);
  }

  [[nodiscard]] const InjectionStats& stats() const noexcept { return stats_; }

  // RecoveryObserver (targeted during-recovery strike).
  void on_recovery_begin(chklib::Rank failed) override;
  void on_restore_progress(chklib::Rank restored, std::size_t remaining) override;

 private:
  /// What a targeted strike insists on finding; if the window has closed by
  /// the time the strike event runs, it is skipped (not counted) and the
  /// targeting re-arms.
  enum class Require : std::uint8_t { kNothing, kMidWrite, kDuringRecovery };

  void schedule_arrival();
  void strike(chklib::Rank victim, Require require);
  /// Hard cap, applies to every strike.
  [[nodiscard]] bool exhausted() const noexcept {
    return stats_.injected >= plan_.max_failures;
  }
  /// Budget still earmarked for targeted strikes that have not landed yet.
  [[nodiscard]] std::uint32_t reserved() const noexcept {
    return (plan_.ensure_midwrite && !midwrite_done_ ? 1u : 0u) +
           (plan_.ensure_during_recovery && !overlap_done_ ? 1u : 0u);
  }
  /// Poisson arrivals may not eat into the reserved targeted budget.
  [[nodiscard]] bool poisson_exhausted() const noexcept {
    return stats_.injected + reserved() >= plan_.max_failures;
  }
  [[nodiscard]] chklib::Rank draw_victim() noexcept {
    // Always consume the draw (schedule-independent stream), then apply the
    // coordinator override if configured.
    const auto drawn = static_cast<chklib::Rank>(rng_.uniform_u64(rt_->num_ranks()));
    if (plan_.target_coordinator && coordinator_provider_) return coordinator_provider_();
    return drawn;
  }

  chklib::Runtime* rt_;
  chklib::RecoveryManager* recovery_;
  FaultPlan plan_;
  util::Rng rng_;
  std::function<chklib::Rank()> coordinator_provider_;
  InjectionStats stats_;
  bool midwrite_armed_ = false;  ///< a targeted mid-write strike is scheduled
  bool midwrite_done_ = false;   ///< a strike landed mid-write; stop targeting
  bool overlap_armed_ = false;
  bool overlap_done_ = false;
  /// Some image write was observed whose failure would have rolled back to
  /// a non-origin line — i.e. a real restore window exists in this run.
  bool seen_restorable_ = false;
  /// Image writes observed while the planned line sat at the origin; past
  /// 2*num_ranks of these the mid-write targeting stops waiting for a
  /// restorable line.
  std::uint32_t origin_image_writes_ = 0;
  /// Recoveries that began with an origin line (no restore window).
  std::uint32_t origin_recovery_begins_ = 0;
};

}  // namespace chk::faultsim
