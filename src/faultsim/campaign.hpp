// Fault-injection campaigns: repeated seeded runs of one experiment
// configuration under a stochastic failure process.
//
// A campaign fixes the experiment (app, scheme, interval, machine, base
// seed) and varies only the failure schedule: run i forks the injector's
// RNG stream by i, so the campaign is fully reproducible (same seeds ⇒
// byte-identical JSON) while the runs sample independent failure arrival
// realizations. The headline statistic is the expected completion time
// under failures — the "which scheme actually wins when failures happen"
// counterpart to the paper's failure-free overhead tables.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/json.hpp"

namespace chk::faultsim {

struct CampaignConfig {
  /// The experiment every run executes; its `failure`/`faults` fields are
  /// overwritten by the campaign.
  harness::ExperimentConfig base;
  des::Duration mtbf = des::Duration::secs(60);
  std::uint32_t runs = 5;
  /// Selects the failure-schedule stream family; run i uses stream
  /// campaign_seed + i on top of the experiment seed.
  std::uint64_t campaign_seed = 1;
  std::uint32_t max_failures_per_run = 6;
  bool ensure_midwrite = true;
  bool ensure_during_recovery = true;
  /// Unreliable links during the campaign runs (composes with the failure
  /// process). Run i forks the link-fault stream by campaign_seed + i so
  /// loss realizations vary per run but reproduce exactly.
  std::optional<chklib::LinkFaultConfig> link_faults;
  /// Run the reliable FIFO transport above the lossy links (see
  /// ExperimentConfig::reliable_transport).
  bool reliable_transport = true;
  /// Unreliable stable storage during the campaign runs (composes with the
  /// failure process and the link faults — every fault domain draws from
  /// its own forked stream). Run i forks the storage-fault stream by
  /// campaign_seed + i, mirroring the link-fault discipline.
  std::optional<xplorer::StorageFaultConfig> storage_faults;
  /// Cluster-membership service during the campaign runs: failures route
  /// through heartbeat detection + coordinator election instead of the
  /// oracle. Run i forks the membership stream by campaign_seed + i so
  /// heartbeat phases vary per run but reproduce exactly.
  std::optional<chklib::membership::MembershipConfig> membership;
  /// With membership on: aim every injected strike at the current (elected)
  /// coordinator instead of a uniform victim.
  bool target_coordinator = false;
  /// Checkpoint retention depth forwarded to the experiment (0 = auto).
  std::uint32_t keep_depth = 0;
  /// Failure-free result digest to verify each run against (any failure
  /// schedule must still compute the same answer).
  std::optional<double> expected_digest;
};

/// Per-run outcome, condensed from the ExperimentResult + recovery reports.
struct RunOutcome {
  std::uint32_t run = 0;
  double completion_s = 0;
  std::uint64_t trace_hash = 0;
  std::uint32_t failures = 0;            ///< injected strikes
  std::uint32_t mid_write_failures = 0;  ///< strikes with writes in flight
  std::uint32_t overlap_failures = 0;    ///< strikes during a restore
  std::uint32_t recoveries = 0;          ///< completed restores
  std::uint32_t interrupted_recoveries = 0;
  double recovery_time_s = 0;  ///< summed recovery latencies (incl. partial)
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_reread = 0;
  std::uint64_t writes_discarded = 0;
  std::uint32_t max_domino_depth = 0;
  bool rolled_to_origin = false;  ///< any recovery fell back to the initial state
  bool digest_ok = false;
  // Link-fault / transport activity (zero when the campaign has no link faults).
  std::uint64_t retransmits = 0;
  std::uint64_t dups_suppressed = 0;
  std::uint64_t corrupt_detected = 0;
  std::uint64_t link_drops = 0;
  std::uint32_t aborted_rounds = 0;
  // Stable-storage fault activity (zero when the campaign has no storage faults).
  std::uint64_t io_write_errors = 0;
  std::uint64_t io_read_errors = 0;
  std::uint64_t bitrot_injected = 0;
  std::uint64_t storage_retries = 0;
  std::uint64_t storage_write_failures = 0;
  std::uint64_t ckpt_write_failures = 0;
  std::uint64_t corrupt_discarded = 0;
  std::uint32_t generations_skipped = 0;  ///< recovery fallbacks to an older generation
  std::uint64_t reclaimed_bytes = 0;
  // Cluster-membership activity (zero when the campaign has no membership).
  std::uint64_t views_established = 0;
  std::uint64_t evictions = 0;
  std::uint64_t wrongful_evictions = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t suspicions_cleared = 0;
  std::uint64_t detections = 0;
};

struct CampaignSummary {
  std::uint32_t runs = 0;
  double mean_completion_s = 0;
  double min_completion_s = 0;
  double max_completion_s = 0;
  double mean_recovery_time_s = 0;
  std::uint32_t total_failures = 0;
  std::uint32_t total_mid_write = 0;
  std::uint32_t total_overlap = 0;
  std::uint32_t total_interrupted = 0;
  bool all_verified = false;  ///< every run reproduced the expected digest
};

struct CampaignResult {
  std::vector<RunOutcome> outcomes;  ///< indexed by run
  CampaignSummary summary;
};

/// Execute run `run_index` of the campaign (one full simulated experiment).
[[nodiscard]] RunOutcome run_one(const CampaignConfig& config, std::uint32_t run_index);

/// Execute all runs sequentially and summarize. Drivers that parallelize
/// across (cell, run) pairs can call run_one directly and summarize().
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

[[nodiscard]] CampaignSummary summarize(const std::vector<RunOutcome>& outcomes);

/// Deterministic JSON for one campaign (fixed key order, no wall-clock).
[[nodiscard]] obs::json::Value outcome_to_json(const RunOutcome& outcome);
[[nodiscard]] obs::json::Value summary_to_json(const CampaignSummary& summary);

}  // namespace chk::faultsim
