#include "faultsim/campaign.hpp"

#include <algorithm>
#include <limits>

#include "util/format.hpp"

namespace chk::faultsim {

RunOutcome run_one(const CampaignConfig& config, std::uint32_t run_index) {
  harness::ExperimentConfig experiment = config.base;
  experiment.failure.reset();
  FaultPlan plan;
  plan.mtbf = config.mtbf;
  plan.max_failures = config.max_failures_per_run;
  plan.stream = config.campaign_seed + run_index;
  plan.ensure_midwrite = config.ensure_midwrite;
  plan.ensure_during_recovery = config.ensure_during_recovery;
  plan.target_coordinator = config.target_coordinator;
  experiment.faults = plan;
  if (config.membership.has_value()) {
    experiment.membership = config.membership;
    experiment.membership->stream = config.campaign_seed + run_index;
  }
  if (config.link_faults.has_value()) {
    experiment.link_faults = config.link_faults;
    experiment.link_faults->stream = config.campaign_seed + run_index;
    experiment.reliable_transport = config.reliable_transport;
  }
  if (config.storage_faults.has_value()) {
    experiment.storage_faults = config.storage_faults;
    experiment.storage_faults->stream = config.campaign_seed + run_index;
  }
  experiment.keep_depth = config.keep_depth;

  const harness::ExperimentResult result = harness::run_experiment(experiment);

  RunOutcome outcome;
  outcome.run = run_index;
  outcome.completion_s = result.exec_time_s;
  outcome.trace_hash = result.trace_hash;
  outcome.failures = result.injections.injected;
  outcome.mid_write_failures = result.injections.mid_write;
  outcome.overlap_failures = result.injections.during_recovery;
  outcome.writes_discarded = result.writes_discarded;
  for (const harness::RecoveryReport& rep : result.recoveries) {
    if (rep.interrupted) {
      ++outcome.interrupted_recoveries;
    } else {
      ++outcome.recoveries;
    }
    outcome.recovery_time_s += rep.recovery_latency.to_seconds();
    outcome.bytes_read += rep.bytes_read;
    outcome.bytes_reread += rep.bytes_reread;
    for (std::uint32_t depth : rep.domino_depth) {
      outcome.max_domino_depth = std::max(outcome.max_domino_depth, depth);
    }
    outcome.rolled_to_origin = outcome.rolled_to_origin || rep.rolled_to_origin;
  }
  outcome.digest_ok = result.digest.has_value() &&
                      (!config.expected_digest.has_value() ||
                       *result.digest == *config.expected_digest);
  outcome.retransmits = result.retransmits;
  outcome.dups_suppressed = result.dups_suppressed;
  outcome.corrupt_detected = result.corrupt_detected;
  outcome.link_drops = result.link_drops;
  outcome.aborted_rounds = result.aborted_rounds;
  outcome.io_write_errors = result.io_write_errors;
  outcome.io_read_errors = result.io_read_errors;
  outcome.bitrot_injected = result.bitrot_injected;
  outcome.storage_retries = result.storage_retries;
  outcome.storage_write_failures = result.storage_write_failures;
  outcome.ckpt_write_failures = result.ckpt_write_failures;
  outcome.corrupt_discarded = result.corrupt_discarded;
  outcome.generations_skipped = result.generations_skipped;
  outcome.reclaimed_bytes = result.reclaimed_bytes;
  outcome.views_established = result.views_established;
  outcome.evictions = result.evictions;
  outcome.wrongful_evictions = result.wrongful_evictions;
  outcome.rejoins = result.rejoins;
  outcome.suspicions_cleared = result.suspicions_cleared;
  outcome.detections = result.detections;
  return outcome;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  CampaignResult result;
  result.outcomes.reserve(config.runs);
  for (std::uint32_t i = 0; i < config.runs; ++i) {
    result.outcomes.push_back(run_one(config, i));
  }
  result.summary = summarize(result.outcomes);
  return result;
}

CampaignSummary summarize(const std::vector<RunOutcome>& outcomes) {
  CampaignSummary s;
  s.runs = static_cast<std::uint32_t>(outcomes.size());
  if (outcomes.empty()) return s;
  s.min_completion_s = std::numeric_limits<double>::infinity();
  s.all_verified = true;
  for (const RunOutcome& o : outcomes) {
    s.mean_completion_s += o.completion_s;
    s.min_completion_s = std::min(s.min_completion_s, o.completion_s);
    s.max_completion_s = std::max(s.max_completion_s, o.completion_s);
    s.mean_recovery_time_s += o.recovery_time_s;
    s.total_failures += o.failures;
    s.total_mid_write += o.mid_write_failures;
    s.total_overlap += o.overlap_failures;
    s.total_interrupted += o.interrupted_recoveries;
    s.all_verified = s.all_verified && o.digest_ok;
  }
  s.mean_completion_s /= s.runs;
  s.mean_recovery_time_s /= s.runs;
  return s;
}

obs::json::Value outcome_to_json(const RunOutcome& o) {
  using obs::json::Value;
  Value v = Value::object();
  v.set("run", Value::number(std::uint64_t{o.run}));
  v.set("completion_s", Value::number(o.completion_s));
  v.set("trace_hash", Value::string(util::format("{:016x}", o.trace_hash)));
  v.set("failures", Value::number(std::uint64_t{o.failures}));
  v.set("mid_write_failures", Value::number(std::uint64_t{o.mid_write_failures}));
  v.set("overlap_failures", Value::number(std::uint64_t{o.overlap_failures}));
  v.set("recoveries", Value::number(std::uint64_t{o.recoveries}));
  v.set("interrupted_recoveries", Value::number(std::uint64_t{o.interrupted_recoveries}));
  v.set("recovery_time_s", Value::number(o.recovery_time_s));
  v.set("bytes_read", Value::number(o.bytes_read));
  v.set("bytes_reread", Value::number(o.bytes_reread));
  v.set("writes_discarded", Value::number(o.writes_discarded));
  v.set("max_domino_depth", Value::number(std::uint64_t{o.max_domino_depth}));
  v.set("rolled_to_origin", Value::boolean(o.rolled_to_origin));
  v.set("digest_ok", Value::boolean(o.digest_ok));
  v.set("retransmits", Value::number(o.retransmits));
  v.set("dups_suppressed", Value::number(o.dups_suppressed));
  v.set("corrupt_detected", Value::number(o.corrupt_detected));
  v.set("link_drops", Value::number(o.link_drops));
  v.set("aborted_rounds", Value::number(std::uint64_t{o.aborted_rounds}));
  v.set("io_write_errors", Value::number(o.io_write_errors));
  v.set("io_read_errors", Value::number(o.io_read_errors));
  v.set("bitrot_injected", Value::number(o.bitrot_injected));
  v.set("storage_retries", Value::number(o.storage_retries));
  v.set("storage_write_failures", Value::number(o.storage_write_failures));
  v.set("ckpt_write_failures", Value::number(o.ckpt_write_failures));
  v.set("corrupt_discarded", Value::number(o.corrupt_discarded));
  v.set("generations_skipped", Value::number(std::uint64_t{o.generations_skipped}));
  v.set("reclaimed_bytes", Value::number(o.reclaimed_bytes));
  v.set("views_established", Value::number(o.views_established));
  v.set("evictions", Value::number(o.evictions));
  v.set("wrongful_evictions", Value::number(o.wrongful_evictions));
  v.set("rejoins", Value::number(o.rejoins));
  v.set("suspicions_cleared", Value::number(o.suspicions_cleared));
  v.set("detections", Value::number(o.detections));
  return v;
}

obs::json::Value summary_to_json(const CampaignSummary& s) {
  using obs::json::Value;
  Value v = Value::object();
  v.set("runs", Value::number(std::uint64_t{s.runs}));
  v.set("mean_completion_s", Value::number(s.mean_completion_s));
  v.set("min_completion_s", Value::number(s.min_completion_s));
  v.set("max_completion_s", Value::number(s.max_completion_s));
  v.set("mean_recovery_time_s", Value::number(s.mean_recovery_time_s));
  v.set("total_failures", Value::number(std::uint64_t{s.total_failures}));
  v.set("total_mid_write", Value::number(std::uint64_t{s.total_mid_write}));
  v.set("total_overlap", Value::number(std::uint64_t{s.total_overlap}));
  v.set("total_interrupted", Value::number(std::uint64_t{s.total_interrupted}));
  v.set("all_verified", Value::boolean(s.all_verified));
  return v;
}

}  // namespace chk::faultsim
