#include "xplorer/node.hpp"

namespace chk::xplorer {

void Node::compute(des::Process& self, double flops) {
  const auto base = des::Duration::seconds(flops / config_.cpu_flop_rate);
  auto total = base;
  if (background_io_ > 0) {
    // The checkpointer thread steals a fixed CPU share while streaming.
    total = base.scaled(1.0 / (1.0 - config_.background_io_cpu_steal));
    interference_time_ += total - base;
    if (tracer_) {
      const auto t0 = sim_->now().to_nanos();
      tracer_->span(obs::EventKind::kInterference, static_cast<std::uint16_t>(id_), t0,
                    t0 + total.to_nanos(),
                    static_cast<std::uint64_t>((total - base).to_nanos()));
    }
  }
  compute_time_ += base;
  self.delay(total);
}

void Node::mem_copy(des::Process& self, std::size_t bytes) {
  const auto cost = mem_copy_time(bytes);
  copy_time_ += cost;
  if (tracer_) {
    const auto t0 = sim_->now().to_nanos();
    tracer_->span(obs::EventKind::kMemCopy, static_cast<std::uint16_t>(id_), t0,
                  t0 + cost.to_nanos(), bytes);
  }
  self.delay(cost);
}

void Node::message_overhead(des::Process& self, std::size_t bytes) {
  const auto cost = message_overhead_time(bytes);
  message_time_ += cost;
  self.delay(cost);
}

des::Duration Node::message_overhead_time(std::size_t bytes) const noexcept {
  return config_.msg_sw_overhead +
         des::Duration::seconds(static_cast<double>(bytes) / config_.msg_cpu_byte_rate);
}

des::Duration Node::mem_copy_time(std::size_t bytes) const noexcept {
  return des::Duration::seconds(static_cast<double>(bytes) / config_.mem_copy_bw);
}

void Node::reset_stats() noexcept {
  compute_time_ = des::Duration::zero();
  interference_time_ = des::Duration::zero();
  copy_time_ = des::Duration::zero();
  message_time_ = des::Duration::zero();
}

}  // namespace chk::xplorer
