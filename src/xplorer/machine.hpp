// The assembled machine: nodes + interconnect + stable storage.
#pragma once

#include <memory>
#include <vector>

#include "des/simulator.hpp"
#include "xplorer/config.hpp"
#include "xplorer/network.hpp"
#include "xplorer/node.hpp"
#include "xplorer/storage.hpp"

namespace chk::xplorer {

class Machine {
 public:
  Machine(des::Simulator& sim, MachineConfig config)
      : sim_(&sim),
        config_(std::move(config)),
        network_(sim, config_),
        storage_(sim, network_, config_) {
    nodes_.reserve(config_.num_nodes);
    for (NodeId i = 0; i < config_.num_nodes; ++i) {
      nodes_.push_back(std::make_unique<Node>(sim, i, config_.node));
    }
  }
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] des::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return config_.num_nodes; }
  [[nodiscard]] Node& node(NodeId id) noexcept { return *nodes_[id]; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] StableStorage& storage() noexcept { return storage_; }

  void reset_stats() noexcept {
    for (auto& node : nodes_) node->reset_stats();
    network_.reset_stats();
    storage_.reset_stats();
  }

  void set_tracer(obs::Tracer* tracer) noexcept {
    for (auto& node : nodes_) node->set_tracer(tracer);
  }

 private:
  des::Simulator* sim_;
  MachineConfig config_;
  Network network_;
  StableStorage storage_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace chk::xplorer
