#include "xplorer/network.hpp"

#include "util/format.hpp"

namespace chk::xplorer {

Network::Network(des::Simulator& sim, const MachineConfig& config)
    : sim_(&sim),
      config_(config),
      topology_(Topology::build(config.topology, config.num_nodes)) {
  links_.reserve(topology_.num_links());
  for (std::size_t i = 0; i < topology_.num_links(); ++i) {
    const auto& edge = topology_.edge(i);
    links_.push_back(std::make_unique<FifoServer>(
        sim, util::format("link{}->{}", edge.from, edge.to), config_.link.bandwidth,
        config_.link.latency));
  }
}

void Network::transfer(NodeId src, NodeId dst, std::size_t bytes, Traffic traffic,
                       std::function<void()> on_delivered) {
  bytes_sent_[static_cast<std::size_t>(traffic)] += bytes;
  ++transfers_[static_cast<std::size_t>(traffic)];
  if (src == dst) {
    // Local loopback: software copy only; keep a tiny latency so ordering
    // through the event queue matches remote sends' asynchrony.
    const auto local = des::Duration::seconds(
        static_cast<double>(bytes) / config_.node.mem_copy_bw);
    sim_->schedule_after(local + des::Duration::micros(5), std::move(on_delivered));
    return;
  }
  const auto route = topology_.route(src, dst);
  const std::size_t packet = config_.packet_bytes;
  const std::size_t packets = bytes == 0 ? 1 : (bytes + packet - 1) / packet;
  auto pending = std::make_shared<Pending>(Pending{packets, std::move(on_delivered)});
  std::size_t remaining = bytes;
  for (std::size_t p = 0; p < packets; ++p) {
    const std::size_t chunk = (bytes == 0) ? 0 : std::min(packet, remaining);
    remaining -= chunk;
    forward(route, 0, chunk, pending);
  }
}

void Network::forward(std::span<const std::size_t> route, std::size_t hop, std::size_t bytes,
                      const std::shared_ptr<Pending>& pending) {
  if (hop == route.size()) {
    if (--pending->packets_remaining == 0 && pending->on_delivered) {
      pending->on_delivered();
    }
    return;
  }
  links_[route[hop]]->submit(bytes, [this, route, hop, bytes, pending] {
    forward(route, hop + 1, bytes, pending);
  });
}

des::Duration Network::min_transfer_time(NodeId src, NodeId dst,
                                         std::size_t bytes) const noexcept {
  if (src == dst) {
    return des::Duration::seconds(static_cast<double>(bytes) / config_.node.mem_copy_bw) +
           des::Duration::micros(5);
  }
  const auto route = topology_.route(src, dst);
  const std::size_t packet = config_.packet_bytes;
  const std::size_t packets = bytes == 0 ? 1 : (bytes + packet - 1) / packet;
  // Store-and-forward pipeline with empty queues:
  //   finish[p][hop] = max(finish[p][hop-1], finish[p-1][hop]) + svc_hop
  // rolled over packets, keeping one finish time per hop.
  std::vector<des::Duration> hop_finish(route.size());
  des::Duration last;
  std::size_t remaining = bytes;
  for (std::size_t p = 0; p < packets; ++p) {
    const std::size_t chunk = (bytes == 0) ? 0 : std::min(packet, remaining);
    remaining -= chunk;
    des::Duration prev;  // this packet's finish at the previous hop
    for (std::size_t hop = 0; hop < route.size(); ++hop) {
      const des::Duration start = std::max(prev, hop_finish[hop]);
      prev = start + links_[route[hop]]->service_time(chunk);
      hop_finish[hop] = prev;
    }
    last = prev;
  }
  return last;
}

des::Duration Network::total_link_busy() const noexcept {
  des::Duration total;
  for (const auto& link : links_) total += link->busy_time();
  return total;
}

void Network::reset_stats() noexcept {
  for (auto& link : links_) link->reset_stats();
  for (auto& b : bytes_sent_) b = 0;
  for (auto& t : transfers_) t = 0;
}

}  // namespace chk::xplorer
