#include "xplorer/fifo_server.hpp"

#include <algorithm>
#include <cmath>

namespace chk::xplorer {

FifoServer::FifoServer(des::Simulator& sim, std::string name, double bytes_per_sec,
                       des::Duration per_job_latency)
    : sim_(&sim),
      name_(std::move(name)),
      bytes_per_sec_(bytes_per_sec),
      per_job_latency_(per_job_latency) {}

des::Duration FifoServer::service_time(std::size_t bytes) const noexcept {
  return per_job_latency_ +
         des::Duration::seconds(static_cast<double>(bytes) / bytes_per_sec_);
}

void FifoServer::submit(std::size_t bytes, std::function<void()> on_done) {
  queue_.push_back(Job{bytes, std::move(on_done), sim_->now()});
  max_queue_ = std::max(max_queue_, queue_.size());
  if (!busy_) start_next();
}

void FifoServer::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  wait_time_ += sim_->now() - job.submitted;
  const des::Duration service = service_time(job.bytes);
  busy_time_ += service;
  sim_->schedule_after(service, [this, job = std::move(job)]() mutable {
    ++jobs_completed_;
    bytes_served_ += job.bytes;
    // Complete the job before starting the next so completion callbacks
    // observe a consistent queue; they may themselves submit new jobs.
    auto done = std::move(job.on_done);
    start_next();
    if (done) done();
  });
}

void FifoServer::reset_stats() noexcept {
  busy_time_ = des::Duration::zero();
  wait_time_ = des::Duration::zero();
  jobs_completed_ = 0;
  bytes_served_ = 0;
  max_queue_ = 0;
}

}  // namespace chk::xplorer
