#include "xplorer/topology.hpp"

#include <algorithm>
#include <deque>
#include "util/format.hpp"
#include <limits>
#include <map>
#include <stdexcept>

namespace chk::xplorer {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh2D: return "mesh2d";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kCrossbar: return "crossbar";
  }
  return "?";
}

namespace {

void add_bidi(std::vector<Topology::Edge>& edges, NodeId a, NodeId b) {
  edges.push_back({a, b});
  edges.push_back({b, a});
}

std::vector<Topology::Edge> build_edges(TopologyKind kind, std::size_t n) {
  std::vector<Topology::Edge> edges;
  switch (kind) {
    case TopologyKind::kMesh2D: {
      // rows x cols grid with rows = 2 when n is even and >= 4 (the
      // Xplorer's 2x4 arrangement), otherwise a single row (pipeline).
      const std::size_t rows = (n >= 4 && n % 2 == 0) ? 2 : 1;
      const std::size_t cols = n / rows;
      auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          if (c + 1 < cols) add_bidi(edges, id(r, c), id(r, c + 1));
          if (r + 1 < rows) add_bidi(edges, id(r, c), id(r + 1, c));
        }
      }
      break;
    }
    case TopologyKind::kRing: {
      for (std::size_t i = 0; i < n; ++i) add_bidi(edges, i, (i + 1) % n);
      break;
    }
    case TopologyKind::kStar: {
      for (std::size_t i = 1; i < n; ++i) add_bidi(edges, 0, i);
      break;
    }
    case TopologyKind::kCrossbar: {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i != j) edges.push_back({i, j});
        }
      }
      break;
    }
  }
  return edges;
}

}  // namespace

Topology::Topology(std::size_t num_nodes, std::vector<Edge> edges)
    : num_nodes_(num_nodes), edges_(std::move(edges)) {
  compute_routes();
}

Topology Topology::build(TopologyKind kind, std::size_t num_nodes) {
  if (num_nodes == 0) throw std::invalid_argument("topology: need at least one node");
  if (num_nodes == 1) return Topology{1, {}};
  if (kind == TopologyKind::kRing && num_nodes == 2) {
    // A 2-ring would create parallel duplicate links; collapse to one pair.
    std::vector<Edge> edges;
    add_bidi(edges, 0, 1);
    return Topology{2, std::move(edges)};
  }
  return Topology{num_nodes, build_edges(kind, num_nodes)};
}

void Topology::compute_routes() {
  routes_.assign(num_nodes_ * num_nodes_, {});
  // adjacency: for each node, outgoing (neighbour, link) sorted by neighbour
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> adjacency(num_nodes_);
  for (std::size_t link = 0; link < edges_.size(); ++link) {
    adjacency[edges_[link].from].emplace_back(edges_[link].to, link);
  }
  for (auto& out : adjacency) std::sort(out.begin(), out.end());

  for (NodeId src = 0; src < num_nodes_; ++src) {
    // BFS from src with deterministic neighbour order.
    constexpr auto kUnset = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> parent_link(num_nodes_, kUnset);
    std::vector<bool> seen(num_nodes_, false);
    seen[src] = true;
    std::deque<NodeId> frontier{src};
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, link] : adjacency[u]) {
        if (!seen[v]) {
          seen[v] = true;
          parent_link[v] = link;
          frontier.push_back(v);
        }
      }
    }
    for (NodeId dst = 0; dst < num_nodes_; ++dst) {
      if (dst == src) continue;
      if (!seen[dst]) {
        throw std::runtime_error(
            util::format("topology: node {} unreachable from {}", dst, src));
      }
      std::vector<std::size_t>& route = routes_[src * num_nodes_ + dst];
      for (NodeId v = dst; v != src; v = edges_[parent_link[v]].from) {
        route.push_back(parent_link[v]);
      }
      std::reverse(route.begin(), route.end());
    }
  }
}

std::span<const std::size_t> Topology::route(NodeId src, NodeId dst) const {
  return routes_[src * num_nodes_ + dst];
}

}  // namespace chk::xplorer
