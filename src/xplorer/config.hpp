// Machine-model configuration.
//
// Defaults are calibrated to the paper's testbed: a Parsytec Xplorer with
// 8 T805 transputers (4 MB each) arranged in a 2x4 mesh of 20 Mbit/s
// transputer links, attached through a host interface on node 0 to a
// SunSparc host whose file system provides the (single, shared) stable
// storage. Absolute rates are approximations from T805 documentation; the
// reproduction targets relative behaviour, which is insensitive to modest
// calibration error (see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <string>

#include "des/time.hpp"

namespace chk::xplorer {

using NodeId = std::size_t;

enum class TopologyKind {
  kMesh2D,    ///< 2 x (n/2) mesh, XY routing (the Xplorer arrangement)
  kRing,      ///< bidirectional ring
  kStar,      ///< all nodes directly attached to the host node
  kCrossbar,  ///< dedicated link per ordered pair (no network contention)
};

std::string to_string(TopologyKind kind);

struct NodeConfig {
  /// Sustained floating-point rate used to convert application work into
  /// simulated time. T805 @30 MHz peaks ~4.3 MIPS; sustained FP ~0.7 MFLOP/s.
  double cpu_flop_rate = 0.7e6;
  /// Main-memory copy bandwidth (bytes/s) — the cost of main-memory
  /// checkpointing's blocking copy. T805 internal/external RAM mix.
  double mem_copy_bw = 20.0e6;
  /// Fixed per-message software send/receive overhead.
  des::Duration msg_sw_overhead = des::Duration::micros(40);
  /// Per-byte CPU cost of staging a message (DMA setup amortized).
  double msg_cpu_byte_rate = 40.0e6;  // bytes/s
  /// Fraction of the CPU stolen from the application while the node's
  /// checkpointer thread is streaming a background write to stable storage
  /// (packetization + DMA servicing).
  double background_io_cpu_steal = 0.12;
};

struct LinkConfig {
  /// Effective unidirectional bandwidth of one transputer link.
  /// Nominal 20 Mbit/s -> ~1.7 MB/s effective with protocol overheads.
  double bandwidth = 1.7e6;  // bytes/s
  /// Per-packet propagation + switching latency.
  des::Duration latency = des::Duration::micros(8);
};

struct DiskConfig {
  /// Host file-system write bandwidth (SunSparc-era local disk).
  double bandwidth = 1.4e6;  // bytes/s
  /// Per-operation positioning/syscall latency.
  des::Duration latency = des::Duration::millis(14);
};

struct MachineConfig {
  std::size_t num_nodes = 8;
  TopologyKind topology = TopologyKind::kMesh2D;
  NodeId host_node = 0;  ///< node carrying the host interface
  std::size_t packet_bytes = 4096;
  NodeConfig node;
  LinkConfig link;
  /// The host-interface link between the host node and the Sun host.
  LinkConfig host_link{.bandwidth = 1.6e6, .latency = des::Duration::micros(20)};
  DiskConfig disk;

  /// The paper's testbed, unchanged.
  static MachineConfig parsytec_xplorer() { return MachineConfig{}; }
};

}  // namespace chk::xplorer
