// Event-driven FIFO queueing server.
//
// Models any exclusive, serially-served resource with a (latency + size /
// bandwidth) service time: a transputer link carrying packets, the host
// interface, or the stable-storage disk. Jobs complete via callback, so no
// simulated process is tied up driving a transfer — processes that need to
// block on completion park on a semaphore signalled from the callback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "des/simulator.hpp"
#include "des/time.hpp"

namespace chk::xplorer {

class FifoServer {
 public:
  FifoServer(des::Simulator& sim, std::string name, double bytes_per_sec,
             des::Duration per_job_latency);
  FifoServer(const FifoServer&) = delete;
  FifoServer& operator=(const FifoServer&) = delete;

  /// Enqueue a job of `bytes`; `on_done` runs in kernel context when the
  /// job finishes service. Jobs are served strictly in submission order.
  void submit(std::size_t bytes, std::function<void()> on_done);

  /// Service time for a job of `bytes` (excluding queueing).
  [[nodiscard]] des::Duration service_time(std::size_t bytes) const noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool idle() const noexcept { return !busy_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }

  // -- accumulated statistics ------------------------------------------------
  [[nodiscard]] des::Duration busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] des::Duration wait_time() const noexcept { return wait_time_; }
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return jobs_completed_; }
  [[nodiscard]] std::uint64_t bytes_served() const noexcept { return bytes_served_; }
  [[nodiscard]] std::size_t max_queue_length() const noexcept { return max_queue_; }
  void reset_stats() noexcept;

 private:
  struct Job {
    std::size_t bytes;
    std::function<void()> on_done;
    des::TimePoint submitted;
  };

  void start_next();

  des::Simulator* sim_;
  std::string name_;
  double bytes_per_sec_;
  des::Duration per_job_latency_;
  bool busy_ = false;
  std::deque<Job> queue_;

  des::Duration busy_time_;
  des::Duration wait_time_;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t bytes_served_ = 0;
  std::size_t max_queue_ = 0;
};

}  // namespace chk::xplorer
