// Packet-switched interconnect model.
//
// A transfer is split into fixed-size packets that traverse the route
// store-and-forward; every link is a FIFO queueing server, so checkpoint
// traffic and application traffic contend for the same links — the central
// mechanism behind the paper's results. Per-channel FIFO delivery order is
// guaranteed (packets of earlier transfers between the same pair enter
// every shared queue first).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/simulator.hpp"
#include "xplorer/config.hpp"
#include "xplorer/fifo_server.hpp"
#include "xplorer/topology.hpp"

namespace chk::xplorer {

/// Traffic accounting classes.
enum class Traffic : std::uint8_t { kApplication = 0, kCheckpoint = 1, kControl = 2 };
inline constexpr std::size_t kTrafficClasses = 3;

class Network {
 public:
  Network(des::Simulator& sim, const MachineConfig& config);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Move `bytes` from src to dst; `on_delivered` runs in kernel context
  /// when the last packet arrives. src == dst delivers after a small local
  /// loopback latency, consuming no link.
  void transfer(NodeId src, NodeId dst, std::size_t bytes, Traffic traffic,
                std::function<void()> on_delivered);

  /// Duration the same transfer would take on an otherwise idle machine:
  /// packets pipelined store-and-forward over the route with empty queues.
  /// Pure model arithmetic (no events, no state change) — the obs layer
  /// uses it to split observed write times into service vs contention.
  [[nodiscard]] des::Duration min_transfer_time(NodeId src, NodeId dst,
                                                std::size_t bytes) const noexcept;

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] FifoServer& link(std::size_t index) noexcept { return *links_[index]; }
  [[nodiscard]] std::size_t num_links() const noexcept { return links_.size(); }

  [[nodiscard]] std::uint64_t bytes_sent(Traffic traffic) const noexcept {
    return bytes_sent_[static_cast<std::size_t>(traffic)];
  }
  [[nodiscard]] std::uint64_t transfers(Traffic traffic) const noexcept {
    return transfers_[static_cast<std::size_t>(traffic)];
  }
  /// Sum of busy time over all links.
  [[nodiscard]] des::Duration total_link_busy() const noexcept;
  void reset_stats() noexcept;

 private:
  struct Pending {
    std::size_t packets_remaining;
    std::function<void()> on_delivered;
  };

  void forward(std::span<const std::size_t> route, std::size_t hop, std::size_t bytes,
               const std::shared_ptr<Pending>& pending);

  des::Simulator* sim_;
  MachineConfig config_;
  Topology topology_;
  std::vector<std::unique_ptr<FifoServer>> links_;
  std::uint64_t bytes_sent_[kTrafficClasses] = {};
  std::uint64_t transfers_[kTrafficClasses] = {};
};

}  // namespace chk::xplorer
