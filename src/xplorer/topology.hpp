// Interconnect topology and static routing.
//
// Links are directed (a transputer link is a pair of opposite simplex
// channels, each with its own bandwidth). Routes are precomputed shortest
// paths with deterministic tie-breaking (lowest-numbered neighbour first),
// which for the 2xN mesh coincides with XY routing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "xplorer/config.hpp"

namespace chk::xplorer {

class Topology {
 public:
  struct Edge {
    NodeId from;
    NodeId to;
  };

  static Topology build(TopologyKind kind, std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_links() const noexcept { return edges_.size(); }
  [[nodiscard]] const Edge& edge(std::size_t link) const noexcept { return edges_[link]; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Sequence of link indices from src to dst (empty iff src == dst).
  [[nodiscard]] std::span<const std::size_t> route(NodeId src, NodeId dst) const;

  /// Number of hops between src and dst.
  [[nodiscard]] std::size_t distance(NodeId src, NodeId dst) const {
    return route(src, dst).size();
  }

 private:
  Topology(std::size_t num_nodes, std::vector<Edge> edges);
  void compute_routes();

  std::size_t num_nodes_;
  std::vector<Edge> edges_;
  // routes_[src * num_nodes_ + dst] = link indices along the path
  std::vector<std::vector<std::size_t>> routes_;
};

}  // namespace chk::xplorer
