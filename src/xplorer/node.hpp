// Per-node CPU model.
//
// Converts application work (flops), memory copies, and message staging
// into simulated time, and models the CPU interference caused by a
// checkpointer thread streaming a background write to stable storage
// (main-memory checkpointing variants). Time spent in each category is
// accounted for the harness's overhead breakdown.
#pragma once

#include <cstddef>
#include <cstdint>

#include "des/process.hpp"
#include "des/simulator.hpp"
#include "obs/tracer.hpp"
#include "xplorer/config.hpp"

namespace chk::xplorer {

class Node {
 public:
  Node(des::Simulator& sim, NodeId id, const NodeConfig& config)
      : sim_(&sim), id_(id), config_(config) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const NodeConfig& config() const noexcept { return config_; }

  /// Execute `flops` of application work on the calling process. Runs
  /// slower while a background checkpoint write is in flight on this node.
  void compute(des::Process& self, double flops);

  /// Block for a main-memory copy of `bytes` (checkpoint buffering).
  void mem_copy(des::Process& self, std::size_t bytes);

  /// CPU cost of staging an outgoing or incoming message of `bytes`.
  void message_overhead(des::Process& self, std::size_t bytes);

  [[nodiscard]] des::Duration message_overhead_time(std::size_t bytes) const noexcept;
  [[nodiscard]] des::Duration mem_copy_time(std::size_t bytes) const noexcept;

  /// Background-I/O interference window management (BufferedWriter).
  void begin_background_io() noexcept { ++background_io_; }
  void end_background_io() noexcept { --background_io_; }
  [[nodiscard]] bool background_io_active() const noexcept { return background_io_ > 0; }

  // -- accounting ------------------------------------------------------------
  [[nodiscard]] des::Duration compute_time() const noexcept { return compute_time_; }
  [[nodiscard]] des::Duration interference_time() const noexcept { return interference_time_; }
  [[nodiscard]] des::Duration copy_time() const noexcept { return copy_time_; }
  [[nodiscard]] des::Duration message_time() const noexcept { return message_time_; }
  void reset_stats() noexcept;

  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  des::Simulator* sim_;
  NodeId id_;
  NodeConfig config_;
  obs::Tracer* tracer_ = nullptr;
  int background_io_ = 0;
  des::Duration compute_time_;
  des::Duration interference_time_;
  des::Duration copy_time_;
  des::Duration message_time_;
};

}  // namespace chk::xplorer
