#include "xplorer/storage.hpp"

#include <utility>

namespace chk::xplorer {

StableStorage::StableStorage(des::Simulator& sim, Network& network,
                             const MachineConfig& config)
    : sim_(&sim),
      network_(&network),
      host_node_(config.host_node),
      host_link_(sim, "host-link", config.host_link.bandwidth, config.host_link.latency),
      disk_(sim, "disk", config.disk.bandwidth, config.disk.latency) {}

void StableStorage::write(NodeId from, std::string key, std::vector<std::byte> data,
                          std::function<void()> on_durable) {
  const std::size_t bytes = data.size();
  if (write_hook_) write_hook_(from, key, bytes);
  ++inflight_writes_;
  const std::uint64_t generation = write_generation_;
  // Stage 1: mesh to the host node. Stage 2: host interface link.
  // Stage 3: disk service. Data becomes durable at disk completion — unless
  // a crash invalidated the write's generation first, in which case the
  // pipeline events still drain but the payload is dropped on the floor.
  auto state = std::make_shared<std::pair<std::string, std::vector<std::byte>>>(
      std::move(key), std::move(data));
  network_->transfer(from, host_node_, bytes, Traffic::kCheckpoint,
                     [this, bytes, generation, state,
                      on_durable = std::move(on_durable)]() mutable {
    host_link_.submit(bytes, [this, bytes, generation, state,
                              on_durable = std::move(on_durable)]() mutable {
      disk_.submit(bytes, [this, generation, state, on_durable = std::move(on_durable)] {
        if (generation != write_generation_) return;  // discarded by a crash
        --inflight_writes_;
        store_now(state->first, std::move(state->second));
        ++writes_completed_;
        if (on_durable) on_durable();
      });
    });
  });
}

std::size_t StableStorage::discard_inflight_writes() noexcept {
  const std::size_t discarded = inflight_writes_;
  ++write_generation_;
  writes_discarded_ += discarded;
  inflight_writes_ = 0;
  return discarded;
}

void StableStorage::write_blocking(des::Process& self, NodeId from, std::string key,
                                   std::vector<std::byte> data) {
  des::Completion done(*sim_);
  write(from, std::move(key), std::move(data), done.callback());
  done.await(self);
}

void StableStorage::read(NodeId to, const std::string& key,
                         std::function<void(std::vector<std::byte>)> on_read) {
  std::vector<std::byte> data;
  if (const auto it = files_.find(key); it != files_.end()) data = it->second;
  const std::size_t bytes = data.size();
  auto payload = std::make_shared<std::vector<std::byte>>(std::move(data));
  disk_.submit(bytes, [this, to, bytes, payload, on_read = std::move(on_read)]() mutable {
    host_link_.submit(bytes, [this, to, bytes, payload, on_read = std::move(on_read)]() mutable {
      network_->transfer(host_node_, to, bytes, Traffic::kCheckpoint,
                         [payload, on_read = std::move(on_read)] {
        if (on_read) on_read(std::move(*payload));
      });
    });
  });
}

std::vector<std::byte> StableStorage::read_blocking(des::Process& self, NodeId to,
                                                    const std::string& key) {
  des::Completion done(*sim_);
  auto result = std::make_shared<std::vector<std::byte>>();
  read(to, key, [result, cb = done.callback()](std::vector<std::byte> data) {
    *result = std::move(data);
    cb();
  });
  done.await(self);
  return std::move(*result);
}

std::size_t StableStorage::size(const std::string& key) const {
  const auto it = files_.find(key);
  return it == files_.end() ? 0 : it->second.size();
}

void StableStorage::erase(const std::string& key) {
  const auto it = files_.find(key);
  if (it == files_.end()) return;
  total_bytes_ -= it->second.size();
  files_.erase(it);
}

std::vector<std::string> StableStorage::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> result;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    result.push_back(it->first);
  }
  return result;
}

void StableStorage::store_now(const std::string& key, std::vector<std::byte> data) {
  bytes_written_ += data.size();
  auto [it, inserted] = files_.try_emplace(key);
  if (!inserted) total_bytes_ -= it->second.size();
  total_bytes_ += data.size();
  it->second = std::move(data);
  peak_bytes_ = std::max(peak_bytes_, total_bytes_);
}

void StableStorage::reset_stats() noexcept {
  host_link_.reset_stats();
  disk_.reset_stats();
  bytes_written_ = 0;
  writes_completed_ = 0;
  peak_bytes_ = total_bytes_;
}

}  // namespace chk::xplorer
