#include "xplorer/storage.hpp"

#include <utility>

namespace chk::xplorer {

StableStorage::StableStorage(des::Simulator& sim, Network& network,
                             const MachineConfig& config)
    : sim_(&sim),
      network_(&network),
      host_node_(config.host_node),
      host_link_(sim, "host-link", config.host_link.bandwidth, config.host_link.latency),
      disk_(sim, "disk", config.disk.bandwidth, config.disk.latency) {}

void StableStorage::set_faults(const StorageFaultConfig& config, util::Rng rng) {
  faults_ = std::make_unique<StorageFaultModel>(config, rng);
}

des::Duration StableStorage::degrade_penalty(std::size_t bytes) {
  if (faults_ == nullptr) return des::Duration::zero();
  const double factor = faults_->slowdown_at(sim_->now());
  if (factor <= 1.0) return des::Duration::zero();
  return disk_.service_time(bytes).scaled(factor - 1.0);
}

void StableStorage::write(NodeId from, std::string key, std::vector<std::byte> data,
                          std::function<void(IoStatus)> on_done) {
  const std::size_t bytes = data.size();
  if (write_hook_) write_hook_(from, key, bytes);
  ++inflight_writes_;
  const std::uint64_t generation = write_generation_;
  // Faults are judged at submission (fixed draw order per operation); a
  // degraded window adds extra disk time after the regular service.
  StorageFaultModel::WriteVerdict verdict;
  if (faults_ != nullptr) verdict = faults_->judge_write();
  const des::Duration penalty = degrade_penalty(bytes);
  // Stage 1: mesh to the host node. Stage 2: host interface link.
  // Stage 3: disk service. Data becomes durable at disk completion — unless
  // a crash invalidated the write's generation first, in which case the
  // pipeline events still drain but the payload is dropped on the floor,
  // or the fault model ruled a transient I/O error, in which case the
  // fully-timed attempt reports kIoError and stores nothing.
  auto state = std::make_shared<std::pair<std::string, std::vector<std::byte>>>(
      std::move(key), std::move(data));
  auto finish = [this, generation, state, verdict,
                 on_done = std::move(on_done)]() mutable {
    if (generation != write_generation_) return;  // discarded by a crash
    --inflight_writes_;
    if (verdict.io_error) {
      ++writes_failed_;
      if (on_done) on_done(IoStatus::kIoError);
      return;
    }
    const std::size_t stored = state->second.size();
    store_now(state->first, std::move(state->second));
    if (verdict.bitrot && stored > 0) {
      // Silent corruption between write and read: the durable image gets
      // one byte flipped, detectable only by the blob's own checksum.
      auto& blob = files_[state->first];
      blob[verdict.rot_offset % blob.size()] ^= std::byte{verdict.rot_mask};
    }
    ++writes_completed_;
    if (on_done) on_done(IoStatus::kOk);
  };
  network_->transfer(from, host_node_, bytes, Traffic::kCheckpoint,
                     [this, bytes, penalty, finish = std::move(finish)]() mutable {
    host_link_.submit(bytes, [this, bytes, penalty, finish = std::move(finish)]() mutable {
      disk_.submit(bytes, [this, penalty, finish = std::move(finish)]() mutable {
        if (penalty > des::Duration::zero()) {
          sim_->schedule_after(penalty, std::move(finish));
        } else {
          finish();
        }
      });
    });
  });
}

std::size_t StableStorage::discard_inflight_writes() noexcept {
  const std::size_t discarded = inflight_writes_;
  ++write_generation_;
  writes_discarded_ += discarded;
  inflight_writes_ = 0;
  return discarded;
}

IoStatus StableStorage::write_blocking(des::Process& self, NodeId from, std::string key,
                                       std::vector<std::byte> data) {
  des::Completion done(*sim_);
  auto status = std::make_shared<IoStatus>(IoStatus::kOk);
  write(from, std::move(key), std::move(data),
        [status, cb = done.callback()](IoStatus s) {
          *status = s;
          cb();
        });
  done.await(self);
  return *status;
}

void StableStorage::read(NodeId to, const std::string& key,
                         std::function<void(std::vector<std::byte>, IoStatus)> on_read) {
  std::vector<std::byte> data;
  if (const auto it = files_.find(key); it != files_.end()) data = it->second;
  const std::size_t bytes = data.size();
  StorageFaultModel::ReadVerdict verdict;
  if (faults_ != nullptr) verdict = faults_->judge_read();
  const des::Duration penalty = degrade_penalty(bytes);
  if (verdict.io_error) data.clear();
  auto payload = std::make_shared<std::vector<std::byte>>(std::move(data));
  const IoStatus status = verdict.io_error ? IoStatus::kIoError : IoStatus::kOk;
  // The failed read is timed like the successful one would have been: the
  // disk did the work before the error surfaced.
  disk_.submit(bytes, [this, to, bytes, payload, status, penalty,
                       on_read = std::move(on_read)]() mutable {
    auto deliver = [this, to, bytes, payload, status,
                    on_read = std::move(on_read)]() mutable {
      host_link_.submit(bytes, [this, to, bytes, payload, status,
                                on_read = std::move(on_read)]() mutable {
        network_->transfer(host_node_, to, bytes, Traffic::kCheckpoint,
                           [payload, status, on_read = std::move(on_read)] {
          if (on_read) on_read(std::move(*payload), status);
        });
      });
    };
    if (penalty > des::Duration::zero()) {
      sim_->schedule_after(penalty, std::move(deliver));
    } else {
      deliver();
    }
  });
}

std::vector<std::byte> StableStorage::read_blocking(des::Process& self, NodeId to,
                                                    const std::string& key,
                                                    IoStatus* status) {
  des::Completion done(*sim_);
  auto result = std::make_shared<std::pair<std::vector<std::byte>, IoStatus>>();
  read(to, key, [result, cb = done.callback()](std::vector<std::byte> data, IoStatus s) {
    result->first = std::move(data);
    result->second = s;
    cb();
  });
  done.await(self);
  if (status != nullptr) *status = result->second;
  return std::move(result->first);
}

std::size_t StableStorage::size(const std::string& key) const {
  const auto it = files_.find(key);
  return it == files_.end() ? 0 : it->second.size();
}

void StableStorage::erase(const std::string& key) {
  const auto it = files_.find(key);
  if (it == files_.end()) return;
  total_bytes_ -= it->second.size();
  bytes_reclaimed_ += it->second.size();
  files_.erase(it);
}

std::vector<std::string> StableStorage::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> result;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    result.push_back(it->first);
  }
  return result;
}

void StableStorage::store_now(const std::string& key, std::vector<std::byte> data) {
  bytes_written_ += data.size();
  auto [it, inserted] = files_.try_emplace(key);
  if (!inserted) total_bytes_ -= it->second.size();
  total_bytes_ += data.size();
  it->second = std::move(data);
  peak_bytes_ = std::max(peak_bytes_, total_bytes_);
}

void StableStorage::reset_stats() noexcept {
  host_link_.reset_stats();
  disk_.reset_stats();
  bytes_written_ = 0;
  writes_completed_ = 0;
  writes_failed_ = 0;
  bytes_reclaimed_ = 0;
  peak_bytes_ = total_bytes_;
  if (faults_ != nullptr) faults_->reset_counters();
}

}  // namespace chk::xplorer
