// Stable storage: the host file system.
//
// All nodes share one disk reached through the host-interface link attached
// to the host node; checkpoint data first crosses the mesh to the host
// node, then the host link, then queues at the disk — a write from node i
// therefore contends with application traffic on the mesh AND with every
// other node's writes at the host link and disk. This is the bottleneck
// structure of the paper's testbed.
//
// Contents are real bytes, kept versioned by key, so recovery restores
// actual process state and results can be verified bit-for-bit.
//
// An optional StorageFaultModel turns the disk into a fault domain of its
// own: transient write/read I/O errors (surfaced through IoStatus after the
// full timed pipeline), degraded-throughput windows (extra disk service
// time) and silent bit-rot of durable images. With no model installed every
// operation takes the historical fault-free path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "des/async.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"
#include "util/rng.hpp"
#include "xplorer/config.hpp"
#include "xplorer/fifo_server.hpp"
#include "xplorer/network.hpp"
#include "xplorer/storage_fault.hpp"

namespace chk::xplorer {

/// Result of one storage operation. kIoError is transient: the operation
/// consumed its full pipeline time but did not take effect (a failed write
/// leaves the previous version of the key intact; a failed read delivers
/// no data). Retry policy lives with the caller.
enum class IoStatus : std::uint8_t { kOk = 0, kIoError = 1 };

class StableStorage {
 public:
  StableStorage(des::Simulator& sim, Network& network, const MachineConfig& config);
  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;

  /// Timed write of `data` under `key` from node `from`. The key's content
  /// becomes durable exactly when `on_done` fires with IoStatus::kOk
  /// (kernel context); a crash before that — or a transient I/O error —
  /// leaves the previous version (if any) intact.
  void write(NodeId from, std::string key, std::vector<std::byte> data,
             std::function<void(IoStatus)> on_done);

  /// Failure seam: every write still in the mesh/host-link/disk pipeline is
  /// invalidated — it never becomes durable, is not counted in
  /// bytes_written(), and its on_done never fires. Callers must ensure
  /// the writer processes are killed (a crash takes them down with the
  /// write); a live write_blocking waiter would hang. Returns the number of
  /// writes invalidated.
  std::size_t discard_inflight_writes() noexcept;

  /// Writes submitted but not yet durable (nor discarded).
  [[nodiscard]] std::size_t inflight_writes() const noexcept { return inflight_writes_; }
  /// Writes invalidated by discard_inflight_writes over the run.
  [[nodiscard]] std::uint64_t writes_discarded() const noexcept { return writes_discarded_; }

  /// Passive hook invoked at every write submission (fault injection aims
  /// mid-write strikes with it). Must not mutate storage state; scheduling
  /// simulator events is fine.
  using WriteHook = std::function<void(NodeId from, const std::string& key, std::size_t bytes)>;
  void set_write_hook(WriteHook hook) noexcept { write_hook_ = std::move(hook); }

  /// Blocking variant for process context; returns the write's outcome.
  IoStatus write_blocking(des::Process& self, NodeId from, std::string key,
                          std::vector<std::byte> data);

  /// Timed read of `key`, delivered to node `to`. `on_read` receives a
  /// copy of the data (empty vector if the key does not exist or the read
  /// hit a transient I/O error — the status disambiguates).
  void read(NodeId to, const std::string& key,
            std::function<void(std::vector<std::byte>, IoStatus)> on_read);
  std::vector<std::byte> read_blocking(des::Process& self, NodeId to, const std::string& key,
                                       IoStatus* status = nullptr);

  /// Metadata operations (modelled as free: the paper's protocols do them
  /// rarely and their cost is subsumed in the per-write latency).
  [[nodiscard]] bool exists(const std::string& key) const { return files_.contains(key); }
  /// Zero-time view of a stored blob, for recovery *planning* (scanning
  /// dependency metadata). Actual state transfer must use read()/
  /// read_blocking() so it is timed. Throws std::out_of_range if missing.
  [[nodiscard]] const std::vector<std::byte>& peek(const std::string& key) const {
    return files_.at(key);
  }
  [[nodiscard]] std::size_t size(const std::string& key) const;
  void erase(const std::string& key);
  [[nodiscard]] std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Durable bytes currently held / high-water mark.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t peak_bytes() const noexcept { return peak_bytes_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  [[nodiscard]] std::uint64_t writes_completed() const noexcept { return writes_completed_; }
  /// Writes that finished their pipeline with a transient I/O error.
  [[nodiscard]] std::uint64_t writes_failed() const noexcept { return writes_failed_; }
  /// Bytes released by erase() over the run (retention-GC accounting).
  [[nodiscard]] std::uint64_t bytes_reclaimed() const noexcept { return bytes_reclaimed_; }

  /// Install the storage fault model. The RNG must be a dedicated forked
  /// stream; faults apply to every subsequent operation. Passing a config
  /// with no enabled faults still installs the model (its counters stay 0
  /// and draw streams advance), so campaigns can toggle individual faults
  /// without perturbing each other — install nothing for the historical
  /// bit-identical path.
  void set_faults(const StorageFaultConfig& config, util::Rng rng);
  [[nodiscard]] StorageFaultModel* faults() noexcept { return faults_.get(); }
  [[nodiscard]] const StorageFaultModel* faults() const noexcept { return faults_.get(); }

  /// Duration a write of `bytes` from `from` would take on an otherwise
  /// idle machine: uncontended mesh pipeline + host link + disk service.
  /// The gap between this and an observed write duration is queueing —
  /// storage contention.
  [[nodiscard]] des::Duration pure_write_time(NodeId from, std::size_t bytes) const noexcept {
    return network_->min_transfer_time(from, host_node_, bytes) +
           host_link_.service_time(bytes) + disk_.service_time(bytes);
  }

  [[nodiscard]] FifoServer& disk() noexcept { return disk_; }
  [[nodiscard]] FifoServer& host_link() noexcept { return host_link_; }
  void reset_stats() noexcept;

 private:
  void store_now(const std::string& key, std::vector<std::byte> data);
  /// Extra disk time this operation owes to an open degraded window
  /// (zero when healthy or no model installed).
  [[nodiscard]] des::Duration degrade_penalty(std::size_t bytes);

  des::Simulator* sim_;
  Network* network_;
  NodeId host_node_;
  FifoServer host_link_;
  FifoServer disk_;
  std::map<std::string, std::vector<std::byte>> files_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t writes_completed_ = 0;
  std::uint64_t writes_failed_ = 0;
  std::uint64_t bytes_reclaimed_ = 0;
  std::uint64_t write_generation_ = 0;
  std::size_t inflight_writes_ = 0;
  std::uint64_t writes_discarded_ = 0;
  WriteHook write_hook_;
  std::unique_ptr<StorageFaultModel> faults_;
};

}  // namespace chk::xplorer
