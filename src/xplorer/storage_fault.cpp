#include "xplorer/storage_fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace chk::xplorer {

namespace {

void check_prob(const char* name, double p) {
  if (!(p >= 0.0) || !(p < 1.0)) {
    throw std::invalid_argument(std::string(name) +
                                ": probability must be in [0, 1), got " +
                                std::to_string(p));
  }
}

}  // namespace

void StorageFaultConfig::validate() const {
  check_prob("storage write error", write_error);
  check_prob("storage read error", read_error);
  check_prob("storage bitrot", bitrot);
  if (!(degrade_factor >= 1.0)) {
    throw std::invalid_argument("storage degrade factor: must be >= 1, got " +
                                std::to_string(degrade_factor));
  }
  if (degrade_factor > 1.0 &&
      (!(degrade_gap_mean_s > 0.0) || !(degrade_len_mean_s > 0.0))) {
    throw std::invalid_argument(
        "storage degrade window means: must be positive when degradation "
        "is enabled");
  }
}

StorageFaultModel::StorageFaultModel(const StorageFaultConfig& config, util::Rng rng)
    : cfg_(config), rng_(rng), degrade_rng_(rng_.fork(0xD16u)) {
  cfg_.validate();
}

StorageFaultModel::WriteVerdict StorageFaultModel::judge_write() {
  WriteVerdict v;
  v.io_error = cfg_.write_error > 0 && rng_.bernoulli(cfg_.write_error);
  v.bitrot = cfg_.bitrot > 0 && rng_.bernoulli(cfg_.bitrot);
  if (v.bitrot) {
    // Value draws are keyed to the bitrot flag alone so the stream stays
    // aligned when write_error is toggled; the storage only applies them
    // when the write actually lands.
    v.rot_offset = rng_();
    v.rot_mask = static_cast<std::uint8_t>(rng_() | 1u);
  }
  if (v.io_error) {
    ++write_errors_;
    v.bitrot = false;  // a failed write leaves nothing to rot
  } else if (v.bitrot) {
    ++bitrot_flagged_;
  }
  return v;
}

StorageFaultModel::ReadVerdict StorageFaultModel::judge_read() {
  ReadVerdict v;
  v.io_error = cfg_.read_error > 0 && rng_.bernoulli(cfg_.read_error);
  if (v.io_error) ++read_errors_;
  return v;
}

double StorageFaultModel::slowdown_at(des::TimePoint now) {
  if (cfg_.degrade_factor <= 1.0) return 1.0;
  while (now >= window_end_) advance_window();
  if (now >= window_start_) {
    ++degraded_ops_;
    return cfg_.degrade_factor;
  }
  return 1.0;
}

void StorageFaultModel::advance_window() {
  const double gap = std::max(1e-9, degrade_rng_.exponential(cfg_.degrade_gap_mean_s));
  const double len = std::max(1e-9, degrade_rng_.exponential(cfg_.degrade_len_mean_s));
  window_start_ = window_end_ + des::Duration::seconds(gap);
  window_end_ = window_start_ + des::Duration::seconds(len);
}

}  // namespace chk::xplorer
