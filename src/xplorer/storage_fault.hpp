// Configurable stable-storage fault model.
//
// The paper treats the shared stable store as perfectly reliable; real
// storage tiers return transient I/O errors, degrade under load and rot
// bits at rest. This model supplies those failure modes for StableStorage:
// per-operation transient write/read errors, timed degraded-throughput
// windows, and silent single-byte corruption of a durable image injected
// between write and read (the CHK2/CHL2 checksums make it detectable at
// load time). Every decision is a draw from a dedicated seed-stable RNG
// stream with a fixed draw order (same discipline as LinkFaultModel in
// src/chklib/comm/link_fault.*), and the degraded-window schedule comes
// from a forked sub-stream generated in time order — it depends only on
// the seed, never on the I/O schedule. When no model is installed the
// storage takes its historical fault-free path, so the feature is
// zero-overhead and bit-identical when disabled.
#pragma once

#include <cstdint>

#include "des/time.hpp"
#include "util/rng.hpp"

namespace chk::xplorer {

struct StorageFaultConfig {
  /// Per-write transient failure probability in [0, 1): the write occupies
  /// the full mesh/host-link/disk pipeline, then reports an I/O error and
  /// leaves the previous version (if any) of the key intact.
  double write_error = 0;
  /// Per-read transient failure probability in [0, 1): the read is timed
  /// as usual but delivers no data.
  double read_error = 0;
  /// Per-write silent-corruption probability in [0, 1): the image becomes
  /// durable with one byte flipped. The write itself reports success —
  /// only a checksum verification at read/peek time can tell.
  double bitrot = 0;
  /// Degraded-throughput windows: while a window is open, disk service for
  /// each operation takes `degrade_factor` times as long. 1.0 disables;
  /// must be >= 1.
  double degrade_factor = 1.0;
  /// Mean gap between degraded windows / mean window length (exponential).
  double degrade_gap_mean_s = 5.0;
  double degrade_len_mean_s = 1.0;
  /// Stream selector forked off the experiment seed, so one experiment
  /// config hosts many campaign runs differing only in the disk weather.
  std::uint64_t stream = 0;

  /// True when any fault can actually occur.
  [[nodiscard]] bool enabled() const noexcept {
    return write_error > 0 || read_error > 0 || bitrot > 0 || degrade_factor > 1.0;
  }
  /// Throws std::invalid_argument on out-of-range probabilities (outside
  /// [0, 1)), a degrade factor below 1, or non-positive window parameters
  /// when degradation is enabled.
  void validate() const;
};

class StorageFaultModel {
 public:
  /// The model's ruling on one write submission. Base draws happen
  /// unconditionally in a fixed order (error, bitrot), value draws only
  /// when their flag fired — the stream stays aligned across configs that
  /// toggle individual faults.
  struct WriteVerdict {
    bool io_error = false;
    bool bitrot = false;
    std::uint64_t rot_offset = 0;  ///< byte position (mod blob size)
    std::uint8_t rot_mask = 0;     ///< nonzero iff bitrot
  };
  struct ReadVerdict {
    bool io_error = false;
  };

  StorageFaultModel(const StorageFaultConfig& config, util::Rng rng);

  [[nodiscard]] WriteVerdict judge_write();
  [[nodiscard]] ReadVerdict judge_read();

  /// Disk-service slowdown factor at `now` (1.0 = healthy). Queries must
  /// arrive with non-decreasing timestamps, which event-ordered execution
  /// guarantees; windows are generated lazily from their own sub-stream.
  [[nodiscard]] double slowdown_at(des::TimePoint now);

  [[nodiscard]] const StorageFaultConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t write_errors() const noexcept { return write_errors_; }
  [[nodiscard]] std::uint64_t read_errors() const noexcept { return read_errors_; }
  [[nodiscard]] std::uint64_t bitrot_flagged() const noexcept { return bitrot_flagged_; }
  [[nodiscard]] std::uint64_t degraded_ops() const noexcept { return degraded_ops_; }
  void reset_counters() noexcept {
    write_errors_ = read_errors_ = bitrot_flagged_ = degraded_ops_ = 0;
  }

 private:
  void advance_window();

  StorageFaultConfig cfg_;
  util::Rng rng_;
  util::Rng degrade_rng_;
  des::TimePoint window_start_ = des::TimePoint::max();
  des::TimePoint window_end_ = des::TimePoint::origin();
  std::uint64_t write_errors_ = 0;
  std::uint64_t read_errors_ = 0;
  std::uint64_t bitrot_flagged_ = 0;
  std::uint64_t degraded_ops_ = 0;
};

}  // namespace chk::xplorer
