#include "harness/experiment.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "chklib/proto/coordinated.hpp"
#include "chklib/proto/independent.hpp"
#include "chklib/verify/monitor.hpp"
#include "des/simulator.hpp"
#include "faultsim/injector.hpp"

namespace chk::harness {

namespace {

/// Publish the run's results and the overhead attribution into a typed
/// registry: everything the JSON exports and the CI schema check consume.
obs::MetricsSnapshot build_metrics(const ExperimentResult& result, const ObsData& data) {
  obs::Registry reg;
  reg.counter("run/events").set(result.events);
  reg.counter("run/trace_events").set(data.trace.events.size());
  reg.counter("comm/app_messages").set(result.app_messages);
  reg.counter("comm/app_bytes").set(result.app_bytes);
  reg.counter("comm/control_messages").set(result.control_messages);
  reg.counter("comm/control_bytes").set(result.control_bytes);
  reg.counter("ckpt/local_checkpoints").set(result.local_checkpoints);
  reg.counter("ckpt/committed_rounds").set(result.committed_rounds);
  reg.counter("ckpt/bytes_written").set(result.bytes_written);

  reg.gauge("run/exec_time_s").set(result.exec_time_s);
  reg.gauge("overhead/app_blocked_s").set(result.app_blocked_s);
  reg.gauge("overhead/interference_s").set(result.interference_s);
  reg.gauge("overhead/frozen_stall_s").set(result.frozen_stall_s);
  reg.gauge("storage/disk_busy_s").set(result.disk_busy_s);
  reg.gauge("storage/disk_wait_s").set(result.disk_wait_s);

  const obs::RankBuckets& total = data.attribution.total;
  reg.gauge("attrib/sync_wait_s").set(total.sync_wait_s);
  reg.gauge("attrib/mem_copy_s").set(total.mem_copy_s);
  reg.gauge("attrib/stable_write_s").set(total.stable_write_s);
  reg.gauge("attrib/storage_contention_s").set(total.storage_contention_s);
  reg.gauge("attrib/logging_s").set(total.logging_s);
  reg.gauge("attrib/frozen_stall_s").set(total.frozen_stall_s);
  reg.gauge("attrib/interference_s").set(total.interference_s);
  reg.gauge("attrib/recovery_s").set(total.recovery_s);
  reg.gauge("attrib/retransmit_wait_s").set(total.retransmit_wait_s);
  reg.gauge("attrib/storage_retry_wait_s").set(total.storage_retry_wait_s);
  reg.gauge("attrib/svc_queue_wait_s").set(total.svc_queue_wait_s);
  reg.gauge("attrib/membership_wait_s").set(total.membership_wait_s);
  reg.gauge("attrib/total_s").set(total.total_s());

  // Transport / link-fault counters (all zero with faults off).
  reg.counter("comm/retransmits").set(result.retransmits);
  reg.counter("comm/dups_suppressed").set(result.dups_suppressed);
  reg.counter("comm/corrupt_detected").set(result.corrupt_detected);
  reg.counter("comm/link_drops").set(result.link_drops);
  reg.counter("comm/link_duplicates").set(result.link_duplicates);
  reg.counter("comm/link_corrupted").set(result.link_corrupted);
  reg.counter("comm/link_delayed").set(result.link_delayed);
  reg.counter("ckpt/aborted_rounds").set(result.aborted_rounds);
  reg.counter("ckpt/tokens_regenerated").set(result.tokens_regenerated);
  reg.counter("comm/partition_drops").set(result.partition_drops);

  // Cluster-membership counters (all zero with the membership service off).
  reg.counter("membership/heartbeats_sent").set(result.heartbeats_sent);
  reg.counter("membership/suspicions").set(result.suspicions);
  reg.counter("membership/views_established").set(result.views_established);
  reg.counter("membership/evictions").set(result.evictions);
  reg.counter("membership/wrongful_evictions").set(result.wrongful_evictions);
  reg.counter("membership/rejoins").set(result.rejoins);
  reg.counter("membership/crashes").set(result.membership_crashes);
  reg.counter("membership/forced_recoveries").set(result.forced_recoveries);
  reg.counter("membership/suspicions_cleared").set(result.suspicions_cleared);
  reg.counter("membership/detections").set(result.detections);
  auto& detect_hist = reg.log_histogram("membership/detection_latency_s",
                                        kDetectLatMinExp, kDetectLatMaxExp, 1e-9);
  for (const std::int64_t ns : result.detection_latency_ns) {
    detect_hist.observe(static_cast<std::uint64_t>(std::max<std::int64_t>(ns, 0)));
  }

  // Stable-storage fault counters (all zero with storage faults off).
  reg.counter("storage/io_write_errors").set(result.io_write_errors);
  reg.counter("storage/io_read_errors").set(result.io_read_errors);
  reg.counter("storage/bitrot_injected").set(result.bitrot_injected);
  reg.counter("storage/degraded_ops").set(result.degraded_ops);
  reg.counter("storage/retries").set(result.storage_retries);
  reg.counter("storage/write_failures").set(result.storage_write_failures);
  reg.counter("storage/read_failures").set(result.storage_read_failures);
  reg.counter("storage/reclaimed_bytes").set(result.reclaimed_bytes);
  reg.counter("ckpt/write_failures").set(result.ckpt_write_failures);
  reg.counter("ckpt/commit_write_failures").set(result.commit_write_failures);
  reg.counter("ckpt/corrupt_discarded").set(result.corrupt_discarded);
  reg.counter("recovery/generations_skipped").set(result.generations_skipped);
  reg.gauge("storage/retry_wait_s").set(result.storage_retry_wait_s);

  // Recovery outcome counters (all zero in failure-free runs).
  std::uint64_t interrupted = 0;
  std::uint64_t mid_write = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_reread = 0;
  double latency_s = 0;
  for (const RecoveryReport& rep : result.recoveries) {
    interrupted += rep.interrupted ? 1 : 0;
    mid_write += rep.mid_write ? 1 : 0;
    bytes_read += rep.bytes_read;
    bytes_reread += rep.bytes_reread;
    latency_s += rep.recovery_latency.to_seconds();
  }
  reg.counter("recovery/failures").set(result.recoveries.size());
  reg.counter("recovery/interrupted").set(interrupted);
  reg.counter("recovery/mid_write").set(mid_write);
  reg.counter("recovery/bytes_read").set(bytes_read);
  reg.counter("recovery/bytes_reread").set(bytes_reread);
  reg.counter("recovery/writes_discarded").set(result.writes_discarded);
  reg.gauge("recovery/latency_total_s").set(latency_s);

  auto& windows = reg.histogram("ckpt/window_s", {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0});
  for (const obs::Event& e : data.trace.events) {
    if (e.kind == obs::EventKind::kCkptWindow) {
      windows.observe(static_cast<double>(e.dur_ns) * 1e-9);
    }
  }
  return reg.snapshot();
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  obs::Tracer tracer;  // outlives the runtime (teardown may still emit)
  des::Simulator sim;
  chklib::Runtime runtime(sim, config.machine, config.seed);
  if (config.observe) runtime.set_tracer(&tracer);
  runtime.set_app(config.label, config.app);

  // Unreliable links + reliable transport. Configured before the protocol
  // exists so its control traffic rides the transport from the first send.
  const bool lossy_links = config.link_faults.has_value() && config.link_faults->enabled();
  const bool membership_on = config.membership.has_value();
  if (membership_on && lossy_links && !config.reliable_transport) {
    throw std::invalid_argument(
        "membership requires the reliable transport under link faults: raw "
        "lossy links turn every detection timeout into a coin flip");
  }
  if (lossy_links) {
    runtime.comm().set_link_faults(
        *config.link_faults,
        runtime.fork_rng(0x11F0u).fork(config.link_faults->stream));
    if (config.reliable_transport) runtime.comm().enable_transport();
  }
  // Unreliable stable storage. Installed before any write is submitted;
  // its RNG stream (tag 0x510F) is forked independently of the link-fault
  // stream (0x11F0), so the two fault domains compose seed-stably.
  const bool faulty_storage =
      config.storage_faults.has_value() && config.storage_faults->enabled();
  if (faulty_storage) {
    runtime.machine().storage().set_faults(
        *config.storage_faults,
        runtime.fork_rng(0x510Fu).fork(config.storage_faults->stream));
  }
  if (config.storage_retry.has_value()) {
    runtime.store().set_retry_policy(*config.storage_retry);
  }
  // Retention: one generation normally; two when the storage can rot or
  // fail a write, so verified recovery has a generation to fall back to.
  std::uint32_t keep_depth = config.keep_depth;
  if (keep_depth == 0) keep_depth = faulty_storage ? 2 : 1;
  // Watchdogs: off by default (arming the timers perturbs fault-free event
  // sequencing); auto-armed whenever the links can actually lose messages —
  // or the storage can fail a commit write, which aborts rounds through the
  // same re-initiation path — or the membership service can crash / fence
  // ranks mid-round, which strands acks the same way.
  const bool needs_watchdog = lossy_links || faulty_storage || membership_on;
  des::Duration round_timeout = config.round_timeout;
  des::Duration token_timeout = config.token_timeout;
  if (needs_watchdog && round_timeout.to_nanos() == 0) {
    round_timeout = config.interval + des::Duration::secs(30);
  }
  if (needs_watchdog && token_timeout.to_nanos() == 0) {
    token_timeout = round_timeout / 4;
  }

  std::unique_ptr<chklib::Protocol> protocol;
  if (is_coordinated(config.scheme)) {
    protocol = std::make_unique<chklib::CoordinatedProtocol>(
        runtime,
        chklib::CoordinatedProtocol::Config{.scheme = config.scheme,
                                            .interval = config.interval,
                                            .rounds = config.checkpoints,
                                            .ablate_discard_state =
                                                config.ablate_empty_checkpoints,
                                            .incremental = config.incremental,
                                            .full_every = config.full_every,
                                            .round_timeout = round_timeout,
                                            .token_timeout = token_timeout,
                                            .keep_depth = keep_depth});
  } else if (is_independent(config.scheme)) {
    protocol = std::make_unique<chklib::IndependentProtocol>(
        runtime, chklib::IndependentProtocol::Config{.scheme = config.scheme,
                                                     .interval = config.interval,
                                                     .count = config.checkpoints,
                                                     .jitter = config.jitter,
                                                     .gc = config.gc,
                                                     .gc_mode = config.gc_mode,
                                                     .recovery_mode = config.recovery_mode,
                                                     .message_logging =
                                                         config.message_logging,
                                                     .keep_depth = keep_depth});
  }

  std::unique_ptr<chklib::verify::Monitor> monitor;
  if (config.verify) {
    auto options = chklib::verify::Monitor::options_for(config.scheme);
    options.lossy_raw_links = lossy_links && !config.reliable_transport;
    options.check_membership = membership_on;
    monitor = std::make_unique<chklib::verify::Monitor>(runtime, options);
    monitor->install();
  }

  std::unique_ptr<chklib::RecoveryManager> recovery;
  std::unique_ptr<faultsim::FaultInjector> injector;
  std::unique_ptr<chklib::membership::MembershipService> membership;
  if (protocol) {
    if (membership_on) {
      // The service intercepts failures (so they route through detection +
      // election instead of the oracle) and must be attached before the
      // protocol starts; its RNG stream (tag 0xBEA7) is forked independently
      // of every other fault domain, so detection phases compose seed-stably.
      recovery = std::make_unique<chklib::RecoveryManager>(runtime, *protocol);
      membership = std::make_unique<chklib::membership::MembershipService>(
          runtime, *recovery, *config.membership,
          runtime.fork_rng(0xBEA7u).fork(config.membership->stream));
      if (is_coordinated(config.scheme)) {
        static_cast<chklib::CoordinatedProtocol&>(*protocol).set_membership(
            membership.get());
      }
    }
    protocol->start();
    if (membership) membership->start();
    if (recovery == nullptr &&
        (config.failure.has_value() || config.faults.has_value())) {
      recovery = std::make_unique<chklib::RecoveryManager>(runtime, *protocol);
    }
    if (recovery) {
      if (config.failure.has_value()) {
        recovery->inject_failure_at(config.failure->when, config.failure->rank);
      }
      if (config.faults.has_value()) {
        injector = std::make_unique<faultsim::FaultInjector>(runtime, *recovery,
                                                             *config.faults);
        if (config.faults->target_coordinator) {
          if (!membership || !is_coordinated(config.scheme)) {
            throw std::invalid_argument(
                "faults.target_coordinator needs the membership service on a "
                "coordinated scheme — there is no elected coordinator to aim at");
          }
          injector->set_coordinator_provider(
              [service = membership.get()] { return service->coordinator(); });
        }
        injector->arm();
      }
    }
  }

  runtime.start_apps();
  const auto run = runtime.run_to_completion(config.max_events);

  ExperimentResult result;
  result.label = config.label;
  result.scheme = config.scheme;
  result.exec_time_s = runtime.apps_finished_at().to_seconds();
  result.events = sim.events_executed();
  result.trace_hash = sim.trace_hash();
  if (membership) membership->finalize();  // closes still-open exclusion spans
  if (monitor) {
    monitor->finalize();
    result.invariant_checks = monitor->checks();
    result.invariant_violations = monitor->violations();
    result.messages_in_flight_at_end = monitor->in_flight();
  }

  auto& machine = runtime.machine();
  for (Rank r = 0; r < runtime.num_ranks(); ++r) {
    result.interference_s += machine.node(r).interference_time().to_seconds();
    result.frozen_stall_s += runtime.comm().endpoint(r).gate().blocked_time().to_seconds();
  }
  if (protocol) result.app_blocked_s = protocol->stats().app_blocked.to_seconds();
  result.disk_busy_s = machine.storage().disk().busy_time().to_seconds();
  result.disk_wait_s = machine.storage().disk().wait_time().to_seconds();
  result.host_link_busy_s = machine.storage().host_link().busy_time().to_seconds();
  result.link_busy_s = machine.network().total_link_busy().to_seconds();

  result.app_messages = runtime.comm().app_messages();
  result.app_bytes = runtime.comm().app_bytes();
  result.control_messages = runtime.comm().control_messages();
  result.control_bytes = runtime.comm().control_bytes();
  result.checkpoint_net_bytes = machine.network().bytes_sent(xplorer::Traffic::kCheckpoint);

  result.retransmits = runtime.comm().retransmits();
  result.dups_suppressed = runtime.comm().dups_suppressed();
  result.corrupt_detected = runtime.comm().corrupt_detected();
  result.link_drops = runtime.comm().link_drops();
  result.link_duplicates = runtime.comm().link_duplicates();
  result.link_corrupted = runtime.comm().link_corrupted();
  result.link_delayed = runtime.comm().link_delayed();
  result.partition_drops = runtime.comm().partition_drops();

  if (membership) {
    const auto& ms = membership->stats();
    result.heartbeats_sent = ms.heartbeats_sent;
    result.suspicions = ms.suspicions;
    result.views_established = ms.views_established;
    result.evictions = ms.evictions;
    result.wrongful_evictions = ms.wrongful_evictions;
    result.rejoins = ms.rejoins;
    result.membership_crashes = ms.crashes;
    result.forced_recoveries = ms.forced_recoveries;
    result.suspicions_cleared = ms.suspicions_cleared;
    result.detections = ms.detections;
    result.detection_latency_ns = ms.detection_latency_ns;
  }

  if (protocol) {
    const auto& stats = protocol->stats();
    result.local_checkpoints = stats.local_checkpoints;
    result.committed_rounds = stats.committed_rounds;
    result.gc_reclaimed = stats.gc_reclaimed;
    result.aborted_rounds = stats.aborted_rounds;
    result.tokens_regenerated = stats.tokens_regenerated;
    result.ckpt_write_failures = stats.ckpt_write_failures;
    result.commit_write_failures = stats.commit_write_failures;
    result.corrupt_discarded = stats.corrupt_discarded;
    result.image_log = stats.image_log;
  }
  if (const auto* faults = machine.storage().faults()) {
    result.io_write_errors = faults->write_errors();
    result.io_read_errors = faults->read_errors();
    result.bitrot_injected = faults->bitrot_flagged();
    result.degraded_ops = faults->degraded_ops();
  }
  {
    const auto& client = runtime.store().client();
    result.storage_retries = client.retries();
    result.storage_write_failures = client.write_failures();
    result.storage_read_failures = client.read_failures();
    result.storage_retry_wait_s = client.retry_wait().to_seconds();
  }
  result.reclaimed_bytes = machine.storage().bytes_reclaimed();
  result.bytes_written = machine.storage().bytes_written();
  result.peak_storage_bytes = machine.storage().peak_bytes();
  result.final_storage_bytes = runtime.store().total_checkpoint_bytes();
  result.final_stored_checkpoints = runtime.store().checkpoint_count();

  result.digest = runtime.result_digest();
  if (recovery) {
    result.recoveries = recovery->reports();
    for (const RecoveryReport& rep : result.recoveries) {
      result.generations_skipped += rep.generations_skipped;
    }
  }
  if (injector) result.injections = injector->stats();
  result.writes_discarded = machine.storage().writes_discarded();

  if (config.observe) {
    ObsData data;
    data.trace = tracer.take();
    data.attribution = obs::attribute(data.trace, runtime.num_ranks());
    data.metrics = build_metrics(result, data);
    result.obs = std::move(data);
  }
  (void)run;
  return result;
}

ExperimentResult run_normal(ExperimentConfig config) {
  config.scheme = Scheme::kNone;
  config.failure.reset();
  config.faults.reset();
  config.link_faults.reset();  // baselines measure the fault-free machine
  config.membership.reset();
  return run_experiment(config);
}

DeterminismReport check_determinism(const ExperimentConfig& config) {
  DeterminismReport report;
  report.first = run_experiment(config);
  report.second = run_experiment(config);
  report.deterministic = report.first.trace_hash == report.second.trace_hash &&
                         report.first.events == report.second.events &&
                         report.first.exec_time_s == report.second.exec_time_s &&
                         report.first.digest == report.second.digest;
  return report;
}

}  // namespace chk::harness
