#include "harness/experiment.hpp"

#include <memory>

#include "chklib/proto/coordinated.hpp"
#include "chklib/proto/independent.hpp"
#include "chklib/verify/monitor.hpp"
#include "des/simulator.hpp"

namespace chk::harness {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  des::Simulator sim;
  chklib::Runtime runtime(sim, config.machine, config.seed);
  runtime.set_app(config.label, config.app);

  std::unique_ptr<chklib::Protocol> protocol;
  if (is_coordinated(config.scheme)) {
    protocol = std::make_unique<chklib::CoordinatedProtocol>(
        runtime,
        chklib::CoordinatedProtocol::Config{.scheme = config.scheme,
                                            .interval = config.interval,
                                            .rounds = config.checkpoints,
                                            .ablate_discard_state =
                                                config.ablate_empty_checkpoints,
                                            .incremental = config.incremental,
                                            .full_every = config.full_every});
  } else if (is_independent(config.scheme)) {
    protocol = std::make_unique<chklib::IndependentProtocol>(
        runtime, chklib::IndependentProtocol::Config{.scheme = config.scheme,
                                                     .interval = config.interval,
                                                     .count = config.checkpoints,
                                                     .jitter = config.jitter,
                                                     .gc = config.gc,
                                                     .gc_mode = config.gc_mode,
                                                     .recovery_mode = config.recovery_mode,
                                                     .message_logging =
                                                         config.message_logging});
  }

  std::unique_ptr<chklib::verify::Monitor> monitor;
  if (config.verify) {
    monitor = std::make_unique<chklib::verify::Monitor>(
        runtime, chklib::verify::Monitor::options_for(config.scheme));
    monitor->install();
  }

  std::unique_ptr<chklib::RecoveryManager> recovery;
  if (protocol) {
    protocol->start();
    if (config.failure.has_value()) {
      recovery = std::make_unique<chklib::RecoveryManager>(runtime, *protocol);
      recovery->inject_failure_at(config.failure->when, config.failure->rank);
    }
  }

  runtime.start_apps();
  const auto run = runtime.run_to_completion(config.max_events);

  ExperimentResult result;
  result.label = config.label;
  result.scheme = config.scheme;
  result.exec_time_s = runtime.apps_finished_at().to_seconds();
  result.events = sim.events_executed();
  result.trace_hash = sim.trace_hash();
  if (monitor) {
    monitor->finalize();
    result.invariant_checks = monitor->checks();
    result.invariant_violations = monitor->violations();
    result.messages_in_flight_at_end = monitor->in_flight();
  }

  auto& machine = runtime.machine();
  for (Rank r = 0; r < runtime.num_ranks(); ++r) {
    result.interference_s += machine.node(r).interference_time().to_seconds();
  }
  if (protocol) result.app_blocked_s = protocol->stats().app_blocked.to_seconds();
  result.disk_busy_s = machine.storage().disk().busy_time().to_seconds();
  result.disk_wait_s = machine.storage().disk().wait_time().to_seconds();
  result.host_link_busy_s = machine.storage().host_link().busy_time().to_seconds();
  result.link_busy_s = machine.network().total_link_busy().to_seconds();

  result.app_messages = runtime.comm().app_messages();
  result.app_bytes = runtime.comm().app_bytes();
  result.control_messages = runtime.comm().control_messages();
  result.control_bytes = runtime.comm().control_bytes();
  result.checkpoint_net_bytes = machine.network().bytes_sent(xplorer::Traffic::kCheckpoint);

  if (protocol) {
    const auto& stats = protocol->stats();
    result.local_checkpoints = stats.local_checkpoints;
    result.committed_rounds = stats.committed_rounds;
    result.gc_reclaimed = stats.gc_reclaimed;
  }
  result.bytes_written = machine.storage().bytes_written();
  result.peak_storage_bytes = machine.storage().peak_bytes();
  result.final_storage_bytes = runtime.store().total_checkpoint_bytes();
  result.final_stored_checkpoints = runtime.store().checkpoint_count();

  result.digest = runtime.result_digest();
  if (recovery) result.recoveries = recovery->reports();
  (void)run;
  return result;
}

ExperimentResult run_normal(ExperimentConfig config) {
  config.scheme = Scheme::kNone;
  config.failure.reset();
  return run_experiment(config);
}

DeterminismReport check_determinism(const ExperimentConfig& config) {
  DeterminismReport report;
  report.first = run_experiment(config);
  report.second = run_experiment(config);
  report.deterministic = report.first.trace_hash == report.second.trace_hash &&
                         report.first.events == report.second.events &&
                         report.first.exec_time_s == report.second.exec_time_s &&
                         report.first.digest == report.second.digest;
  return report;
}

}  // namespace chk::harness
