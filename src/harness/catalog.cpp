#include "harness/catalog.hpp"

#include <cmath>
#include <stdexcept>

#include "apps/asp.hpp"
#include "apps/gauss.hpp"
#include "apps/ising.hpp"
#include "apps/nbody.hpp"
#include "apps/nqueens.hpp"
#include "apps/sor.hpp"
#include "apps/tsp.hpp"
#include "util/format.hpp"

namespace chk::harness {

namespace {

using namespace chk::apps;

BenchRow ising_row(std::size_t n, std::uint32_t sweeps) {
  // state/node: spins (int8, +2 halo rows) + two float coupling arrays.
  return BenchRow{util::format("ISING-{}", n), make_ising({.n = n, .sweeps = sweeps}),
                  (n / 8 + 2) * n + (2 * n / 8 + 1) * n * sizeof(float)};
}

BenchRow sor_row(std::size_t n, std::uint32_t iterations) {
  return BenchRow{util::format("SOR-{}", n),
                  make_sor({.n = n, .iterations = iterations}),
                  (n / 8 + 2) * n * sizeof(double)};
}

BenchRow gauss_row(std::size_t n) {
  return BenchRow{util::format("GAUSS-{}", n), make_gauss({.n = n}),
                  (n / 8) * (n + 1) * sizeof(double)};
}

BenchRow asp_row(std::size_t n) {
  return BenchRow{util::format("ASP-{}", n), make_asp({.n = n}),
                  (n / 8) * n * sizeof(std::int32_t)};
}

BenchRow nbody_row(std::size_t bodies, std::uint32_t steps) {
  return BenchRow{util::format("NBODY-{}", bodies),
                  make_nbody({.bodies = bodies, .steps = steps}), (bodies / 8) * 40};
}

BenchRow tsp_row() { return BenchRow{"TSP", make_tsp({}), 64}; }

BenchRow nqueens_row(std::uint32_t n) {
  return BenchRow{util::format("NQUEENS-{}", n), make_nqueens({.n = n}), 16};
}

/// ISING sweep count targeting roughly 150 s of simulated execution on the
/// 8-T805 model (larger lattices sweep fewer times, as one would configure
/// a fixed-length experiment).
std::uint32_t ising_sweeps_for(std::size_t n) {
  const double per_sweep =
      static_cast<double>(n) * static_cast<double>(n) / 8.0 * kIsingFlopsPerSite / 0.7e6;
  const double sweeps = 150.0 / per_sweep;
  return static_cast<std::uint32_t>(std::clamp(sweeps, 20.0, 300.0));
}

}  // namespace

std::vector<BenchRow> table1_rows() {
  std::vector<BenchRow> rows;
  for (std::size_t n : {256ul, 384ul, 512ul, 640ul, 768ul, 896ul, 1024ul, 1280ul}) {
    rows.push_back(ising_row(n, ising_sweeps_for(n)));
  }
  for (std::size_t n : {384ul, 512ul, 640ul, 768ul, 1024ul, 1280ul}) {
    rows.push_back(sor_row(n, 100));
  }
  rows.push_back(gauss_row(768));
  rows.push_back(gauss_row(1024));
  rows.push_back(asp_row(512));
  rows.push_back(asp_row(640));
  rows.push_back(nbody_row(2048, 10));
  rows.push_back(tsp_row());
  rows.push_back(nqueens_row(14));
  return rows;
}

std::vector<BenchRow> table23_rows() {
  std::vector<BenchRow> rows;
  rows.push_back(ising_row(512, 100));
  rows.push_back(ising_row(1024, 100));
  rows.push_back(sor_row(1024, 100));
  rows.push_back(sor_row(1280, 100));
  rows.push_back(gauss_row(1024));
  rows.push_back(asp_row(640));
  rows.push_back(nbody_row(2048, 10));
  rows.push_back(tsp_row());
  rows.push_back(nqueens_row(14));
  return rows;
}

BenchRow find_row(const std::string& label) {
  for (auto& row : table1_rows()) {
    if (row.label == label) return row;
  }
  for (auto& row : table23_rows()) {
    if (row.label == label) return row;
  }
  throw std::invalid_argument(util::format("unknown benchmark row '{}'", label));
}

}  // namespace chk::harness
