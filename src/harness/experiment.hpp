// Experiment harness: build a machine + runtime + protocol + application,
// run to completion, and collect every metric the paper's tables (and our
// ablations) report.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chklib/ckpt/storage_client.hpp"
#include "chklib/comm/link_fault.hpp"
#include "chklib/membership/service.hpp"
#include "chklib/proto/protocol.hpp"
#include "chklib/proto/scheme.hpp"
#include "chklib/recovery/line.hpp"
#include "chklib/recovery/manager.hpp"
#include "chklib/runtime.hpp"
#include "faultsim/injector.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "xplorer/config.hpp"
#include "xplorer/storage_fault.hpp"

namespace chk::harness {

using chklib::AppFn;
using chklib::LineMode;
using chklib::Rank;
using chklib::RecoveryReport;
using chklib::Scheme;

struct FailureSpec {
  des::TimePoint when;
  Rank rank = 0;
};

struct ExperimentConfig {
  std::string label = "app";
  AppFn app;
  Scheme scheme = Scheme::kNone;
  /// Checkpoint interval (coordinated: between commits; independent: per
  /// node between local checkpoints, jittered).
  des::Duration interval = des::Duration::secs(60);
  /// Number of checkpoints (coordinated rounds / per-node count); 0 = until done.
  std::uint32_t checkpoints = 3;
  double jitter = 0.15;
  bool gc = false;
  LineMode gc_mode = LineMode::kStrict;
  LineMode recovery_mode = LineMode::kStrict;
  /// Independent + pessimistic sender logging (use with kOrphanFree modes).
  bool message_logging = false;
  xplorer::MachineConfig machine = xplorer::MachineConfig::parsytec_xplorer();
  std::uint64_t seed = 2026;
  std::optional<FailureSpec> failure;
  /// Stochastic fault injection (exponential MTBF arrivals, optional
  /// targeted mid-write / during-recovery strikes). Requires a checkpointing
  /// scheme — without one there is no recovery path to exercise. Composes
  /// with `failure` (the hand-placed failure fires in addition).
  std::optional<faultsim::FaultPlan> faults;
  /// Unreliable-link model: per-link drop / duplicate / corrupt / delay
  /// faults on the message network. Unset (or all-zero probabilities) =
  /// perfect links, bit-identical to pre-fault-model builds.
  std::optional<chklib::LinkFaultConfig> link_faults;
  /// With link faults on: run the reliable FIFO transport (acks,
  /// retransmission, duplicate suppression) above the lossy links. Turning
  /// this off exposes the protocols to raw loss — only the round/token
  /// watchdogs stand between them and a hang. Ignored without link faults.
  bool reliable_transport = true;
  /// Cluster-membership service: heartbeat failure detection, quorum view
  /// changes, deterministic coordinator election and fencing. Opt-in —
  /// unset, runs are bit-identical to pre-membership builds. When set,
  /// crashes go through the detector (eviction + elected recovery) instead
  /// of the oracle path, and coordinated schemes survive coordinator death
  /// mid-round. Requires the reliable transport when link faults are on
  /// (heartbeats over raw lossy links make every timeout a coin flip).
  std::optional<chklib::membership::MembershipConfig> membership;
  /// Unreliable stable storage: per-operation transient write/read I/O
  /// errors, timed degraded-throughput windows, and silent bit-rot of
  /// durable images. Unset (or all-inactive) = perfect storage,
  /// bit-identical to pre-fault-model builds.
  std::optional<xplorer::StorageFaultConfig> storage_faults;
  /// Retry policy of the storage client (attempts, backoff, deadline).
  /// Unset = the client's defaults. Only consulted when storage faults can
  /// actually fail an operation.
  std::optional<chklib::RetryPolicy> storage_retry;
  /// Checkpoint retention depth (generations kept per rank after GC /
  /// commit pruning). Zero = auto: 1 normally, raised to 2 when storage
  /// faults are enabled so verified recovery has a generation to fall
  /// back to.
  std::uint32_t keep_depth = 0;
  /// Coordinated round watchdog; zero = auto (interval + 30 s) when link
  /// faults are enabled, otherwise off.
  des::Duration round_timeout = des::Duration::zero();
  /// Coord_NBMS stagger-token watchdog; zero = auto (round watchdog / 4)
  /// when link faults are enabled, otherwise off.
  des::Duration token_timeout = des::Duration::zero();
  /// Safety valve: abort (throw) if the simulation exceeds this many events.
  std::uint64_t max_events = std::uint64_t{1} << 40;
  /// Ablation: coordinated checkpoints capture empty images (isolates the
  /// protocol's synchronization cost). Incompatible with failure injection.
  bool ablate_empty_checkpoints = false;
  /// Incremental checkpointing (coordinated schemes only).
  bool incremental = false;
  std::uint32_t full_every = 4;
  /// Install the verify/ invariant monitor for this run (FIFO channels,
  /// coordinated quiescence, stagger mutual exclusion, ...). Defaults to on
  /// in CHK_INVARIANTS builds, where a violation aborts the process.
#ifdef CHK_INVARIANTS
  bool verify = true;
#else
  bool verify = false;
#endif
  /// Attach the obs tracer for this run and return the event stream,
  /// metrics snapshot and per-rank overhead attribution in the result.
  /// Observation never perturbs the simulation: trace_hash and exec_time_s
  /// are identical with this on or off.
  bool observe = false;
};

/// Observability payload of one observed run (config.observe).
struct ObsData {
  obs::Trace trace;
  obs::MetricsSnapshot metrics;
  obs::AttributionReport attribution;
};

/// Log-histogram exponents for membership detection latency: 2^20 ns
/// (~1 ms) .. 2^34 ns (~17 s), wide enough for aggressive phi thresholds
/// and the laxest deadman alike. Shared by the benches so their JSON bins
/// match the "membership/detection_latency_s" metric exactly.
inline constexpr int kDetectLatMinExp = 20;
inline constexpr int kDetectLatMaxExp = 34;

struct ExperimentResult {
  std::string label;
  Scheme scheme = Scheme::kNone;
  double exec_time_s = 0;  ///< application completion time (simulated)
  std::uint64_t events = 0;
  /// Order-sensitive hash of the executed event trace (determinism check:
  /// identical config + seed must yield identical hashes).
  std::uint64_t trace_hash = 0;

  // invariant checking (populated when config.verify is set)
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
  std::uint64_t messages_in_flight_at_end = 0;

  // overhead breakdown
  double app_blocked_s = 0;     ///< time application processes spent frozen/parked
  double interference_s = 0;    ///< CPU stolen by background checkpoint writes
  double frozen_stall_s = 0;    ///< time parked at freeze gates (blocking ablations)
  double disk_busy_s = 0;
  double disk_wait_s = 0;       ///< queueing delay at the disk (contention)
  double host_link_busy_s = 0;
  double link_busy_s = 0;       ///< total mesh link busy time

  // traffic
  std::uint64_t app_messages = 0;
  std::uint64_t app_bytes = 0;
  std::uint64_t control_messages = 0;  ///< the protocols' synchronization cost
  std::uint64_t control_bytes = 0;
  std::uint64_t checkpoint_net_bytes = 0;

  // unreliable links + reliable transport (all zero with faults off)
  std::uint64_t retransmits = 0;       ///< frames re-sent after an RTO
  std::uint64_t dups_suppressed = 0;   ///< duplicate frames dropped by the receiver
  std::uint64_t corrupt_detected = 0;  ///< checksum failures (frame discarded)
  std::uint64_t link_drops = 0;        ///< frames the fault model destroyed
  std::uint64_t link_duplicates = 0;   ///< frames the fault model duplicated
  std::uint64_t link_corrupted = 0;    ///< frames the fault model corrupted
  std::uint64_t link_delayed = 0;      ///< frames given extra delay
  std::uint32_t aborted_rounds = 0;    ///< rounds the coordinator watchdog re-initiated
  std::uint32_t tokens_regenerated = 0;  ///< stagger tokens re-issued by the watchdog
  std::uint64_t partition_drops = 0;   ///< frames destroyed by a partition window

  // cluster membership (all zero with the membership service off)
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t suspicions = 0;          ///< detector timeouts (incl. false ones)
  std::uint64_t views_established = 0;   ///< view changes that took effect
  std::uint64_t evictions = 0;           ///< ranks removed from a view
  std::uint64_t wrongful_evictions = 0;  ///< live ranks evicted (then fenced)
  std::uint64_t rejoins = 0;             ///< fenced ranks re-admitted
  std::uint64_t membership_crashes = 0;  ///< failures routed through the detector
  std::uint64_t forced_recoveries = 0;   ///< dead ranks recovered by the deadman timer
  std::uint64_t suspicions_cleared = 0;  ///< suspicions retracted without a view change
  std::uint64_t detections = 0;          ///< real crashes evicted by a quorum view
  /// Per-detection latency (crash -> evicting view) in ns, in order. Also
  /// exported as the log-spaced "membership/detection_latency_s" histogram.
  std::vector<std::int64_t> detection_latency_ns;

  // unreliable stable storage (all zero with storage faults off)
  std::uint64_t io_write_errors = 0;      ///< write attempts the fault model failed
  std::uint64_t io_read_errors = 0;       ///< read attempts the fault model failed
  std::uint64_t bitrot_injected = 0;      ///< durable images silently corrupted
  std::uint64_t degraded_ops = 0;         ///< operations inside a degraded window
  std::uint64_t storage_retries = 0;      ///< client retry attempts (after backoff)
  std::uint64_t storage_write_failures = 0;  ///< terminal write failures (retries exhausted)
  std::uint64_t storage_read_failures = 0;   ///< terminal read failures
  double storage_retry_wait_s = 0;        ///< app-blocking backoff time (attribution bucket)
  std::uint64_t ckpt_write_failures = 0;  ///< checkpoint image/log writes lost terminally
  std::uint32_t commit_write_failures = 0;  ///< commit writes lost (round re-initiated)
  std::uint64_t corrupt_discarded = 0;    ///< rotted checkpoints found and erased
  std::uint32_t generations_skipped = 0;  ///< recovery fallbacks to an older generation
  std::uint64_t reclaimed_bytes = 0;      ///< stable-storage bytes erased (GC + discards)

  // checkpointing
  std::uint64_t local_checkpoints = 0;
  std::uint32_t committed_rounds = 0;
  std::uint64_t gc_reclaimed = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t peak_storage_bytes = 0;
  std::uint64_t final_storage_bytes = 0;
  std::size_t final_stored_checkpoints = 0;
  /// Per-capture image sizes in capture order: the measured bytes-per-round
  /// curve for apps with time-varying registered state.
  std::vector<chklib::ProtocolStats::ImageRecord> image_log;

  std::optional<double> digest;
  std::vector<RecoveryReport> recoveries;
  /// Fault-injection outcome (all-zero unless config.faults was set).
  faultsim::InjectionStats injections;
  /// Stable-storage writes invalidated mid-pipeline by crashes.
  std::uint64_t writes_discarded = 0;

  /// Present iff the run was observed (ExperimentConfig::observe).
  std::optional<ObsData> obs;
};

/// Run one experiment (one simulated execution).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Convenience: run the same app/machine without checkpointing.
[[nodiscard]] ExperimentResult run_normal(ExperimentConfig config);

/// DES determinism check: run `config` twice and compare event counts,
/// completion times, result digests and event-trace hashes.
struct DeterminismReport {
  bool deterministic = false;
  ExperimentResult first;
  ExperimentResult second;
};
[[nodiscard]] DeterminismReport check_determinism(const ExperimentConfig& config);

}  // namespace chk::harness
