// The paper's benchmark configurations.
//
// Table 1 compares 21 application configurations (eight ISING sizes, five
// SOR sizes, two GAUSS, two ASP, NBODY, TSP, NQUEENS); Tables 2 and 3 use
// nine of them with three checkpoints per run. Problem sizes are chosen so
// the T805-calibrated runs last minutes of simulated time with per-node
// checkpoints from a few KB (TSP, NQUEENS) to over a megabyte (large SOR /
// GAUSS) — the same spread the paper's 4 MB nodes produced.
#pragma once

#include <string>
#include <vector>

#include "chklib/runtime.hpp"

namespace chk::harness {

struct BenchRow {
  std::string label;
  chklib::AppFn app;
  /// Approximate per-node registered state, for reporting.
  std::size_t approx_state_bytes = 0;
};

/// The 21 rows of Table 1, in the paper's order.
[[nodiscard]] std::vector<BenchRow> table1_rows();

/// The 9 rows of Tables 2 and 3 (SOR and ISING run 100 iterations, NBODY
/// simulates 10 steps, as in the paper).
[[nodiscard]] std::vector<BenchRow> table23_rows();

/// Look a row up by label in either catalog (throws if unknown).
[[nodiscard]] BenchRow find_row(const std::string& label);

}  // namespace chk::harness
