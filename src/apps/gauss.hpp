// GAUSS: solves a dense diagonally-dominant linear system A x = b by
// Gaussian elimination (no pivoting needed) with cyclic row distribution:
// iteration k broadcasts the pivot row from its owner and every rank
// eliminates its rows below k; back substitution then broadcasts each x_k
// in reverse order.
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace chk::apps {

struct GaussParams {
  std::size_t n = 256;
};

/// Work per eliminated element (multiply + subtract).
inline constexpr double kGaussFlopsPerElement = 2.0;

[[nodiscard]] AppFn make_gauss(GaussParams params);

/// Sequential elimination + substitution; exact match (same arithmetic).
[[nodiscard]] double gauss_reference_digest(const GaussParams& params);

}  // namespace chk::apps
