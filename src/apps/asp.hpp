// ASP: all-pairs shortest paths by Floyd's algorithm on a dense random
// digraph with N nodes; block-row decomposition. Iteration k broadcasts
// row k from its owner, then every rank relaxes its own rows.
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace chk::apps {

struct AspParams {
  std::size_t n = 256;
  std::int32_t max_weight = 100;
};

/// Work per matrix cell per iteration (add + compare + select).
inline constexpr double kAspFlopsPerCell = 2.0;

[[nodiscard]] AppFn make_asp(AspParams params);

/// Sequential Floyd on the same generated graph; exact integer match.
[[nodiscard]] double asp_reference_digest(const AspParams& params);

/// The deterministic edge weight generator shared by both versions.
[[nodiscard]] std::int32_t asp_edge_weight(std::size_t i, std::size_t j,
                                           std::int32_t max_weight);

}  // namespace chk::apps
