#include "apps/nbody.hpp"

#include <cmath>

namespace chk::apps {

namespace {

constexpr int kTagRing = 3;

struct NbodyState {
  std::uint32_t iter = 0;
  std::vector<double> px, py, vx, vy, mass;
};

void init_block(NbodyState& st, std::size_t begin, std::size_t count) {
  st.px.resize(count);
  st.py.resize(count);
  st.vx.assign(count, 0.0);
  st.vy.assign(count, 0.0);
  st.mass.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t g = begin + i;
    st.px[i] = hash_unit(3 * g + 1);
    st.py[i] = hash_unit(3 * g + 2);
    st.mass[i] = 0.5 + hash_unit(3 * g + 3);
  }
}

/// Accumulate forces exerted by `other` (x, y, m triplets) on the block.
void accumulate(const NbodyState& st, const std::vector<double>& other, bool self_block,
                double softening, std::vector<double>& fx, std::vector<double>& fy) {
  const std::size_t mine = st.px.size();
  const std::size_t theirs = other.size() / 3;
  const double eps2 = softening * softening;
  for (std::size_t i = 0; i < mine; ++i) {
    double ax = 0.0, ay = 0.0;
    for (std::size_t j = 0; j < theirs; ++j) {
      if (self_block && i == j) continue;
      const double dx = other[3 * j] - st.px[i];
      const double dy = other[3 * j + 1] - st.py[i];
      const double r2 = dx * dx + dy * dy + eps2;
      const double inv = 1.0 / (r2 * std::sqrt(r2));
      const double s = other[3 * j + 2] * inv;
      ax += s * dx;
      ay += s * dy;
    }
    fx[i] += ax;
    fy[i] += ay;
  }
}

std::vector<double> pack_block(const NbodyState& st) {
  std::vector<double> out(3 * st.px.size());
  for (std::size_t i = 0; i < st.px.size(); ++i) {
    out[3 * i] = st.px[i];
    out[3 * i + 1] = st.py[i];
    out[3 * i + 2] = st.mass[i];
  }
  return out;
}

double quantize(double v) { return static_cast<double>(std::llround(v * 1048576.0)); }

double digest_block(const NbodyState& st) {
  double acc = 0.0;
  for (std::size_t i = 0; i < st.px.size(); ++i) {
    acc += quantize(st.px[i]) + quantize(st.py[i]) + quantize(st.vx[i]) + quantize(st.vy[i]);
  }
  return acc;
}

}  // namespace

AppFn make_nbody(NbodyParams params) {
  return [params](AppContext& ctx) {
    const std::size_t nprocs = ctx.nprocs();
    const Block block = block_range(params.bodies, nprocs, ctx.rank());

    auto& st = ctx.state<NbodyState>();
    if (ctx.fresh()) {
      st.iter = 0;
      init_block(st, block.begin, block.size());
    }
    ctx.register_value("iter", st.iter);
    ctx.register_vector("px", st.px);
    ctx.register_vector("py", st.py);
    ctx.register_vector("vx", st.vx);
    ctx.register_vector("vy", st.vy);
    ctx.register_vector("mass", st.mass);
    ctx.ready();

    const Rank right = (ctx.rank() + 1) % nprocs;
    const Rank left = (ctx.rank() + nprocs - 1) % nprocs;

    for (; st.iter < params.steps; ++st.iter) {
      ctx.checkpoint_here();
      std::vector<double> fx(st.px.size(), 0.0), fy(st.px.size(), 0.0);
      std::vector<double> buffer = pack_block(st);
      for (std::size_t shift = 0; shift < nprocs; ++shift) {
        ctx.compute(static_cast<double>(st.px.size()) *
                    static_cast<double>(buffer.size() / 3) * kNbodyFlopsPerPair);
        accumulate(st, buffer, shift == 0, params.softening, fx, fy);
        if (shift + 1 < nprocs) {
          ctx.send_span<double>(right, kTagRing, std::span<const double>(buffer));
          buffer = ctx.recv_vector<double>(static_cast<int>(left), kTagRing);
        }
      }
      ctx.compute(static_cast<double>(st.px.size()) * kNbodyFlopsPerBody);
      for (std::size_t i = 0; i < st.px.size(); ++i) {
        st.vx[i] += params.dt * fx[i] / st.mass[i];
        st.vy[i] += params.dt * fy[i] / st.mass[i];
        st.px[i] += params.dt * st.vx[i];
        st.py[i] += params.dt * st.vy[i];
      }
    }

    const double digest = ctx.allreduce_sum(digest_block(st));
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

double nbody_reference_digest(const NbodyParams& params, std::size_t nprocs) {
  // Mimic the per-rank block structure and ring accumulation order so the
  // floating-point result matches the parallel run exactly.
  std::vector<NbodyState> blocks(nprocs);
  for (std::size_t r = 0; r < nprocs; ++r) {
    const Block b = block_range(params.bodies, nprocs, r);
    init_block(blocks[r], b.begin, b.size());
  }
  for (std::uint32_t step = 0; step < params.steps; ++step) {
    std::vector<std::vector<double>> forces_x(nprocs), forces_y(nprocs);
    for (std::size_t r = 0; r < nprocs; ++r) {
      forces_x[r].assign(blocks[r].px.size(), 0.0);
      forces_y[r].assign(blocks[r].px.size(), 0.0);
      for (std::size_t shift = 0; shift < nprocs; ++shift) {
        const std::size_t src = (r + nprocs - shift) % nprocs;
        accumulate(blocks[r], pack_block(blocks[src]), shift == 0, params.softening,
                   forces_x[r], forces_y[r]);
      }
    }
    for (std::size_t r = 0; r < nprocs; ++r) {
      NbodyState& st = blocks[r];
      for (std::size_t i = 0; i < st.px.size(); ++i) {
        st.vx[i] += params.dt * forces_x[r][i] / st.mass[i];
        st.vy[i] += params.dt * forces_y[r][i] / st.mass[i];
        st.px[i] += params.dt * st.vx[i];
        st.py[i] += params.dt * st.vy[i];
      }
    }
  }
  double digest = 0.0;
  for (const auto& block : blocks) digest += digest_block(block);
  return digest;
}

}  // namespace chk::apps
