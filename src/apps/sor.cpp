#include "apps/sor.hpp"

#include <cmath>

namespace chk::apps {

namespace {

constexpr int kTagUp = 1;    // sent towards lower rank
constexpr int kTagDown = 2;  // sent towards higher rank

/// Order-independent digest: quantized sum of the interior cells.
double quantize(double v) { return static_cast<double>(std::llround(v * 1048576.0)); }

struct SorState {
  std::uint32_t iter = 0;
  std::vector<double> grid;  ///< (rows + 2) x n, halo rows at 0 and rows+1
};

}  // namespace

AppFn make_sor(SorParams params) {
  return [params](AppContext& ctx) {
    const std::size_t n = params.n;
    const std::size_t nprocs = ctx.nprocs();
    const Block block = block_range(n, nprocs, ctx.rank());
    const std::size_t rows = block.size();

    auto& st = ctx.state<SorState>();
    if (ctx.fresh()) {
      st.iter = 0;
      st.grid.assign((rows + 2) * n, 0.0);
      if (ctx.rank() == 0) {
        // top boundary row (the halo of the first rank is the fixed edge)
        for (std::size_t j = 0; j < n; ++j) st.grid[j] = params.top_boundary;
      }
    }
    ctx.register_value("iter", st.iter);
    ctx.register_vector("grid", st.grid);
    ctx.ready();

    auto cell = [&](std::size_t i, std::size_t j) -> double& { return st.grid[i * n + j]; };
    std::vector<double> next(rows * n);  // scratch; never read across iterations

    const Rank up = ctx.rank() > 0 ? ctx.rank() - 1 : 0;
    const Rank down = ctx.rank() + 1 < nprocs ? ctx.rank() + 1 : 0;
    const bool has_up = ctx.rank() > 0;
    const bool has_down = ctx.rank() + 1 < nprocs;

    for (; st.iter < params.iterations; ++st.iter) {
      ctx.checkpoint_here();
      // Halo exchange: boundary-owning ranks keep their fixed halos.
      if (has_up) {
        ctx.send_span<double>(up, kTagUp, std::span<const double>(&cell(1, 0), n));
      }
      if (has_down) {
        ctx.send_span<double>(down, kTagDown, std::span<const double>(&cell(rows, 0), n));
      }
      if (has_up) {
        const auto halo = ctx.recv_vector<double>(static_cast<int>(up), kTagDown);
        for (std::size_t j = 0; j < n; ++j) cell(0, j) = halo[j];
      }
      if (has_down) {
        const auto halo = ctx.recv_vector<double>(static_cast<int>(down), kTagUp);
        for (std::size_t j = 0; j < n; ++j) cell(rows + 1, j) = halo[j];
      }

      ctx.compute(static_cast<double>(rows * (n - 2)) * kSorFlopsPerPoint);
      const double w = params.omega;
      for (std::size_t i = 1; i <= rows; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
          const double around =
              cell(i - 1, j) + cell(i + 1, j) + cell(i, j - 1) + cell(i, j + 1);
          next[(i - 1) * n + j] = (1.0 - w) * cell(i, j) + w * 0.25 * around;
        }
      }
      for (std::size_t i = 1; i <= rows; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) cell(i, j) = next[(i - 1) * n + j];
      }
    }

    double partial = 0.0;
    for (std::size_t i = 1; i <= rows; ++i) {
      for (std::size_t j = 0; j < n; ++j) partial += quantize(cell(i, j));
    }
    const double digest = ctx.allreduce_sum(partial);
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

double sor_reference_digest(const SorParams& params) {
  const std::size_t n = params.n;
  std::vector<double> grid((n + 2) * n, 0.0);
  auto cell = [&](std::size_t i, std::size_t j) -> double& { return grid[i * n + j]; };
  for (std::size_t j = 0; j < n; ++j) cell(0, j) = params.top_boundary;
  std::vector<double> next(n * n);
  const double w = params.omega;
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = 1; j + 1 < n; ++j) {
        const double around =
            cell(i - 1, j) + cell(i + 1, j) + cell(i, j - 1) + cell(i, j + 1);
        next[(i - 1) * n + j] = (1.0 - w) * cell(i, j) + w * 0.25 * around;
      }
    }
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = 1; j + 1 < n; ++j) cell(i, j) = next[(i - 1) * n + j];
    }
  }
  double digest = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 0; j < n; ++j) digest += quantize(cell(i, j));
  }
  return digest;
}

}  // namespace chk::apps
