#include "apps/gauss.hpp"

#include <cmath>

namespace chk::apps {

namespace {

struct GaussState {
  std::uint32_t k = 0;        ///< forward elimination progress
  std::uint32_t kb = 0;       ///< back substitution progress (counts down from n via n-1-kb)
  std::uint8_t phase = 0;     ///< 0 = eliminate, 1 = substitute
  std::vector<double> rows;   ///< my rows, each n+1 wide (augmented with b)
  std::vector<double> x;      ///< solution vector, filled during substitution
};

double matrix_entry(std::size_t n, std::size_t i, std::size_t j) {
  double v = hash_unit(i * n + j) - 0.5;
  if (i == j) v += static_cast<double>(n);  // diagonal dominance
  return v;
}

double rhs_entry(std::size_t n, std::size_t i) { return hash_unit(0xb0b0 + i * n); }

double quantize(double v) { return static_cast<double>(std::llround(v * 1048576.0)); }

}  // namespace

AppFn make_gauss(GaussParams params) {
  return [params](AppContext& ctx) {
    const std::size_t n = params.n;
    const std::size_t nprocs = ctx.nprocs();
    const std::size_t width = n + 1;
    // Cyclic distribution: rank owns rows rank, rank+P, rank+2P, ...
    const std::size_t my_rows = (n + nprocs - 1 - ctx.rank()) / nprocs;

    auto& st = ctx.state<GaussState>();
    if (ctx.fresh()) {
      st.k = 0;
      st.kb = 0;
      st.phase = 0;
      st.rows.resize(my_rows * width);
      st.x.assign(n, 0.0);
      for (std::size_t local = 0; local < my_rows; ++local) {
        const std::size_t i = ctx.rank() + local * nprocs;
        for (std::size_t j = 0; j < n; ++j) st.rows[local * width + j] = matrix_entry(n, i, j);
        st.rows[local * width + n] = rhs_entry(n, i);
      }
    }
    ctx.register_value("k", st.k);
    ctx.register_value("kb", st.kb);
    ctx.register_value("phase", st.phase);
    ctx.register_vector("rows", st.rows);
    ctx.register_vector("x", st.x);
    ctx.ready();

    auto local_of = [&](std::size_t global) { return (global - ctx.rank()) / nprocs; };
    auto owner_of = [&](std::size_t global) { return static_cast<Rank>(global % nprocs); };

    if (st.phase == 0) {
      for (; st.k < n; ++st.k) {
        ctx.checkpoint_here();
        const Rank owner = owner_of(st.k);
        std::vector<std::byte> pivot_bytes;
        if (owner == ctx.rank()) {
          pivot_bytes = chklib::to_bytes(std::span<const double>(
              &st.rows[local_of(st.k) * width], width));
        }
        const auto pivot =
            chklib::vector_from_bytes<double>(ctx.broadcast(owner, std::move(pivot_bytes)));

        // Eliminate my rows with global index > k.
        std::size_t eliminated = 0;
        for (std::size_t local = 0; local < my_rows; ++local) {
          const std::size_t i = ctx.rank() + local * nprocs;
          if (i <= st.k) continue;
          ++eliminated;
        }
        ctx.compute(static_cast<double>(eliminated) * static_cast<double>(width - st.k) *
                    kGaussFlopsPerElement);
        for (std::size_t local = 0; local < my_rows; ++local) {
          const std::size_t i = ctx.rank() + local * nprocs;
          if (i <= st.k) continue;
          double* row = &st.rows[local * width];
          const double factor = row[st.k] / pivot[st.k];
          row[st.k] = 0.0;
          for (std::size_t j = st.k + 1; j < width; ++j) row[j] -= factor * pivot[j];
        }
      }
      st.phase = 1;
    }

    // Back substitution: x_{n-1}, x_{n-2}, ... each broadcast by its owner.
    for (; st.kb < n; ++st.kb) {
      ctx.checkpoint_here();
      const std::size_t k = n - 1 - st.kb;
      const Rank owner = owner_of(k);
      std::vector<std::byte> xk_bytes;
      if (owner == ctx.rank()) {
        const double* row = &st.rows[local_of(k) * width];
        ctx.compute(static_cast<double>(n - k) * 2.0);
        double acc = row[n];
        for (std::size_t j = k + 1; j < n; ++j) acc -= row[j] * st.x[j];
        xk_bytes = chklib::to_bytes<double>(acc / row[k]);
      }
      st.x[k] = chklib::from_bytes<double>(ctx.broadcast(owner, std::move(xk_bytes)));
    }

    double partial = 0.0;
    if (ctx.rank() == 0) {
      for (double v : st.x) partial += quantize(v * 1000.0);
    }
    const double digest = ctx.allreduce_sum(partial);
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

double gauss_reference_digest(const GaussParams& params) {
  const std::size_t n = params.n;
  const std::size_t width = n + 1;
  std::vector<double> a(n * width);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a[i * width + j] = matrix_entry(n, i, j);
    a[i * width + n] = rhs_entry(n, i);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a[i * width + k] / a[k * width + k];
      a[i * width + k] = 0.0;
      for (std::size_t j = k + 1; j < width; ++j) a[i * width + j] -= factor * a[k * width + j];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t kb = 0; kb < n; ++kb) {
    const std::size_t k = n - 1 - kb;
    double acc = a[k * width + n];
    for (std::size_t j = k + 1; j < n; ++j) acc -= a[k * width + j] * x[j];
    x[k] = acc / a[k * width + k];
  }
  double digest = 0.0;
  for (double v : x) digest += static_cast<double>(std::llround(v * 1000.0 * 1048576.0));
  return digest;
}

}  // namespace chk::apps
