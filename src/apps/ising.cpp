#include "apps/ising.hpp"

#include <cmath>

namespace chk::apps {

namespace {

constexpr int kTagUp = 1;
constexpr int kTagDown = 2;

// A spin glass: quenched Gaussian couplings on every lattice bond. The
// coupling arrays are part of the process state (CHK-LIB checkpoints the
// application's data), which makes ISING checkpoints substantial — as on
// the paper's 4 MB nodes.
struct IsingState {
  std::uint32_t iter = 0;
  util::Rng rng;
  std::vector<std::int8_t> spins;  ///< (rows + 2) x n with periodic halos
  std::vector<float> j_right;      ///< bond (i,j)-(i,j+1), rows x n
  std::vector<float> j_down;       ///< bond (i,j)-(i+1,j), (rows + 1) x n (one halo row above)
};

/// Deterministic coupling for the bond identified by (global row, col, dir).
float coupling(std::size_t n, std::size_t row, std::size_t col, int dir, bool glass) {
  if (!glass) return 1.0f;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(dir) << 60) ^ (row * n + col) * 2654435761ull;
  return static_cast<float>(2.0 * hash_unit(key) - 1.0);
}

}  // namespace

AppFn make_ising(IsingParams params) {
  return [params](AppContext& ctx) {
    const std::size_t n = params.n;
    const std::size_t nprocs = ctx.nprocs();
    const Block block = block_range(n, nprocs, ctx.rank());
    const std::size_t rows = block.size();

    auto& st = ctx.state<IsingState>();
    if (ctx.fresh()) {
      st.iter = 0;
      st.rng = util::Rng(params.seed).fork(ctx.rank());
      st.spins.assign((rows + 2) * n, 0);
      for (std::size_t i = 1; i <= rows; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          st.spins[i * n + j] = st.rng.bernoulli(0.5) ? 1 : -1;
        }
      }
      st.j_right.resize(rows * n);
      st.j_down.resize((rows + 1) * n);
      for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t global = block.begin + i;
        for (std::size_t j = 0; j < n; ++j) {
          st.j_right[i * n + j] = coupling(n, global, j, 0, params.glass);
          // j_down row i+1 is the bond below local row i; row 0 is the bond
          // above our first row (owned by the neighbour's last row).
          st.j_down[(i + 1) * n + j] = coupling(n, global, j, 1, params.glass);
        }
      }
      const std::size_t above = (block.begin + n - 1) % n;  // periodic
      for (std::size_t j = 0; j < n; ++j) {
        st.j_down[j] = coupling(n, above, j, 1, params.glass);
      }
    }
    ctx.register_value("iter", st.iter);
    ctx.register_value("rng", st.rng);
    ctx.register_vector("spins", st.spins);
    ctx.register_vector("j_right", st.j_right);
    ctx.register_vector("j_down", st.j_down);
    ctx.ready();

    auto spin = [&](std::size_t i, std::size_t j) -> std::int8_t& {
      return st.spins[i * n + j];
    };

    const Rank up = (ctx.rank() + nprocs - 1) % nprocs;
    const Rank down = (ctx.rank() + 1) % nprocs;

    for (; st.iter < params.sweeps; ++st.iter) {
      ctx.checkpoint_here();
      // Periodic halo exchange (ring).
      ctx.send_span<std::int8_t>(up, kTagUp, std::span<const std::int8_t>(&spin(1, 0), n));
      ctx.send_span<std::int8_t>(down, kTagDown,
                                 std::span<const std::int8_t>(&spin(rows, 0), n));
      const auto top = ctx.recv_vector<std::int8_t>(static_cast<int>(up), kTagDown);
      const auto bottom = ctx.recv_vector<std::int8_t>(static_cast<int>(down), kTagUp);
      for (std::size_t j = 0; j < n; ++j) {
        spin(0, j) = top[j];
        spin(rows + 1, j) = bottom[j];
      }

      ctx.compute(static_cast<double>(rows * n) * kIsingFlopsPerSite);
      for (std::size_t i = 1; i <= rows; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t left = j == 0 ? n - 1 : j - 1;
          const std::size_t right = j + 1 == n ? 0 : j + 1;
          const float field = st.j_down[(i - 1) * n + j] * static_cast<float>(spin(i - 1, j)) +
                              st.j_down[i * n + j] * static_cast<float>(spin(i + 1, j)) +
                              st.j_right[(i - 1) * n + left] * static_cast<float>(spin(i, left)) +
                              st.j_right[(i - 1) * n + j] * static_cast<float>(spin(i, right));
          const double delta = 2.0 * static_cast<double>(spin(i, j)) * static_cast<double>(field);
          if (delta <= 0.0 || st.rng.uniform() < std::exp(-params.beta * delta)) {
            spin(i, j) = static_cast<std::int8_t>(-spin(i, j));
          }
        }
      }
    }

    // Magnetization: integer, hence order-independent under reduction.
    double partial = 0.0;
    for (std::size_t i = 1; i <= rows; ++i) {
      for (std::size_t j = 0; j < n; ++j) partial += spin(i, j);
    }
    const double digest = ctx.allreduce_sum(partial);
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

}  // namespace chk::apps
