// ISING: Metropolis Monte-Carlo simulation of a 2D spin glass on an n x n
// periodic lattice, block-row decomposition with halo exchange per sweep.
// The per-rank RNG is part of the registered state so rollbacks replay the
// exact same trajectory.
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace chk::apps {

struct IsingParams {
  std::size_t n = 512;
  std::uint32_t sweeps = 100;
  double beta = 0.4407;  ///< inverse temperature (near-critical)
  std::uint64_t seed = 424242;
  /// true: quenched Gaussian couplings (spin glass, as in the paper);
  /// false: uniform ferromagnet (useful for physics sanity tests).
  bool glass = true;
};

/// Work per lattice site per sweep (4 coupling products, dE, accept test).
inline constexpr double kIsingFlopsPerSite = 22.0;

[[nodiscard]] AppFn make_ising(IsingParams params);

}  // namespace chk::apps
