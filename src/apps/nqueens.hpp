// NQUEENS: counts the solutions of the N-queens problem. Jobs are the
// non-attacking placements of the first two rows, dealt cyclically across
// ranks; almost no communication until the final sum reduction — the
// loosely-coupled contrast to the stencil benchmarks.
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace chk::apps {

struct NQueensParams {
  std::uint32_t n = 12;
  double flops_per_node = 10.0;  ///< modelled cost per explored search node
};

[[nodiscard]] AppFn make_nqueens(NQueensParams params);

/// Known solution counts (exact), e.g. 8 -> 92, 12 -> 14200, 13 -> 73712.
[[nodiscard]] std::uint64_t nqueens_reference_count(std::uint32_t n);

}  // namespace chk::apps
