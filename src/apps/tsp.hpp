// TSP: branch-and-bound over a dense symmetric map. Rank 0 is the job
// master handing out fixed tour prefixes on request; workers run
// depth-first branch-and-bound on the suffix, pruning with their local
// best, and the global optimum is combined by a min-reduction at the end.
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace chk::apps {

struct TspParams {
  std::size_t cities = 14;   ///< the paper used a dense 16-city map; 14 keeps
                             ///< the explored tree tractable for repeated runs
  std::int32_t max_distance = 100;
  double flops_per_node = 40.0;  ///< modelled cost per explored search node
};

[[nodiscard]] AppFn make_tsp(TspParams params);

/// Sequential branch-and-bound optimum (schedule independent).
[[nodiscard]] double tsp_reference_digest(const TspParams& params);

/// Deterministic symmetric distance between two cities.
[[nodiscard]] std::int32_t tsp_distance(std::size_t a, std::size_t b,
                                        std::int32_t max_distance);

}  // namespace chk::apps
