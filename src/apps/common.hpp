// Shared helpers for the application benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "chklib/runtime.hpp"
#include "util/rng.hpp"

namespace chk::apps {

using chklib::AppContext;
using chklib::AppFn;
using chklib::Rank;

/// Contiguous block partition of [0, total) into `parts` pieces; the first
/// (total % parts) pieces get one extra element.
struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

[[nodiscard]] constexpr Block block_range(std::size_t total, std::size_t parts,
                                          std::size_t index) noexcept {
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t begin = index * base + (index < extra ? index : extra);
  const std::size_t size = base + (index < extra ? 1 : 0);
  return Block{begin, begin + size};
}

/// Rank owning global row `row` under block partitioning.
[[nodiscard]] constexpr std::size_t block_owner(std::size_t total, std::size_t parts,
                                                std::size_t row) noexcept {
  for (std::size_t p = 0; p < parts; ++p) {
    const Block b = block_range(total, parts, p);
    if (row >= b.begin && row < b.end) return p;
  }
  return parts - 1;
}

/// Deterministic stateless hash -> double in [0, 1). Used to generate
/// identical input data on every rank without communication.
[[nodiscard]] inline double hash_unit(std::uint64_t key) noexcept {
  std::uint64_t state = key * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  const std::uint64_t bits = util::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Deterministic stateless hash -> integer in [lo, hi].
[[nodiscard]] inline std::int64_t hash_int(std::uint64_t key, std::int64_t lo,
                                           std::int64_t hi) noexcept {
  std::uint64_t state = key * 0xbf58476d1ce4e5b9ull + 17;
  const std::uint64_t bits = util::splitmix64(state);
  return lo + static_cast<std::int64_t>(bits % static_cast<std::uint64_t>(hi - lo + 1));
}

}  // namespace chk::apps
