#include "apps/asp.hpp"

#include <limits>

namespace chk::apps {

namespace {

struct AspState {
  std::uint32_t k = 0;
  std::vector<std::int32_t> dist;  ///< own rows x n
};

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 4;

}  // namespace

std::int32_t asp_edge_weight(std::size_t i, std::size_t j, std::int32_t max_weight) {
  if (i == j) return 0;
  // ~25% density of direct edges; everything stays reachable through hubs.
  const std::uint64_t key = static_cast<std::uint64_t>(i) * 1315423911u + j;
  if (hash_int(key, 0, 3) != 0) return kInf;
  return static_cast<std::int32_t>(hash_int(key ^ 0xabcdef, 1, max_weight));
}

AppFn make_asp(AspParams params) {
  return [params](AppContext& ctx) {
    const std::size_t n = params.n;
    const std::size_t nprocs = ctx.nprocs();
    const Block block = block_range(n, nprocs, ctx.rank());
    const std::size_t rows = block.size();

    auto& st = ctx.state<AspState>();
    if (ctx.fresh()) {
      st.k = 0;
      st.dist.resize(rows * n);
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          st.dist[i * n + j] = asp_edge_weight(block.begin + i, j, params.max_weight);
        }
      }
    }
    ctx.register_value("k", st.k);
    ctx.register_vector("dist", st.dist);
    ctx.ready();

    for (; st.k < n; ++st.k) {
      ctx.checkpoint_here();
      const Rank owner = block_owner(n, nprocs, st.k);
      std::vector<std::byte> row_bytes;
      if (owner == ctx.rank()) {
        const std::size_t local = st.k - block.begin;
        row_bytes = chklib::to_bytes(
            std::span<const std::int32_t>(&st.dist[local * n], n));
      }
      const auto row_k =
          chklib::vector_from_bytes<std::int32_t>(ctx.broadcast(owner, std::move(row_bytes)));

      ctx.compute(static_cast<double>(rows * n) * kAspFlopsPerCell);
      for (std::size_t i = 0; i < rows; ++i) {
        const std::int32_t via = st.dist[i * n + st.k];
        if (via >= kInf) continue;
        for (std::size_t j = 0; j < n; ++j) {
          const std::int32_t candidate = via + row_k[j];
          if (candidate < st.dist[i * n + j]) st.dist[i * n + j] = candidate;
        }
      }
    }

    double partial = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::int32_t d = st.dist[i * n + j];
        partial += d >= kInf ? 0.0 : static_cast<double>(d);
      }
    }
    const double digest = ctx.allreduce_sum(partial);
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

double asp_reference_digest(const AspParams& params) {
  const std::size_t n = params.n;
  std::vector<std::int32_t> dist(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist[i * n + j] = asp_edge_weight(i, j, params.max_weight);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t via = dist[i * n + k];
      if (via >= kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const std::int32_t candidate = via + dist[k * n + j];
        if (candidate < dist[i * n + j]) dist[i * n + j] = candidate;
      }
    }
  }
  double digest = 0.0;
  for (std::int32_t d : dist) digest += d >= kInf ? 0.0 : static_cast<double>(d);
  return digest;
}

}  // namespace chk::apps
