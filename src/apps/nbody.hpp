// NBODY: direct-summation gravitational N-body simulation. Bodies are
// block-distributed; each timestep pipelines every block around a ring so
// all ranks accumulate forces from all bodies, then integrates (leapfrog).
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace chk::apps {

struct NbodyParams {
  std::size_t bodies = 2048;
  std::uint32_t steps = 10;
  double dt = 1e-3;
  double softening = 1e-2;
};

/// Work per interacting pair (distance, inverse-law, accumulate).
inline constexpr double kNbodyFlopsPerPair = 22.0;
/// Work per body per integration step.
inline constexpr double kNbodyFlopsPerBody = 12.0;

[[nodiscard]] AppFn make_nbody(NbodyParams params);

/// Sequential reference with the same block-ordered force accumulation as
/// the P-rank parallel run (bit-exact for matching nprocs).
[[nodiscard]] double nbody_reference_digest(const NbodyParams& params, std::size_t nprocs);

}  // namespace chk::apps
