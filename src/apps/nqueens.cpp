#include "apps/nqueens.hpp"

#include <vector>

namespace chk::apps {

namespace {

struct NQueensState {
  std::uint32_t cursor = 0;  ///< next index into this rank's job list
  std::uint64_t count = 0;
};

/// Bitmask DFS from row 2 given the first two placements; counts solutions
/// and explored nodes.
std::uint64_t dfs(std::uint32_t n, std::uint32_t cols, std::uint32_t diag1,
                  std::uint32_t diag2, std::uint64_t& nodes) {
  ++nodes;
  const std::uint32_t full = (1u << n) - 1;
  if (cols == full) return 1;
  std::uint64_t count = 0;
  std::uint32_t free = full & ~(cols | diag1 | diag2);
  while (free != 0) {
    const std::uint32_t bit = free & (0u - free);
    free ^= bit;
    count += dfs(n, cols | bit, ((diag1 | bit) << 1) & full, (diag2 | bit) >> 1, nodes);
  }
  return count;
}

struct Job {
  std::uint32_t c0, c1;
};

std::vector<Job> all_jobs(std::uint32_t n) {
  std::vector<Job> jobs;
  for (std::uint32_t c0 = 0; c0 < n; ++c0) {
    for (std::uint32_t c1 = 0; c1 < n; ++c1) {
      if (c1 == c0 || c1 + 1 == c0 || c1 == c0 + 1) continue;  // attacking
      jobs.push_back({c0, c1});
    }
  }
  return jobs;
}

std::uint64_t run_job(std::uint32_t n, Job job, std::uint64_t& nodes) {
  const std::uint32_t full = (1u << n) - 1;
  const std::uint32_t b0 = 1u << job.c0;
  const std::uint32_t b1 = 1u << job.c1;
  const std::uint32_t cols = b0 | b1;
  const std::uint32_t diag1 = (((b0 << 1) | b1) << 1) & full;
  const std::uint32_t diag2 = ((b0 >> 1) | b1) >> 1;
  return dfs(n, cols, diag1, diag2, nodes);
}

}  // namespace

AppFn make_nqueens(NQueensParams params) {
  return [params](AppContext& ctx) {
    const auto jobs = all_jobs(params.n);
    // Cyclic deal: rank r owns jobs r, r+P, r+2P, ...
    std::vector<std::uint32_t> mine;
    for (std::uint32_t j = static_cast<std::uint32_t>(ctx.rank());
         j < jobs.size(); j += static_cast<std::uint32_t>(ctx.nprocs())) {
      mine.push_back(j);
    }

    auto& st = ctx.state<NQueensState>();
    if (ctx.fresh()) st = NQueensState{};
    ctx.register_value("cursor", st.cursor);
    ctx.register_value("count", st.count);
    ctx.ready();

    for (; st.cursor < mine.size(); ++st.cursor) {
      ctx.checkpoint_here();
      std::uint64_t nodes = 0;
      const std::uint64_t solutions = run_job(params.n, jobs[mine[st.cursor]], nodes);
      ctx.compute(static_cast<double>(nodes) * params.flops_per_node);
      st.count += solutions;
    }

    const double digest = ctx.allreduce_sum(static_cast<double>(st.count));
    if (ctx.rank() == 0) ctx.report_result(digest);
  };
}

std::uint64_t nqueens_reference_count(std::uint32_t n) {
  static constexpr std::uint64_t kCounts[] = {1,  1,   0,    0,    2,     10,    4,
                                              40, 92,  352,  724,  2680,  14200, 73712,
                                              365596};
  if (n < sizeof(kCounts) / sizeof(kCounts[0])) return kCounts[n];
  return 0;
}

}  // namespace chk::apps
