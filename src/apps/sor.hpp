// SOR: successive over-relaxation solving Laplace's equation on a regular
// n x n grid (weighted-Jacobi form), block-row decomposition with halo
// exchange between vertical neighbours each iteration.
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace chk::apps {

struct SorParams {
  std::size_t n = 512;          ///< grid dimension
  std::uint32_t iterations = 100;
  double omega = 0.8;           ///< relaxation weight
  double top_boundary = 100.0;  ///< fixed temperature on the top edge
};

/// Work per interior point per iteration (adds + multiplies).
inline constexpr double kSorFlopsPerPoint = 6.0;

[[nodiscard]] AppFn make_sor(SorParams params);

/// Sequential reference: same arithmetic, same result bit-for-bit.
[[nodiscard]] double sor_reference_digest(const SorParams& params);

}  // namespace chk::apps
