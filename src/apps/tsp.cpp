#include "apps/tsp.hpp"

#include <algorithm>
#include <limits>

namespace chk::apps {

namespace {

constexpr int kTagRequest = 4;
constexpr int kTagJob = 5;
constexpr std::int64_t kNoTour = std::numeric_limits<std::int64_t>::max() / 4;

struct TspMasterState {
  std::uint32_t next_job = 0;
  std::uint32_t workers_done = 0;
  std::int64_t best_known = 0;  // initialized to kNoTour at start
};

/// Master -> worker reply: a job plus the global incumbent bound (sharing
/// the bound keeps pruning — and therefore total work — nearly independent
/// of the job-to-worker schedule).
struct JobReply {
  std::int32_t job = -1;
  std::int64_t bound = 0;
};

struct TspWorkerState {
  std::int64_t best = kNoTour;
  std::uint32_t jobs_done = 0;
};

struct Map {
  std::size_t m;
  std::vector<std::int32_t> d;
  std::int32_t min_edge;

  explicit Map(const TspParams& params) : m(params.cities), d(m * m) {
    min_edge = std::numeric_limits<std::int32_t>::max();
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = 0; b < m; ++b) {
        d[a * m + b] = tsp_distance(a, b, params.max_distance);
        if (a != b) min_edge = std::min(min_edge, d[a * m + b]);
      }
    }
  }
  [[nodiscard]] std::int32_t at(std::size_t a, std::size_t b) const { return d[a * m + b]; }
};

/// Depth-first branch-and-bound over the remaining cities. Returns nodes
/// explored; updates `best` in place.
std::uint64_t dfs(const Map& map, std::uint32_t visited, std::size_t current,
                  std::int64_t length, std::size_t placed, std::int64_t& best) {
  std::uint64_t nodes = 1;
  if (placed == map.m) {
    const std::int64_t total = length + map.at(current, 0);
    if (total < best) best = total;
    return nodes;
  }
  const auto remaining = static_cast<std::int64_t>(map.m - placed);
  if (length + (remaining + 1) * map.min_edge >= best) return nodes;  // bound
  for (std::size_t next = 1; next < map.m; ++next) {
    if ((visited >> next) & 1u) continue;
    nodes += dfs(map, visited | (1u << next), next, length + map.at(current, next),
                 placed + 1, best);
  }
  return nodes;
}

/// Expand job `id` = tour prefix (0, i, j, k); returns nodes explored.
/// Depth-3 prefixes keep jobs small (tens of milliseconds), so the dynamic
/// master/worker assignment stays balanced even when checkpointing skews
/// the request timing.
std::uint64_t run_job(const Map& map, std::uint32_t id, std::int64_t& best) {
  const std::size_t m = map.m;
  const std::size_t i = 1 + id / ((m - 2) * (m - 3));
  std::size_t rest = id % ((m - 2) * (m - 3));
  std::size_t j = 1 + rest / (m - 3);
  if (j >= i) ++j;  // skip i
  std::size_t k = 1 + rest % (m - 3);
  for (std::size_t taken : {std::min(i, j), std::max(i, j)}) {
    if (k >= taken) ++k;  // skip i and j, in ascending order
  }
  const std::uint32_t visited = 1u | (1u << i) | (1u << j) | (1u << k);
  const std::int64_t length = map.at(0, i) + map.at(i, j) + map.at(j, k);
  return dfs(map, visited, k, length, 4, best);
}

std::uint32_t total_jobs(std::size_t m) {
  return static_cast<std::uint32_t>((m - 1) * (m - 2) * (m - 3));
}

}  // namespace

std::int32_t tsp_distance(std::size_t a, std::size_t b, std::int32_t max_distance) {
  if (a == b) return 0;
  const std::size_t lo = std::min(a, b), hi = std::max(a, b);
  return static_cast<std::int32_t>(hash_int(lo * 8191 + hi, 1, max_distance));
}

AppFn make_tsp(TspParams params) {
  return [params](AppContext& ctx) {
    const Map map(params);
    const std::uint32_t jobs = total_jobs(params.cities);

    if (ctx.nprocs() == 1) {
      auto& st = ctx.state<TspWorkerState>();
      if (ctx.fresh()) st = TspWorkerState{};
      ctx.register_value("best", st.best);
      ctx.register_value("jobs_done", st.jobs_done);
      ctx.ready();
      for (; st.jobs_done < jobs; ++st.jobs_done) {
        ctx.checkpoint_here();
        std::int64_t best = st.best;
        const std::uint64_t nodes = run_job(map, st.jobs_done, best);
        ctx.compute(static_cast<double>(nodes) * params.flops_per_node);
        st.best = best;
      }
      ctx.report_result(static_cast<double>(st.best));
      return;
    }

    if (ctx.rank() == 0) {
      // Master: serve job requests until every worker has been retired.
      auto& st = ctx.state<TspMasterState>();
      if (ctx.fresh()) {
        st = TspMasterState{};
        st.best_known = kNoTour;
      }
      ctx.register_value("next_job", st.next_job);
      ctx.register_value("workers_done", st.workers_done);
      ctx.register_value("best_known", st.best_known);
      ctx.ready();
      const auto workers = static_cast<std::uint32_t>(ctx.nprocs() - 1);
      while (st.workers_done < workers) {
        ctx.checkpoint_here();
        const auto request = ctx.recv(chklib::kAnySource, kTagRequest);
        const auto worker_best = chklib::from_bytes<std::int64_t>(request.payload);
        st.best_known = std::min(st.best_known, worker_best);
        JobReply reply;
        reply.bound = st.best_known;
        if (st.next_job < jobs) {
          reply.job = static_cast<std::int32_t>(st.next_job);
          ++st.next_job;
        } else {
          ++st.workers_done;
        }
        ctx.send_value(request.src, kTagJob, reply);
      }
      const double digest = ctx.allreduce_min(static_cast<double>(kNoTour));
      ctx.report_result(digest);
      return;
    }

    // Worker: request, solve, repeat.
    auto& st = ctx.state<TspWorkerState>();
    if (ctx.fresh()) st = TspWorkerState{};
    ctx.register_value("best", st.best);
    ctx.register_value("jobs_done", st.jobs_done);
    ctx.ready();
    for (;;) {
      ctx.checkpoint_here();
      ctx.send_value<std::int64_t>(0, kTagRequest, st.best);
      const auto reply = ctx.recv_value<JobReply>(0, kTagJob);
      if (reply.job < 0) break;
      std::int64_t best = std::min(st.best, reply.bound);
      const std::uint64_t nodes = run_job(map, static_cast<std::uint32_t>(reply.job), best);
      ctx.compute(static_cast<double>(nodes) * params.flops_per_node);
      st.best = best;
      ++st.jobs_done;
    }
    (void)ctx.allreduce_min(static_cast<double>(st.best));
  };
}

double tsp_reference_digest(const TspParams& params) {
  const Map map(params);
  std::int64_t best = kNoTour;
  for (std::uint32_t job = 0; job < total_jobs(params.cities); ++job) {
    (void)run_job(map, job, best);
  }
  return static_cast<double>(best);
}

}  // namespace chk::apps
