// Per-rank overhead attribution.
//
// Folds a trace into the paper-style overhead breakdown: where did each
// rank's checkpoint-induced lost time go? The buckets partition the
// *measurable per-rank overhead* — the checkpoint blocking windows (which
// the protocols account as app_blocked), the freeze-gate stalls and the
// CPU interference of background writes:
//
//   blocked window  =  sync_wait + mem_copy + stable_write
//                      + storage_contention + logging
//                      + storage_retry_wait                  (exact, in ns)
//   per-rank total  =  blocked windows + frozen_stall + interference
//                      + recovery + retransmit_wait
//
// stable_write is the write's uncontended service time (mesh pipeline +
// host link + disk, empty queues); storage_contention is the rest of the
// observed write duration — queueing behind other nodes' checkpoint
// traffic, the paper's dominant cost. sync_wait is the window remainder:
// token/grant waits and protocol synchronization. End-to-end overhead
// (exec - normal) additionally contains critical-path idle effects that no
// single rank can be charged for; consumers report that difference as
// "unattributed".
#pragma once

#include <cstddef>
#include <vector>

#include "obs/tracer.hpp"

namespace chk::obs {

struct RankBuckets {
  double sync_wait_s = 0;
  double mem_copy_s = 0;
  double stable_write_s = 0;
  double storage_contention_s = 0;
  double logging_s = 0;
  double frozen_stall_s = 0;
  double interference_s = 0;
  /// Time this rank spent reading state back from stable storage during
  /// rollback recovery (zero in failure-free runs).
  double recovery_s = 0;
  /// Time this rank's transport receiver sat on a sequence gap waiting for
  /// a retransmission (zero when link faults are off). Outside the blocked
  /// windows: the gap stalls delivery, not the application's checkpoint.
  double retransmit_wait_s = 0;
  /// Backoff time between storage retry attempts inside app-blocking
  /// checkpoint windows (zero when storage faults are off). Background-
  /// writer retries stay out, like background writes themselves.
  double storage_retry_wait_s = 0;
  /// Request-side queue wait in the svc workload: scheduled (open-loop)
  /// arrival to service start, charged to the serving rank (zero for batch
  /// apps). Request time, not rank CPU time — it may overlap frozen_stall
  /// or recovery wall-clock on the same rank — so it sits outside the
  /// blocked windows and is added symmetrically to both sums below.
  double svc_queue_wait_s = 0;
  /// Time this rank spent excluded from the membership view: crashed and
  /// awaiting detection/recovery, or live but wrongly evicted (fenced)
  /// until rejoin (zero with the detector off). Wall-clock exclusion, not
  /// rank CPU time — it may overlap recovery or frozen_stall on the same
  /// rank — so like svc_queue_wait it sits outside the blocked windows and
  /// is added symmetrically to both sums below.
  double membership_wait_s = 0;
  /// Sum of this rank's checkpoint blocking windows (== the protocol's
  /// app_blocked share; the first five buckets partition it exactly).
  double blocked_total_s = 0;

  [[nodiscard]] double bucket_sum_s() const noexcept {
    return sync_wait_s + mem_copy_s + stable_write_s + storage_contention_s +
           logging_s + frozen_stall_s + interference_s + recovery_s +
           retransmit_wait_s + storage_retry_wait_s + svc_queue_wait_s +
           membership_wait_s;
  }
  [[nodiscard]] double total_s() const noexcept {
    return blocked_total_s + frozen_stall_s + interference_s + recovery_s +
           retransmit_wait_s + svc_queue_wait_s + membership_wait_s;
  }
};

struct AttributionReport {
  std::vector<RankBuckets> ranks;
  RankBuckets total;  ///< element-wise sum over ranks
};

/// Fold a trace into per-rank buckets. Events with rank >= num_ranks
/// (metadata) are ignored.
[[nodiscard]] AttributionReport attribute(const Trace& trace, std::size_t num_ranks);

}  // namespace chk::obs
