// Exporters: trace → Chrome/Perfetto trace JSON, metrics and attribution
// → plain JSON documents. The Chrome trace carries the exact integer
// payload of every event in its `args`, so parse_chrome_trace() can
// reconstruct the original record stream losslessly (round-trip tested).
#pragma once

#include <cstddef>
#include <string>

#include "obs/attribution.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace chk::obs {

/// Chrome trace-event JSON (load with chrome://tracing or ui.perfetto.dev).
/// Spans become "X" complete events, instants "i" events; one "M" metadata
/// event names each rank's track. ts/dur are microseconds as the format
/// requires; args keep the nanosecond originals.
[[nodiscard]] json::Value to_chrome_trace(const Trace& trace, std::size_t num_ranks);

/// Rebuild a Trace from to_chrome_trace() output. Metadata events are
/// skipped; the hash is recomputed from the reconstructed records.
[[nodiscard]] Trace parse_chrome_trace(const json::Value& doc);

[[nodiscard]] json::Value metrics_to_json(const MetricsSnapshot& snap);

[[nodiscard]] json::Value attribution_to_json(const AttributionReport& report);

/// Write `text` to `path` (truncating); throws std::runtime_error on I/O
/// failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace chk::obs
