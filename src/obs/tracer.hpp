// Low-overhead event tracer.
//
// Events are appended to fixed-size chunks (no per-event allocation, no
// reallocation copying), with a running order-sensitive hash over the
// emitted records. The tracer is gated twice: at compile time (CHK_OBS=OFF
// removes every emission) and at run time (instrumented objects hold a
// Tracer* that is null unless an experiment opted in), so a run without
// observation executes the exact same simulated schedule — emission never
// touches the event queue or simulated time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/event.hpp"

namespace chk::obs {

/// A finished event stream: flattened records plus their running hash.
struct Trace {
  std::vector<Event> events;
  std::uint64_t hash = 0;

  /// Fixed-layout little-endian binary serialization (determinism checks
  /// compare these byte strings across runs).
  [[nodiscard]] std::vector<std::byte> serialize() const;
};

/// Order-sensitive hash over a record sequence (splitmix64-based, seeded
/// like the DES kernel's trace hash).
[[nodiscard]] std::uint64_t hash_events(const std::vector<Event>& events) noexcept;

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void emit(const Event& event) {
    if constexpr (!kObsCompiled) return;
    push(event);
  }

  void span(EventKind kind, std::uint16_t rank, std::int64_t t0_ns, std::int64_t t1_ns,
            std::uint64_t aux = 0, std::uint32_t arg = 0) {
    emit(Event{t0_ns, t1_ns - t0_ns, aux, kind, rank, arg});
  }
  void instant(EventKind kind, std::uint16_t rank, std::int64_t t_ns,
               std::uint64_t aux = 0, std::uint32_t arg = 0) {
    emit(Event{t_ns, 0, aux, kind, rank, arg});
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }

  /// Flatten the chunks into a Trace (tracer keeps its contents).
  [[nodiscard]] Trace take() const;

 private:
  static constexpr std::size_t kChunkEvents = 4096;

  void push(const Event& event);

  std::vector<std::unique_ptr<std::vector<Event>>> chunks_;
  std::size_t count_ = 0;
  std::uint64_t hash_ = 0x9e3779b97f4a7c15ULL;
};

}  // namespace chk::obs
