#include "obs/metrics.hpp"

#include <stdexcept>

namespace chk::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::invalid_argument("Histogram: no bucket edges");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i] <= edges_[i - 1]) {
      throw std::invalid_argument("Histogram: edges must be strictly increasing");
    }
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double value) noexcept {
  std::size_t bucket = edges_.size();  // overflow by default
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (value <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++total_;
  sum_ += value;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> edges) {
  if (const auto it = histograms_.find(name); it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(edges))).first->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(
        name, HistogramSnapshot{h.edges(), h.counts(), h.total_count(), h.sum()});
  }
  return snap;
}

}  // namespace chk::obs
