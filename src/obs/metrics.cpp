#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace chk::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::invalid_argument("Histogram: no bucket edges");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i] <= edges_[i - 1]) {
      throw std::invalid_argument("Histogram: edges must be strictly increasing");
    }
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double value) noexcept {
  std::size_t bucket = edges_.size();  // overflow by default
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (value <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++total_;
  sum_ += value;
}

LogHistogram::LogHistogram(int min_exp, int max_exp, double scale)
    : min_exp_(min_exp), max_exp_(max_exp), scale_(scale) {
  if (min_exp < 0 || max_exp < min_exp || max_exp > 62) {
    throw std::invalid_argument("LogHistogram: need 0 <= min_exp <= max_exp <= 62");
  }
  counts_.assign(static_cast<std::size_t>(max_exp - min_exp + 1) + 1, 0);
}

std::size_t LogHistogram::bucket_of(std::uint64_t value, int min_exp,
                                    int max_exp) noexcept {
  // Smallest e with value <= 2^e is bit_width(value) - 1 for powers of two
  // and bit_width(value) otherwise; value 0 sits in the first bucket.
  int e = 0;
  if (value > 1) {
    e = static_cast<int>(std::bit_width(value - 1));  // ceil(log2(value))
  }
  if (e <= min_exp) return 0;
  if (e > max_exp) return static_cast<std::size_t>(max_exp - min_exp) + 1;
  return static_cast<std::size_t>(e - min_exp);
}

void LogHistogram::observe(std::uint64_t value) noexcept {
  ++counts_[bucket_of(value, min_exp_, max_exp_)];
  ++total_;
  sum_ += value;
}

std::vector<double> LogHistogram::make_edges(int min_exp, int max_exp,
                                             double scale) {
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(max_exp - min_exp + 1));
  for (int e = min_exp; e <= max_exp; ++e) {
    edges.push_back(std::ldexp(1.0, e) * scale);
  }
  return edges;
}

HistogramSnapshot LogHistogram::snapshot() const {
  return HistogramSnapshot{make_edges(min_exp_, max_exp_, scale_), counts_, total_,
                           static_cast<double>(sum_) * scale_};
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  if (h.total_count == 0 || h.edges.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; ceil keeps p100 at the last sample.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(h.total_count)));
  const std::uint64_t rank = target == 0 ? 1 : target;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;
    if (cum + h.counts[i] >= rank) {
      if (i >= h.edges.size()) return h.edges.back();  // overflow bucket
      const double lower = i == 0 ? 0.0 : h.edges[i - 1];
      const double upper = h.edges[i];
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(h.counts[i]);
      return lower + frac * (upper - lower);
    }
    cum += h.counts[i];
  }
  return h.edges.back();
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> edges) {
  if (log_histograms_.contains(name)) {
    throw std::invalid_argument("Registry: " + name + " is a log histogram");
  }
  if (const auto it = histograms_.find(name); it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(edges))).first->second;
}

LogHistogram& Registry::log_histogram(const std::string& name, int min_exp,
                                      int max_exp, double scale) {
  if (histograms_.contains(name)) {
    throw std::invalid_argument("Registry: " + name + " is a fixed-bucket histogram");
  }
  if (const auto it = log_histograms_.find(name); it != log_histograms_.end()) {
    return it->second;
  }
  return log_histograms_.emplace(name, LogHistogram(min_exp, max_exp, scale))
      .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(
        name, HistogramSnapshot{h.edges(), h.counts(), h.total_count(), h.sum()});
  }
  for (const auto& [name, h] : log_histograms_) {
    snap.histograms.emplace(name, h.snapshot());
  }
  return snap;
}

}  // namespace chk::obs
