#include "obs/attribution.hpp"

#include <algorithm>

namespace chk::obs {

namespace {

/// Exact per-rank accumulators in nanoseconds; converted to seconds once.
struct NsBuckets {
  std::int64_t window = 0;
  std::int64_t mem_copy = 0;
  std::int64_t stable_write = 0;
  std::int64_t contention = 0;
  std::int64_t logging = 0;
  std::int64_t frozen = 0;
  std::int64_t interference = 0;
  std::int64_t recovery = 0;
  std::int64_t retransmit_wait = 0;
  std::int64_t retry_wait = 0;
  std::int64_t svc_queue_wait = 0;
  std::int64_t membership_wait = 0;
};

constexpr double to_s(std::int64_t ns) noexcept { return static_cast<double>(ns) * 1e-9; }

}  // namespace

AttributionReport attribute(const Trace& trace, std::size_t num_ranks) {
  std::vector<NsBuckets> acc(num_ranks);
  // `arg == 1` on stable/log writes marks the application-blocking context
  // (set by the protocols through the checkpoint store); background writer
  // and daemon writes carry arg == 0 and stay out of the blocked windows.
  for (const Event& e : trace.events) {
    if (e.rank >= num_ranks) continue;
    NsBuckets& b = acc[e.rank];
    switch (e.kind) {
      case EventKind::kCkptWindow:
        b.window += e.dur_ns;
        break;
      case EventKind::kMemCopy:
        b.mem_copy += e.dur_ns;
        break;
      case EventKind::kStableWrite:
        if (e.arg == 1) {
          const auto pure = std::min<std::int64_t>(static_cast<std::int64_t>(e.aux), e.dur_ns);
          b.stable_write += pure;
          b.contention += e.dur_ns - pure;
        }
        break;
      case EventKind::kLogWrite:
        if (e.arg == 1) b.logging += e.dur_ns;
        break;
      case EventKind::kFrozenStall:
        b.frozen += e.dur_ns;
        break;
      case EventKind::kRecoveryRead:
        b.recovery += e.dur_ns;
        break;
      case EventKind::kRetransmitWait:
        b.retransmit_wait += e.dur_ns;
        break;
      case EventKind::kStorageRetryWait:
        if (e.arg == 1) b.retry_wait += e.dur_ns;
        break;
      case EventKind::kSvcQueueWait:
        b.svc_queue_wait += e.dur_ns;
        break;
      case EventKind::kMembershipWait:
        b.membership_wait += e.dur_ns;
        break;
      case EventKind::kInterference:
        b.interference += static_cast<std::int64_t>(e.aux);
        break;
      default:
        break;
    }
  }

  AttributionReport report;
  report.ranks.resize(num_ranks);
  for (std::size_t r = 0; r < num_ranks; ++r) {
    const NsBuckets& b = acc[r];
    RankBuckets& out = report.ranks[r];
    // The window remainder is protocol synchronization: token/grant waits
    // and any in-window time not spent copying or writing.
    const std::int64_t accounted =
        b.mem_copy + b.stable_write + b.contention + b.logging + b.retry_wait;
    out.sync_wait_s = to_s(std::max<std::int64_t>(0, b.window - accounted));
    out.mem_copy_s = to_s(b.mem_copy);
    out.stable_write_s = to_s(b.stable_write);
    out.storage_contention_s = to_s(b.contention);
    out.logging_s = to_s(b.logging);
    out.frozen_stall_s = to_s(b.frozen);
    out.interference_s = to_s(b.interference);
    out.recovery_s = to_s(b.recovery);
    out.retransmit_wait_s = to_s(b.retransmit_wait);
    out.storage_retry_wait_s = to_s(b.retry_wait);
    out.svc_queue_wait_s = to_s(b.svc_queue_wait);
    out.membership_wait_s = to_s(b.membership_wait);
    out.blocked_total_s = to_s(b.window);

    report.total.sync_wait_s += out.sync_wait_s;
    report.total.mem_copy_s += out.mem_copy_s;
    report.total.stable_write_s += out.stable_write_s;
    report.total.storage_contention_s += out.storage_contention_s;
    report.total.logging_s += out.logging_s;
    report.total.frozen_stall_s += out.frozen_stall_s;
    report.total.interference_s += out.interference_s;
    report.total.recovery_s += out.recovery_s;
    report.total.retransmit_wait_s += out.retransmit_wait_s;
    report.total.storage_retry_wait_s += out.storage_retry_wait_s;
    report.total.svc_queue_wait_s += out.svc_queue_wait_s;
    report.total.membership_wait_s += out.membership_wait_s;
    report.total.blocked_total_s += out.blocked_total_s;
  }
  return report;
}

}  // namespace chk::obs
