#include "obs/tracer.hpp"

#include <cstring>

namespace chk::obs {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr std::uint64_t mix_event(std::uint64_t h, const Event& e) noexcept {
  h = mix64(h ^ static_cast<std::uint64_t>(e.t_ns));
  h = mix64(h ^ static_cast<std::uint64_t>(e.dur_ns));
  h = mix64(h ^ e.aux);
  h = mix64(h ^ (static_cast<std::uint64_t>(e.kind) << 32 |
                 static_cast<std::uint64_t>(e.rank) << 16) ^
            e.arg);
  return h;
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

std::uint64_t hash_events(const std::vector<Event>& events) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Event& e : events) h = mix_event(h, e);
  return h;
}

std::vector<std::byte> Trace::serialize() const {
  std::vector<std::byte> out;
  out.reserve(16 + events.size() * sizeof(Event));
  put_u64(out, events.size());
  put_u64(out, hash);
  for (const Event& e : events) {
    put_u64(out, static_cast<std::uint64_t>(e.t_ns));
    put_u64(out, static_cast<std::uint64_t>(e.dur_ns));
    put_u64(out, e.aux);
    put_u64(out, static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.kind)) |
                     static_cast<std::uint64_t>(e.rank) << 16 |
                     static_cast<std::uint64_t>(e.arg) << 32);
  }
  return out;
}

void Tracer::push(const Event& event) {
  if (chunks_.empty() || chunks_.back()->size() == kChunkEvents) {
    chunks_.push_back(std::make_unique<std::vector<Event>>());
    chunks_.back()->reserve(kChunkEvents);
  }
  chunks_.back()->push_back(event);
  ++count_;
  hash_ = mix_event(hash_, event);
}

Trace Tracer::take() const {
  Trace trace;
  trace.events.reserve(count_);
  for (const auto& chunk : chunks_) {
    trace.events.insert(trace.events.end(), chunk->begin(), chunk->end());
  }
  trace.hash = hash_;
  return trace;
}

}  // namespace chk::obs
