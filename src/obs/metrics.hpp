// Metrics registry: counters, gauges and fixed-bucket histograms.
//
// A Registry gives one experiment's metrics a typed, enumerable home (the
// harness publishes its ExperimentResult fields and the per-rank overhead
// attribution here when observation is on). Names are kept in a sorted map
// so snapshots and their JSON serialization are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chk::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts samples with value <= edges[i]
/// (the first such i); samples above the last edge land in the overflow
/// bucket. Edges must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }
  /// counts().size() == edges().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0;
};

struct HistogramSnapshot {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t total_count = 0;
  double sum = 0;
};

/// Log-spaced (power-of-two) histogram over non-negative integer samples,
/// nanoseconds by convention. Bucket i counts samples <= 2^(min_exp + i);
/// samples above 2^max_exp land in the overflow bucket. observe() is O(1)
/// (bit_width), so it is cheap enough for per-request latency recording,
/// and the 2x geometric edges resolve tail quantiles (p999) that the
/// coarse fixed-bucket Histogram cannot.
class LogHistogram {
 public:
  /// `scale` converts integer samples to the exported unit at snapshot
  /// time (e.g. 1e-9 to export nanosecond samples with edges in seconds).
  LogHistogram(int min_exp, int max_exp, double scale = 1.0);

  void observe(std::uint64_t value) noexcept;

  /// Bucket index a sample falls into: 0..(max_exp - min_exp) for the
  /// edge buckets, max_exp - min_exp + 1 for overflow. Exposed so callers
  /// that keep raw per-rank count arrays in checkpointable state can use
  /// the exact same binning.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value, int min_exp,
                                             int max_exp) noexcept;
  /// Upper bucket edges 2^min_exp .. 2^max_exp, multiplied by `scale`.
  [[nodiscard]] static std::vector<double> make_edges(int min_exp, int max_exp,
                                                      double scale);

  [[nodiscard]] int min_exp() const noexcept { return min_exp_; }
  [[nodiscard]] int max_exp() const noexcept { return max_exp_; }
  /// counts().size() == (max_exp - min_exp + 1) + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }

  /// Same shape as a fixed-bucket histogram snapshot (edges scaled by
  /// `scale`, sum likewise), so the JSON export schema is unchanged.
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  int min_exp_;
  int max_exp_;
  double scale_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Deterministic quantile estimate from a histogram snapshot: finds the
/// bucket holding the q-th sample and interpolates linearly inside it
/// (overflow samples report the last edge). q in [0, 1]; returns 0 for an
/// empty histogram.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& h, double q);

/// Typed point-in-time copy of a Registry (safe to keep past its death).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Creates the histogram on first use; `edges` is ignored on later
  /// lookups of the same name.
  Histogram& histogram(const std::string& name, std::vector<double> edges);
  /// Log-spaced sibling of histogram(); shares the snapshot namespace, so
  /// a name may be either fixed-bucket or log-spaced, never both.
  LogHistogram& log_histogram(const std::string& name, int min_exp, int max_exp,
                              double scale = 1.0);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, LogHistogram> log_histograms_;
};

}  // namespace chk::obs
