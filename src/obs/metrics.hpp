// Metrics registry: counters, gauges and fixed-bucket histograms.
//
// A Registry gives one experiment's metrics a typed, enumerable home (the
// harness publishes its ExperimentResult fields and the per-rank overhead
// attribution here when observation is on). Names are kept in a sorted map
// so snapshots and their JSON serialization are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chk::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts samples with value <= edges[i]
/// (the first such i); samples above the last edge land in the overflow
/// bucket. Edges must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }
  /// counts().size() == edges().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0;
};

struct HistogramSnapshot {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t total_count = 0;
  double sum = 0;
};

/// Typed point-in-time copy of a Registry (safe to keep past its death).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Creates the histogram on first use; `edges` is ignored on later
  /// lookups of the same name.
  Histogram& histogram(const std::string& name, std::vector<double> edges);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace chk::obs
