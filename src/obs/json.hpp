// Minimal JSON document model: enough to write the obs exports (Chrome
// trace, metrics, bench tables) and to parse them back for round-trip
// checks — no external dependency, deterministic member order (insertion
// order is preserved when dumping).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace chk::obs::json {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  static Value boolean(bool b);
  static Value number(double v);
  static Value number(std::int64_t v);
  static Value number(std::uint64_t v);
  static Value string(std::string s);
  static Value array();
  static Value object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  // -- arrays ----------------------------------------------------------------
  Value& push_back(Value v);
  [[nodiscard]] std::size_t size() const noexcept { return array_.size(); }
  [[nodiscard]] const Value& operator[](std::size_t i) const { return array_.at(i); }
  [[nodiscard]] const std::vector<Value>& items() const noexcept { return array_; }

  // -- objects ---------------------------------------------------------------
  Value& set(std::string key, Value v);
  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  /// Throws ParseError if the key is absent.
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members() const noexcept {
    return object_;
  }

  /// Compact serialization. Integral numbers print without a decimal point,
  /// so int64 payloads survive a dump/parse round trip exactly.
  [[nodiscard]] std::string dump() const;

  /// Strict-enough recursive-descent parser; throws ParseError.
  [[nodiscard]] static Value parse(std::string_view text);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace chk::obs::json
