#include "obs/export.hpp"

#include <fstream>
#include <stdexcept>

#include "util/format.hpp"

namespace chk::obs {

namespace {

constexpr double kNsToUs = 1e-3;

json::Value event_args(const Event& e) {
  json::Value args = json::Value::object();
  args.set("t_ns", json::Value::number(e.t_ns));
  args.set("dur_ns", json::Value::number(e.dur_ns));
  args.set("aux", json::Value::number(e.aux));
  args.set("arg", json::Value::number(static_cast<std::int64_t>(e.arg)));
  args.set("kind", json::Value::number(static_cast<std::int64_t>(e.kind)));
  return args;
}

}  // namespace

json::Value to_chrome_trace(const Trace& trace, std::size_t num_ranks) {
  json::Value events = json::Value::array();

  for (std::size_t r = 0; r < num_ranks; ++r) {
    json::Value meta = json::Value::object();
    meta.set("name", json::Value::string("thread_name"));
    meta.set("ph", json::Value::string("M"));
    meta.set("pid", json::Value::number(std::int64_t{0}));
    meta.set("tid", json::Value::number(static_cast<std::int64_t>(r)));
    json::Value args = json::Value::object();
    args.set("name", json::Value::string(util::format("rank {}", r)));
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }

  for (const Event& e : trace.events) {
    json::Value ev = json::Value::object();
    ev.set("name", json::Value::string(std::string(to_string(e.kind))));
    ev.set("cat", json::Value::string("obs"));
    ev.set("ph", json::Value::string(is_span(e.kind) ? "X" : "i"));
    ev.set("ts", json::Value::number(static_cast<double>(e.t_ns) * kNsToUs));
    if (is_span(e.kind)) {
      ev.set("dur", json::Value::number(static_cast<double>(e.dur_ns) * kNsToUs));
    } else {
      ev.set("s", json::Value::string("t"));
    }
    ev.set("pid", json::Value::number(std::int64_t{0}));
    ev.set("tid", json::Value::number(static_cast<std::int64_t>(e.rank)));
    ev.set("args", event_args(e));
    events.push_back(std::move(ev));
  }

  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", json::Value::string("ms"));
  json::Value other = json::Value::object();
  other.set("trace_hash", json::Value::string(util::format("{:016x}", trace.hash)));
  other.set("num_ranks", json::Value::number(static_cast<std::int64_t>(num_ranks)));
  doc.set("otherData", std::move(other));
  return doc;
}

Trace parse_chrome_trace(const json::Value& doc) {
  Trace trace;
  for (const json::Value& ev : doc.at("traceEvents").items()) {
    if (ev.at("ph").as_string() == "M") continue;
    const json::Value& args = ev.at("args");
    Event e;
    e.t_ns = args.at("t_ns").as_int();
    e.dur_ns = args.at("dur_ns").as_int();
    e.aux = static_cast<std::uint64_t>(args.at("aux").as_int());
    e.arg = static_cast<std::uint32_t>(args.at("arg").as_int());
    e.kind = static_cast<EventKind>(args.at("kind").as_int());
    e.rank = static_cast<std::uint16_t>(ev.at("tid").as_int());
    trace.events.push_back(e);
  }
  trace.hash = hash_events(trace.events);
  return trace;
}

json::Value metrics_to_json(const MetricsSnapshot& snap) {
  json::Value doc = json::Value::object();

  json::Value counters = json::Value::object();
  for (const auto& [name, v] : snap.counters) counters.set(name, json::Value::number(v));
  doc.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, v] : snap.gauges) gauges.set(name, json::Value::number(v));
  doc.set("gauges", std::move(gauges));

  json::Value histograms = json::Value::object();
  for (const auto& [name, h] : snap.histograms) {
    json::Value hist = json::Value::object();
    json::Value edges = json::Value::array();
    for (const double e : h.edges) edges.push_back(json::Value::number(e));
    hist.set("edges", std::move(edges));
    json::Value counts = json::Value::array();
    for (const std::uint64_t c : h.counts) counts.push_back(json::Value::number(c));
    hist.set("counts", std::move(counts));
    hist.set("total_count", json::Value::number(h.total_count));
    hist.set("sum", json::Value::number(h.sum));
    histograms.set(name, std::move(hist));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

namespace {

json::Value buckets_to_json(const RankBuckets& b) {
  json::Value v = json::Value::object();
  v.set("sync_wait_s", json::Value::number(b.sync_wait_s));
  v.set("mem_copy_s", json::Value::number(b.mem_copy_s));
  v.set("stable_write_s", json::Value::number(b.stable_write_s));
  v.set("storage_contention_s", json::Value::number(b.storage_contention_s));
  v.set("logging_s", json::Value::number(b.logging_s));
  v.set("frozen_stall_s", json::Value::number(b.frozen_stall_s));
  v.set("interference_s", json::Value::number(b.interference_s));
  v.set("recovery_s", json::Value::number(b.recovery_s));
  v.set("retransmit_wait_s", json::Value::number(b.retransmit_wait_s));
  v.set("storage_retry_wait_s", json::Value::number(b.storage_retry_wait_s));
  v.set("svc_queue_wait_s", json::Value::number(b.svc_queue_wait_s));
  v.set("membership_wait_s", json::Value::number(b.membership_wait_s));
  v.set("blocked_total_s", json::Value::number(b.blocked_total_s));
  v.set("total_s", json::Value::number(b.total_s()));
  return v;
}

}  // namespace

json::Value attribution_to_json(const AttributionReport& report) {
  json::Value doc = json::Value::object();
  json::Value ranks = json::Value::array();
  for (const RankBuckets& b : report.ranks) ranks.push_back(buckets_to_json(b));
  doc.set("ranks", std::move(ranks));
  doc.set("total", buckets_to_json(report.total));
  return doc;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace chk::obs
