#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace chk::obs::json {

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

Value Value::number(std::int64_t i) { return number(static_cast<double>(i)); }
Value Value::number(std::uint64_t u) { return number(static_cast<double>(u)); }

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw ParseError("json: not a bool");
  return bool_;
}

double Value::as_double() const {
  if (type_ != Type::kNumber) throw ParseError("json: not a number");
  return number_;
}

std::int64_t Value::as_int() const { return static_cast<std::int64_t>(as_double()); }

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw ParseError("json: not a string");
  return string_;
}

Value& Value::push_back(Value v) {
  if (type_ != Type::kArray) throw ParseError("json: not an array");
  array_.push_back(std::move(v));
  return array_.back();
}

Value& Value::set(std::string key, Value v) {
  if (type_ != Type::kObject) throw ParseError("json: not an object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return object_.back().second;
}

bool Value::contains(std::string_view key) const noexcept {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Value& Value::at(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw ParseError("json: missing key \"" + std::string(key) + "\"");
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_number(double d, std::string& out) {
  // Integral values (our ns timestamps, counts, ids) must round-trip
  // exactly, so print them without an exponent or decimal point.
  if (std::nearbyint(d) == d && std::abs(d) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(number_, out);
      break;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw ParseError("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail("unexpected character");
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::string(parse_string());
      case 't': expect_literal("true"); return Value::boolean(true);
      case 'f': expect_literal("false"); return Value::boolean(false);
      case 'n': expect_literal("null"); return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      switch (text_[pos_++]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Basic-plane decode to UTF-8 (our own output only emits \u00xx).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return Value::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace chk::obs::json
