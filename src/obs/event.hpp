// Structured trace events.
//
// One Event is a fixed-size binary record: a timestamp, an optional
// duration (spans), the emitting rank, a kind tag and two payload words.
// Records are raw int64 nanoseconds (not des::Duration) so the obs layer
// depends only on util/ and can sit below the DES kernel in the library
// chain. Event streams are deterministic: emission happens in simulated
// event order on the kernel's single active thread, so two runs with the
// same config and seed serialize byte-identically.
#pragma once

#include <cstdint>
#include <string_view>

namespace chk::obs {

/// Compile-time gate, mirroring the CHK_INVARIANTS pattern: configure with
/// -DCHK_OBS=OFF to compile every emission site down to nothing.
#ifdef CHK_OBS_DISABLED
inline constexpr bool kObsCompiled = false;
#else
inline constexpr bool kObsCompiled = true;
#endif

/// Rank value for events not attributable to a rank (kernel, metadata).
inline constexpr std::uint16_t kMetaRank = 0xFFFF;

enum class EventKind : std::uint16_t {
  // ---- spans (dur_ns > 0 meaningful) --------------------------------------
  kCkptWindow = 0,   ///< application blocked for checkpoint work; arg = epoch
  kMemCopy,          ///< main-memory checkpoint copy; aux = bytes
  kStableWrite,      ///< stable-storage write; aux = uncontended (pure) ns
  kLogWrite,         ///< channel/message-log write; aux = pure ns
  kCommitWrite,      ///< coordinator's global commit record write
  kRecoveryRead,     ///< stable-storage read during recovery
  kFrozenStall,      ///< application parked at the freeze gate
  kInterference,     ///< compute slowed by background I/O; aux = extra ns
  kRecvWait,         ///< receive blocked waiting for a matching message
  kRetransmitWait,   ///< transport reorder gap: waiting on a retransmit
  kStorageRetryWait, ///< backoff sleep between storage retry attempts; arg = context
  kSvcQueueWait,     ///< svc request queue wait: scheduled arrival -> service start
  kMembershipWait,   ///< rank excluded from the membership view (crashed or fenced)
  // ---- instants (dur_ns == 0) ---------------------------------------------
  kMsgSend,          ///< application send; aux = payload bytes, arg = dst
  kControlSend,      ///< protocol control message; arg = dst
  kRoundBegin,       ///< coordinated round start; arg = epoch
  kCommit,           ///< global commit broadcast; arg = epoch
  kTokenPass,        ///< stagger token received; arg = epoch/index
  kProcSpawn,        ///< DES process spawned; aux = process id
  kProcExit,         ///< DES process finished; aux = process id
  kFailure,          ///< injected node failure
  kRecoveryDone,     ///< recovery complete, applications restarted
  kRetransmit,       ///< transport RTO expiry re-sent a frame; arg = dst
  kRoundAbort,       ///< coordinator round watchdog aborted a round; arg = epoch
  kTokenRegen,       ///< stagger-token watchdog regenerated the token; arg = next rank
  kMaxKind,          // sentinel
};

[[nodiscard]] constexpr bool is_span(EventKind kind) noexcept {
  return kind < EventKind::kMsgSend;
}

[[nodiscard]] constexpr std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kCkptWindow: return "ckpt_window";
    case EventKind::kMemCopy: return "mem_copy";
    case EventKind::kStableWrite: return "stable_write";
    case EventKind::kLogWrite: return "log_write";
    case EventKind::kCommitWrite: return "commit_write";
    case EventKind::kRecoveryRead: return "recovery_read";
    case EventKind::kFrozenStall: return "frozen_stall";
    case EventKind::kInterference: return "interference";
    case EventKind::kRecvWait: return "recv_wait";
    case EventKind::kRetransmitWait: return "retransmit_wait";
    case EventKind::kStorageRetryWait: return "storage_retry_wait";
    case EventKind::kSvcQueueWait: return "svc_queue_wait";
    case EventKind::kMembershipWait: return "membership_wait";
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kControlSend: return "control_send";
    case EventKind::kRoundBegin: return "round_begin";
    case EventKind::kCommit: return "commit";
    case EventKind::kTokenPass: return "token_pass";
    case EventKind::kProcSpawn: return "proc_spawn";
    case EventKind::kProcExit: return "proc_exit";
    case EventKind::kFailure: return "failure";
    case EventKind::kRecoveryDone: return "recovery_done";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kRoundAbort: return "round_abort";
    case EventKind::kTokenRegen: return "token_regen";
    case EventKind::kMaxKind: break;
  }
  return "?";
}

struct Event {
  std::int64_t t_ns = 0;    ///< start time (simulated, ns since origin)
  std::int64_t dur_ns = 0;  ///< span duration; 0 for instants
  std::uint64_t aux = 0;    ///< kind-specific payload (bytes, pure ns, ...)
  EventKind kind = EventKind::kMaxKind;
  std::uint16_t rank = kMetaRank;
  std::uint32_t arg = 0;    ///< kind-specific small payload (epoch, dst, ...)

  friend bool operator==(const Event&, const Event&) = default;
};

static_assert(sizeof(Event) == 32, "Event must stay a fixed 32-byte record");

}  // namespace chk::obs
