// Simulated-domain synchronization primitives.
//
// All primitives operate purely on simulator state (never on OS state): a
// blocked simulated process is parked via Process::suspend and woken by a
// kernel event. Wait lists are strict FIFO, which both matches the FIFO
// service disciplines of the modelled hardware and keeps runs deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "des/process.hpp"
#include "des/simulator.hpp"

namespace chk::des {

/// Counting semaphore with FIFO wakeups.
class SimSemaphore {
 public:
  explicit SimSemaphore(Simulator& sim, std::int64_t initial = 0)
      : sim_(&sim), count_(initial) {}
  SimSemaphore(const SimSemaphore&) = delete;
  SimSemaphore& operator=(const SimSemaphore&) = delete;
  ~SimSemaphore();

  /// Block the calling process until a unit is available.
  void acquire(Process& self);

  /// True if a unit was available; never blocks.
  bool try_acquire() noexcept;

  /// Release one unit; wakes the oldest waiter if any.
  void release();

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return wait_queue_.size(); }

 private:
  Simulator* sim_;
  std::int64_t count_;
  std::deque<Process*> wait_queue_;
};

/// Single-slot or multi-slot typed message queue; receivers block.
template <typename T>
class SimMailbox {
 public:
  explicit SimMailbox(Simulator& sim) : sim_(&sim) {}
  SimMailbox(const SimMailbox&) = delete;
  SimMailbox& operator=(const SimMailbox&) = delete;
  ~SimMailbox() {
    for (Process* receiver : receivers_) receiver->detach_cancel();
  }

  /// Deposit a message; callable from kernel or process context.
  void send(T message) {
    items_.push_back(std::move(message));
    if (!receivers_.empty()) {
      Process* receiver = receivers_.front();
      receivers_.pop_front();
      sim_->wake(*receiver);
    }
  }

  /// Block until a message is available, then take the oldest one.
  T recv(Process& self) {
    while (items_.empty()) {
      receivers_.push_back(&self);
      self.suspend([this, &self] { remove_receiver(self); });
    }
    T message = std::move(items_.front());
    items_.pop_front();
    return message;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T message = std::move(items_.front());
    items_.pop_front();
    return message;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t waiting_receivers() const noexcept { return receivers_.size(); }

  /// Drop all queued messages (used when flushing channels on rollback).
  void clear() noexcept { items_.clear(); }

 private:
  void remove_receiver(Process& self) { std::erase(receivers_, &self); }

  Simulator* sim_;
  std::deque<T> items_;
  std::deque<Process*> receivers_;
};

/// Reusable N-party barrier.
class SimBarrier {
 public:
  SimBarrier(Simulator& sim, std::size_t parties) : sim_(&sim), parties_(parties) {}
  SimBarrier(const SimBarrier&) = delete;
  SimBarrier& operator=(const SimBarrier&) = delete;
  ~SimBarrier();

  /// Block until all parties have arrived; the last arrival releases all.
  void arrive_and_wait(Process& self);

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t arrived() const noexcept { return waiting_.size(); }

 private:
  Simulator* sim_;
  std::size_t parties_;
  std::uint64_t generation_ = 0;
  std::deque<Process*> waiting_;
};

/// A FIFO-served exclusive resource with a modelled service time — the
/// building block for links and the disk. A process `uses` the resource
/// for a caller-computed Duration; requests queue in arrival order.
class SimResource {
 public:
  explicit SimResource(Simulator& sim, std::string name)
      : sim_(&sim), name_(std::move(name)), gate_(sim, 1) {}

  /// Acquire exclusively, hold for `service_time` of simulated time, then
  /// release. Returns the time spent queueing (not serving).
  Duration use(Process& self, Duration service_time);

  /// Total simulated time the resource spent serving (busy time).
  [[nodiscard]] Duration busy_time() const noexcept { return busy_; }
  [[nodiscard]] Duration queue_time() const noexcept { return queued_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return gate_.waiters(); }

 private:
  Simulator* sim_;
  std::string name_;
  SimSemaphore gate_;
  Duration busy_;
  Duration queued_;
  std::uint64_t completed_ = 0;
};

}  // namespace chk::des
