#include "des/sync.hpp"

namespace chk::des {

// A primitive can die while processes are still parked on it (its owner
// may be destroyed before the simulator shuts down and kills them). The
// parked processes' cancel callbacks reference our wait list, so detach
// them: the eventual kill then skips the (dangling) unhook.
SimSemaphore::~SimSemaphore() {
  for (Process* waiter : wait_queue_) waiter->detach_cancel();
}

SimBarrier::~SimBarrier() {
  for (Process* waiter : waiting_) waiter->detach_cancel();
}

void SimSemaphore::acquire(Process& self) {
  if (count_ > 0) {
    --count_;
    return;
  }
  wait_queue_.push_back(&self);
  // A releaser that wakes us has already consumed the unit on our behalf
  // (it does not increment count_), so no re-check loop is needed; but a
  // kill while queued must remove us so the unit is not lost on a later
  // release.
  self.suspend([this, &self] { std::erase(wait_queue_, &self); });
}

bool SimSemaphore::try_acquire() noexcept {
  if (count_ > 0) {
    --count_;
    return true;
  }
  return false;
}

void SimSemaphore::release() {
  if (!wait_queue_.empty()) {
    Process* waiter = wait_queue_.front();
    wait_queue_.pop_front();
    sim_->wake(*waiter);  // unit transfers directly to the waiter
    return;
  }
  ++count_;
}

void SimBarrier::arrive_and_wait(Process& self) {
  waiting_.push_back(&self);
  if (waiting_.size() == parties_) {
    ++generation_;
    auto releasing = std::move(waiting_);
    waiting_.clear();
    for (Process* proc : releasing) {
      if (proc != &self) sim_->wake(*proc);
    }
    return;  // last arrival passes straight through
  }
  self.suspend([this, &self] { std::erase(waiting_, &self); });
}

Duration SimResource::use(Process& self, Duration service_time) {
  const TimePoint requested = sim_->now();
  gate_.acquire(self);
  const Duration waited = sim_->now() - requested;
  queued_ += waited;
  // Hold the resource for the service time; if we are killed mid-service
  // the RAII release below still frees the resource so others proceed.
  struct Release {
    SimSemaphore* gate;
    ~Release() { gate->release(); }
  } releaser{&gate_};
  self.delay(service_time);
  busy_ += service_time;
  ++completed_;
  return waited;
}

}  // namespace chk::des
