// Simulated process.
//
// A Process runs a user-supplied body on a dedicated std::jthread, but the
// kernel guarantees that at most one simulated thread executes at any wall
// instant: the process and the kernel hand a baton back and forth through
// two binary semaphores. Blocking primitives (delay, semaphores, mailboxes)
// park the thread on its own semaphore; a waker schedules a kernel event
// that releases it. Killing a process throws ProcessKilled at its current
// suspension point so that stack unwinding runs RAII cleanups.
#pragma once

#include <cstdint>
#include <functional>
#include <semaphore>
#include <string>
#include <thread>

#include "des/simulator.hpp"
#include "des/time.hpp"

namespace chk::des {

class Process {
 public:
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] TimePoint now() const noexcept { return sim_->now(); }

  [[nodiscard]] bool finished() const noexcept { return state_ == State::kFinished; }
  [[nodiscard]] bool kill_requested() const noexcept { return killed_; }
  /// Set when the body terminated by an uncaught exception other than
  /// ProcessKilled; holds the exception's what().
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  // ---- Blocking primitives; callable only from this process's own body ----

  /// Advance simulated time by `d` without consuming any modelled resource.
  void delay(Duration d);

  /// Yield to other work scheduled at the current instant.
  void yield();

  /// Park until resumed. `cancel` must undo the external wake source (e.g.
  /// remove this process from a wait list); the kernel invokes it if the
  /// process is killed while parked, so that no stale waker fires later.
  /// Throws ProcessKilled after a kill.
  void suspend(InlineFn cancel);

  /// Drop the pending suspend-cancel callback. Blocking primitives call
  /// this from their destructors for every process still on their wait
  /// list: if the primitive dies before the parked process is killed
  /// (owner destroyed before the simulator shuts down), the callback
  /// would otherwise touch the primitive's freed wait list.
  void detach_cancel() noexcept { cancel_.reset(); }

 private:
  friend class Simulator;

  enum class State : std::uint8_t {
    kCreated,   ///< spawn event scheduled, body not yet entered
    kRunning,   ///< currently holds the baton
    kReady,     ///< resume event scheduled
    kBlocked,   ///< parked in suspend()
    kFinished,  ///< body returned / unwound
  };

  Process(Simulator& sim, std::uint64_t id, std::string name, ProcessFn body);

  void thread_main(ProcessFn body) noexcept;
  void check_in_body() const;

  Simulator* sim_;
  std::uint64_t id_;
  std::string name_;
  State state_ = State::kCreated;
  bool killed_ = false;
  std::string error_;
  InlineFn cancel_;                       // valid while kBlocked
  std::binary_semaphore run_baton_{0};    // kernel -> process
  std::jthread thread_;                   // last member: starts running in ctor
};

}  // namespace chk::des
