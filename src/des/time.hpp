// Simulated time.
//
// Time is kept as signed 64-bit nanoseconds so that arithmetic is exact and
// event ordering is total and platform-independent (floating-point time
// would make tie-breaking and accumulation order-sensitive).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include "util/format.hpp"
#include <limits>
#include <string>

namespace chk::des {

class Duration {
 public:
  constexpr Duration() noexcept = default;

  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() noexcept {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr Duration nanos(std::int64_t v) noexcept { return Duration{v}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t v) noexcept {
    return Duration{v * 1'000};
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) noexcept {
    return Duration{v * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration secs(std::int64_t v) noexcept {
    return Duration{v * 1'000'000'000};
  }
  /// Rounds to the nearest nanosecond; saturates at Duration::max().
  [[nodiscard]] static Duration seconds(double v) noexcept {
    const double ns = v * 1e9;
    if (ns >= static_cast<double>(std::numeric_limits<std::int64_t>::max())) return max();
    return Duration{static_cast<std::int64_t>(std::llround(ns))};
  }

  [[nodiscard]] constexpr std::int64_t to_nanos() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration operator+(Duration rhs) const noexcept { return Duration{ns_ + rhs.ns_}; }
  constexpr Duration operator-(Duration rhs) const noexcept { return Duration{ns_ - rhs.ns_}; }
  constexpr Duration operator-() const noexcept { return Duration{-ns_}; }
  constexpr Duration& operator+=(Duration rhs) noexcept { ns_ += rhs.ns_; return *this; }
  constexpr Duration& operator-=(Duration rhs) noexcept { ns_ -= rhs.ns_; return *this; }
  constexpr Duration operator*(std::int64_t k) const noexcept { return Duration{ns_ * k}; }
  [[nodiscard]] Duration scaled(double k) const noexcept {
    return Duration{static_cast<std::int64_t>(std::llround(static_cast<double>(ns_) * k))};
  }
  constexpr Duration operator/(std::int64_t k) const noexcept { return Duration{ns_ / k}; }
  [[nodiscard]] constexpr double operator/(Duration rhs) const noexcept {
    return static_cast<double>(ns_) / static_cast<double>(rhs.ns_);
  }

  [[nodiscard]] std::string str() const { return util::format("{:.6f}s", to_seconds()); }

 private:
  constexpr explicit Duration(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;

  [[nodiscard]] static constexpr TimePoint origin() noexcept { return TimePoint{}; }
  [[nodiscard]] static constexpr TimePoint max() noexcept {
    TimePoint t;
    t.ns_ = std::numeric_limits<std::int64_t>::max();
    return t;
  }
  [[nodiscard]] static constexpr TimePoint from_nanos(std::int64_t ns) noexcept {
    TimePoint t;
    t.ns_ = ns;
    return t;
  }

  [[nodiscard]] constexpr std::int64_t to_nanos() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr Duration since_origin() const noexcept { return Duration::nanos(ns_); }

  constexpr auto operator<=>(const TimePoint&) const noexcept = default;

  constexpr TimePoint operator+(Duration d) const noexcept { return from_nanos(ns_ + d.to_nanos()); }
  constexpr TimePoint operator-(Duration d) const noexcept { return from_nanos(ns_ - d.to_nanos()); }
  constexpr Duration operator-(TimePoint rhs) const noexcept {
    return Duration::nanos(ns_ - rhs.ns_);
  }

  [[nodiscard]] std::string str() const { return util::format("{:.6f}s", to_seconds()); }

 private:
  std::int64_t ns_ = 0;
};

}  // namespace chk::des
