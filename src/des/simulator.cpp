#include "des/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "des/process.hpp"
#include "util/logging.hpp"

namespace chk::des {

std::string_view to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kIdle: return "idle";
    case StopReason::kDeadlock: return "deadlock";
    case StopReason::kTimeLimit: return "time-limit";
    case StopReason::kEventLimit: return "event-limit";
    case StopReason::kStopped: return "stopped";
  }
  return "?";
}

Simulator::Simulator() = default;

Simulator::~Simulator() { shutdown(); }

void Simulator::shutdown() noexcept {
  assert(current_ == nullptr && "shutdown must run in kernel context");
  // Tear down any processes that are still alive: wake each with the kill
  // flag set so its stack unwinds (running destructors) and its thread
  // exits. The baton protocol keeps this serialized.
  for (auto& proc : processes_) {
    if (proc->state_ == Process::State::kFinished) continue;
    proc->killed_ = true;
    // Unhook a parked process from its wait list. A kReady process was
    // already removed by its waker (only the resume event is pending), so
    // its cancel callback is stale — and the wait list it names may be
    // gone by now; drop it without running it, exactly as kill() does.
    if (proc->state_ == Process::State::kBlocked && proc->cancel_) {
      auto cancel = std::move(proc->cancel_);
      cancel();
    }
    proc->cancel_.reset();
    // Guard against double-release: the cancel callback above ran arbitrary
    // wait-list code. If anything in that unwind finished this process (it
    // must not, but the failure mode — releasing the baton of a thread
    // that already exited, then blocking forever on kernel_baton_ — is a
    // hang, not a diagnosable crash), skip the handoff.
    if (proc->state_ == Process::State::kFinished) continue;
    proc->run_baton_.release();
    kernel_baton_.acquire();  // wait for the thread to unwind & yield back
    assert(proc->state_ == Process::State::kFinished &&
           "process failed to unwind during shutdown");
  }
  // jthread members join in Process destructors (or immediately here for
  // explicit shutdown: a finished thread joins without blocking).
}

// ---------------------------------------------------------------------------
// Event pool + heap
// ---------------------------------------------------------------------------

std::uint32_t Simulator::alloc_record() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    return slot;
  }
  const std::size_t slot = pool_.size();
  assert(slot < kNilSlot && "event pool slot space exhausted");
  pool_.emplace_back();
  return static_cast<std::uint32_t>(slot);
}

void Simulator::release_record(std::uint32_t slot) noexcept {
  EventRec& rec = pool_[slot];
  rec.seq = kFreeSeq;  // invalidates every outstanding handle to this slot
  rec.cancelled = false;
  rec.fn.reset();
  rec.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 2;
    if (!earlier(heap_[hole], heap_[parent])) break;
    std::swap(heap_[hole], heap_[parent]);
    hole = parent;
  }
  if (heap_.size() > queue_peak_) queue_peak_ = heap_.size();
}

void Simulator::sift_down(std::size_t hole) noexcept {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * hole + 1;
    if (left >= n) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < n && earlier(heap_[right], heap_[left])) best = right;
    if (!earlier(heap_[best], heap_[hole])) break;
    std::swap(heap_[hole], heap_[best]);
    hole = best;
  }
}

void Simulator::heap_pop_top() noexcept {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::cancel_event(std::uint32_t slot, std::uint64_t seq) noexcept {
  if (!event_pending(slot, seq)) return;
  EventRec& rec = pool_[slot];
  rec.cancelled = true;
  // Release captured resources immediately — a cancelled timer must not pin
  // its captures until the (possibly distant) fire time is popped.
  rec.fn.reset();
  ++dead_in_heap_;
  // Reclaim in bulk once dead entries dominate. The floor keeps tiny heaps
  // from compacting on every cancel; the 50% ratio amortizes the O(n) sweep
  // against the cancellations that earned it, keeping the heap O(live).
  // Destroying a capture above can itself cancel events — never recurse.
  if (!compacting_ && dead_in_heap_ >= kCompactMinDead && dead_in_heap_ * 2 >= heap_.size()) {
    compact();
  }
}

void Simulator::compact() noexcept {
  compacting_ = true;
  // Phase 1: drop dead heap entries and restore the heap invariant. Pop
  // order depends only on the unique (time, seq) keys of the surviving
  // entries, so the schedule — and trace_hash() — is unaffected.
  std::erase_if(heap_, [this](const HeapEntry& e) { return pool_[e.slot].cancelled; });
  // Bottom-up heapify over the survivors: O(n).
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  // Phase 2: recycle the records (their callbacks are already destroyed).
  for (std::size_t slot = 0; slot < pool_.size(); ++slot) {
    if (pool_[slot].cancelled) release_record(static_cast<std::uint32_t>(slot));
  }
  dead_in_heap_ = 0;
  ++compactions_;
  compacting_ = false;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

EventHandle Simulator::schedule_at(TimePoint when, InlineFn fn) {
  if (when < now_) {
    throw SimError(util::format("schedule_at: {} is in the past (now={})", when.str(), now_.str()));
  }
  const std::uint32_t slot = alloc_record();
  EventRec& rec = pool_[slot];
  const std::uint64_t seq = next_seq_++;
  rec.time = when;
  rec.seq = seq;
  rec.cancelled = false;
  rec.fn = std::move(fn);
  try {
    heap_push(HeapEntry{when, seq, slot});
  } catch (...) {
    release_record(slot);
    throw;
  }
  return EventHandle{this, slot, seq};
}

EventHandle Simulator::schedule_after(Duration delay, InlineFn fn) {
  if (delay < Duration::zero()) throw SimError("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

Process& Simulator::spawn(std::string name, ProcessFn body) {
  return spawn_at(now_, std::move(name), std::move(body));
}

Process& Simulator::spawn_at(TimePoint start, std::string name, ProcessFn body) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, processes_.size(), std::move(name), std::move(body)));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  if (tracer_) {
    tracer_->instant(obs::EventKind::kProcSpawn, obs::kMetaRank, start.to_nanos(), ref.id());
  }
  schedule_at(start, [this, &ref] {
    if (ref.state_ == Process::State::kCreated) {
      ref.state_ = Process::State::kReady;
      switch_to(ref);
    }
  });
  return ref;
}

void Simulator::kill(Process& process) {
  if (process.state_ == Process::State::kFinished || process.killed_) return;
  process.killed_ = true;
  if (current_ == &process) throw ProcessKilled{};  // self-kill unwinds now
  if (process.state_ == Process::State::kBlocked) {
    if (process.cancel_) {
      auto cancel = std::move(process.cancel_);
      cancel();
    }
    process.cancel_.reset();
    resume(process);
  }
  // kCreated: its start event notices the kill when the body is entered.
  // kReady: a resume event is already queued; suspend() throws on return.
}

void Simulator::resume(Process& process) {
  if (process.state_ == Process::State::kFinished) return;
  if (process.state_ != Process::State::kBlocked && process.state_ != Process::State::kCreated) {
    throw SimError(util::format("resume: process '{}' is not blocked", process.name_));
  }
  process.state_ = Process::State::kReady;
  // The state re-check mirrors the spawn event: shutdown() can finish the
  // process between scheduling and firing, and run()-after-shutdown must
  // not hand the baton to a thread that already exited.
  schedule_now([this, &process] {
    if (process.state_ == Process::State::kReady) switch_to(process);
  });
}

void Simulator::switch_to(Process& process) {
  assert(current_ == nullptr && "switch_to from non-kernel context");
  assert(process.state_ == Process::State::kReady);
  current_ = &process;
  process.state_ = Process::State::kRunning;
  process.run_baton_.release();
  kernel_baton_.acquire();
  current_ = nullptr;
}

void Simulator::on_process_exit(Process& process) noexcept {
  process.state_ = Process::State::kFinished;
  process.cancel_.reset();
  if (tracer_) {
    tracer_->instant(obs::EventKind::kProcExit, obs::kMetaRank, now_.to_nanos(), process.id());
  }
}

std::size_t Simulator::live_processes() const noexcept {
  std::size_t n = 0;
  for (const auto& proc : processes_) {
    if (proc->state_ != Process::State::kFinished) ++n;
  }
  return n;
}

namespace {
/// splitmix64 finalizer: mixes one word into the trace hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

RunResult Simulator::run(TimePoint until, std::uint64_t max_events) {
  if (running_) throw SimError("run: reentrant call");
  running_ = true;
  // An event callback may throw (e.g. a deferred invariant violation);
  // reset the reentrancy flag on every exit path so the simulator stays
  // usable for inspection and teardown.
  struct RunningGuard {
    bool* flag;
    ~RunningGuard() { *flag = false; }
  } guard{&running_};
  stop_requested_ = false;
  RunResult result;
  while (true) {
    if (stop_requested_) { result.reason = StopReason::kStopped; break; }
    if (heap_.empty()) {
      result.reason = live_processes() > 0 ? StopReason::kDeadlock : StopReason::kIdle;
      break;
    }
    if (result.events_executed >= max_events) { result.reason = StopReason::kEventLimit; break; }
    const HeapEntry top = heap_[0];
    if (top.time > until) { result.reason = StopReason::kTimeLimit; break; }
    heap_pop_top();
    EventRec& rec = pool_[top.slot];
    if (rec.cancelled) {
      // Dead entry that compaction had not reclaimed yet: discard without
      // advancing time or touching the trace hash.
      assert(dead_in_heap_ > 0);
      --dead_in_heap_;
      release_record(top.slot);
      continue;
    }
    now_ = top.time;
    ++result.events_executed;
    ++events_executed_;
    trace_hash_ = mix64(trace_hash_ ^ static_cast<std::uint64_t>(now_.to_nanos()) ^ (top.seq << 1));
    InlineFn fn = std::move(rec.fn);
    // Recycle the record BEFORE invoking: handles to this event report
    // !pending() (the seq tag is retired) and cancel() is a no-op from
    // inside its own callback. NB: `rec` must not be touched after this —
    // the callback may schedule and grow the pool.
    release_record(top.slot);
    fn();
  }
  result.end_time = now_;
  CHK_DEBUG("des", "run finished: {} at {} after {} events", to_string(result.reason),
            now_.str(), result.events_executed);
  return result;
}

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Simulator& sim, std::uint64_t id, std::string name, ProcessFn body)
    : sim_(&sim),
      id_(id),
      name_(std::move(name)),
      thread_([this, fn = std::move(body)]() mutable { thread_main(std::move(fn)); }) {}

Process::~Process() = default;

void Process::thread_main(ProcessFn body) noexcept {
  run_baton_.acquire();  // wait for the first dispatch
  if (!killed_) {
    try {
      body(*this);
    } catch (const ProcessKilled&) {
      // normal teardown path
    } catch (const std::exception& e) {
      error_ = e.what();
      CHK_ERROR("des", "process '{}' died with exception: {}", name_, error_);
    } catch (...) {
      error_ = "unknown exception";
      CHK_ERROR("des", "process '{}' died with unknown exception", name_);
    }
  }
  sim_->on_process_exit(*this);
  sim_->kernel_baton_.release();  // final yield; thread ends here
}

void Process::check_in_body() const {
  if (sim_->current() != this) {
    throw SimError(util::format(
        "blocking primitive for process '{}' called from outside its body", name_));
  }
}

void Process::suspend(InlineFn cancel) {
  check_in_body();
  cancel_ = std::move(cancel);
  state_ = State::kBlocked;
  sim_->kernel_baton_.release();
  run_baton_.acquire();
  cancel_.reset();
  state_ = State::kRunning;
  if (killed_) throw ProcessKilled{};
}

void Process::delay(Duration d) {
  check_in_body();
  auto handle = sim_->schedule_after(d, [this] { sim_->resume(*this); });
  suspend([handle]() mutable { handle.cancel(); });
}

void Process::yield() { delay(Duration::zero()); }

}  // namespace chk::des
