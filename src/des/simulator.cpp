#include "des/simulator.hpp"

#include <cassert>
#include <utility>

#include "des/process.hpp"
#include "util/logging.hpp"

namespace chk::des {

std::string_view to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kIdle: return "idle";
    case StopReason::kDeadlock: return "deadlock";
    case StopReason::kTimeLimit: return "time-limit";
    case StopReason::kEventLimit: return "event-limit";
    case StopReason::kStopped: return "stopped";
  }
  return "?";
}

Simulator::Simulator() = default;

Simulator::~Simulator() { shutdown(); }

void Simulator::shutdown() noexcept {
  // Tear down any processes that are still alive: wake each with the kill
  // flag set so its stack unwinds (running destructors) and its thread
  // exits. The baton protocol keeps this serialized.
  for (auto& proc : processes_) {
    if (proc->state_ == Process::State::kFinished) continue;
    proc->killed_ = true;
    // Unhook a parked process from its wait list. A kReady process was
    // already removed by its waker (only the resume event is pending), so
    // its cancel callback is stale — and the wait list it names may be
    // gone by now; drop it without running it, exactly as kill() does.
    if (proc->state_ == Process::State::kBlocked && proc->cancel_) {
      auto cancel = std::move(proc->cancel_);
      proc->cancel_ = nullptr;
      cancel();
    }
    proc->cancel_ = nullptr;
    proc->run_baton_.release();
    kernel_baton_.acquire();  // wait for the thread to unwind & yield back
  }
  // jthread members join in Process destructors (or immediately here for
  // explicit shutdown: a finished thread joins without blocking).
}

EventHandle Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw SimError(util::format("schedule_at: {} is in the past (now={})", when.str(), now_.str()));
  }
  auto event = std::make_shared<EventHandle::Event>();
  event->time = when;
  event->seq = next_seq_++;
  event->fn = std::move(fn);
  EventHandle handle{event};
  queue_.push(QueueEntry{std::move(event)});
  return handle;
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) throw SimError("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

Process& Simulator::spawn(std::string name, ProcessFn body) {
  return spawn_at(now_, std::move(name), std::move(body));
}

Process& Simulator::spawn_at(TimePoint start, std::string name, ProcessFn body) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, processes_.size(), std::move(name), std::move(body)));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  if (tracer_) {
    tracer_->instant(obs::EventKind::kProcSpawn, obs::kMetaRank, start.to_nanos(), ref.id());
  }
  schedule_at(start, [this, &ref] {
    if (ref.state_ == Process::State::kCreated) {
      ref.state_ = Process::State::kReady;
      switch_to(ref);
    }
  });
  return ref;
}

void Simulator::kill(Process& process) {
  if (process.state_ == Process::State::kFinished || process.killed_) return;
  process.killed_ = true;
  if (current_ == &process) throw ProcessKilled{};  // self-kill unwinds now
  if (process.state_ == Process::State::kBlocked) {
    if (process.cancel_) {
      auto cancel = std::move(process.cancel_);
      process.cancel_ = nullptr;
      cancel();
    }
    resume(process);
  }
  // kCreated: its start event notices the kill when the body is entered.
  // kReady: a resume event is already queued; suspend() throws on return.
}

void Simulator::resume(Process& process) {
  if (process.state_ == Process::State::kFinished) return;
  if (process.state_ != Process::State::kBlocked && process.state_ != Process::State::kCreated) {
    throw SimError(util::format("resume: process '{}' is not blocked", process.name_));
  }
  process.state_ = Process::State::kReady;
  schedule_now([this, &process] { switch_to(process); });
}

void Simulator::switch_to(Process& process) {
  assert(current_ == nullptr && "switch_to from non-kernel context");
  assert(process.state_ == Process::State::kReady);
  current_ = &process;
  process.state_ = Process::State::kRunning;
  process.run_baton_.release();
  kernel_baton_.acquire();
  current_ = nullptr;
}

void Simulator::on_process_exit(Process& process) noexcept {
  process.state_ = Process::State::kFinished;
  process.cancel_ = nullptr;
  if (tracer_) {
    tracer_->instant(obs::EventKind::kProcExit, obs::kMetaRank, now_.to_nanos(), process.id());
  }
}

std::size_t Simulator::live_processes() const noexcept {
  std::size_t n = 0;
  for (const auto& proc : processes_) {
    if (proc->state_ != Process::State::kFinished) ++n;
  }
  return n;
}

namespace {
/// splitmix64 finalizer: mixes one word into the trace hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

RunResult Simulator::run(TimePoint until, std::uint64_t max_events) {
  if (running_) throw SimError("run: reentrant call");
  running_ = true;
  // An event callback may throw (e.g. a deferred invariant violation);
  // reset the reentrancy flag on every exit path so the simulator stays
  // usable for inspection and teardown.
  struct RunningGuard {
    bool* flag;
    ~RunningGuard() { *flag = false; }
  } guard{&running_};
  stop_requested_ = false;
  RunResult result;
  while (true) {
    if (stop_requested_) { result.reason = StopReason::kStopped; break; }
    if (queue_.empty()) {
      result.reason = live_processes() > 0 ? StopReason::kDeadlock : StopReason::kIdle;
      break;
    }
    if (result.events_executed >= max_events) { result.reason = StopReason::kEventLimit; break; }
    auto entry = queue_.top();
    if (entry.event->time > until) { result.reason = StopReason::kTimeLimit; break; }
    queue_.pop();
    if (entry.event->cancelled) continue;
    now_ = entry.event->time;
    ++result.events_executed;
    ++events_executed_;
    trace_hash_ = mix64(trace_hash_ ^ static_cast<std::uint64_t>(now_.to_nanos()) ^
                        (entry.event->seq << 1));
    auto fn = std::move(entry.event->fn);
    entry.event->cancelled = true;  // mark consumed so handles report !pending
    fn();
  }
  result.end_time = now_;
  CHK_DEBUG("des", "run finished: {} at {} after {} events", to_string(result.reason),
            now_.str(), result.events_executed);
  return result;
}

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Simulator& sim, std::uint64_t id, std::string name, ProcessFn body)
    : sim_(&sim),
      id_(id),
      name_(std::move(name)),
      thread_([this, fn = std::move(body)]() mutable { thread_main(std::move(fn)); }) {}

Process::~Process() = default;

void Process::thread_main(ProcessFn body) noexcept {
  run_baton_.acquire();  // wait for the first dispatch
  if (!killed_) {
    try {
      body(*this);
    } catch (const ProcessKilled&) {
      // normal teardown path
    } catch (const std::exception& e) {
      error_ = e.what();
      CHK_ERROR("des", "process '{}' died with exception: {}", name_, error_);
    } catch (...) {
      error_ = "unknown exception";
      CHK_ERROR("des", "process '{}' died with unknown exception", name_);
    }
  }
  sim_->on_process_exit(*this);
  sim_->kernel_baton_.release();  // final yield; thread ends here
}

void Process::check_in_body() const {
  if (sim_->current() != this) {
    throw SimError(util::format(
        "blocking primitive for process '{}' called from outside its body", name_));
  }
}

void Process::suspend(std::function<void()> cancel) {
  check_in_body();
  cancel_ = std::move(cancel);
  state_ = State::kBlocked;
  sim_->kernel_baton_.release();
  run_baton_.acquire();
  cancel_ = nullptr;
  state_ = State::kRunning;
  if (killed_) throw ProcessKilled{};
}

void Process::delay(Duration d) {
  check_in_body();
  auto handle = sim_->schedule_after(d, [this] { sim_->resume(*this); });
  suspend([handle]() mutable { handle.cancel(); });
}

void Process::yield() { delay(Duration::zero()); }

}  // namespace chk::des
