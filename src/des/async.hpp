// Bridging callback-style completion (FifoServer, Network) to blocking
// process style, safely across process kills.
#pragma once

#include <functional>
#include <memory>

#include "des/process.hpp"
#include "des/simulator.hpp"

namespace chk::des {

/// Completion token: the async operation calls `operator()` exactly once
/// (in kernel context); the waiting process parks until then. If the
/// waiter is killed while parked, the late completion is a safe no-op —
/// the shared state outlives the waiter's stack frame.
class Completion {
 public:
  explicit Completion(Simulator& sim)
      : state_(std::make_shared<State>()), sim_(&sim) {}

  /// The callback to hand to the async operation. Copyable.
  [[nodiscard]] std::function<void()> callback() const {
    auto state = state_;
    Simulator* sim = sim_;
    return [state, sim] {
      state->fired = true;
      if (state->waiter != nullptr) {
        Process* waiter = state->waiter;
        state->waiter = nullptr;
        sim->wake(*waiter);
      }
    };
  }

  /// Block `self` until the callback has fired. Throws ProcessKilled if
  /// the process is killed first.
  void await(Process& self) {
    while (!state_->fired) {
      state_->waiter = &self;
      auto state = state_;
      self.suspend([state] { state->waiter = nullptr; });
    }
  }

  [[nodiscard]] bool fired() const noexcept { return state_->fired; }

 private:
  struct State {
    bool fired = false;
    Process* waiter = nullptr;
  };
  std::shared_ptr<State> state_;
  Simulator* sim_;
};

}  // namespace chk::des
