// Discrete-event simulation kernel.
//
// The Simulator owns a totally ordered event queue keyed by (time, sequence
// number) — equal-time events run in schedule order, so runs with the same
// seed are bit-identical. Simulated processes (see process.hpp) are backed
// by real threads, but the kernel hands execution to exactly one thread at
// a time through binary semaphores; there is therefore never concurrent
// access to simulator state and the simulation is deterministic.
//
// Event storage is built for raw events/sec (the kernel is the hot path of
// every 256+-rank sweep):
//
//   * Event records live in a pool (std::vector slab) recycled through a
//     freelist — no per-event heap allocation, no reference counting. A
//     record is identified by (slot, seq): the slot indexes the pool, the
//     schedule-order sequence number doubles as a generation tag, so a
//     stale EventHandle can never alias a recycled slot (seq values are
//     never reused).
//   * Callbacks are stored in InlineFn, a small-buffer-optimized move-only
//     function: the common capture shapes (this + a few words) stay inline
//     in the record; only oversized captures fall back to the heap.
//   * The ready queue is a hand-rolled binary min-heap of 24-byte POD
//     entries (time, seq, slot). Comparisons touch only the heap vector —
//     never the records — so sift operations stay in cache.
//   * Cancelled events are marked dead in place (their callback is
//     destroyed eagerly, releasing captured resources immediately) and
//     reclaimed in bulk: when dead entries are at least half the heap and
//     above a fixed floor, the heap is compacted and re-heapified. Pop
//     order is a function of the unique (time, seq) keys alone, so
//     compaction can never perturb the schedule — it only bounds memory.
//     Without it, timer-heavy protocols (the transport cancels and re-arms
//     an RTO per cumulative ack) grow the heap with dead entries that
//     would otherwise only be discarded at their distant fire time.
#pragma once

#include <cassert>
#include <cstdint>
#include "util/format.hpp"
#include <functional>
#include <memory>
#include <new>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "des/time.hpp"
#include "obs/tracer.hpp"

namespace chk::des {

class Process;
class Simulator;
using ProcessFn = std::function<void(Process&)>;

/// Thrown inside a simulated process when it has been killed (failure
/// injection, recovery restart, or simulator teardown). Process bodies may
/// let it propagate; the kernel catches it at the process boundary.
struct ProcessKilled {};

/// Raised on structural misuse of the kernel (e.g. blocking call from the
/// kernel context). Always a programming error, never a simulation outcome.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only callable with small-buffer optimization, the kernel's event
/// callback type. Captures up to kInlineBytes (and nothrow-movable) are
/// stored inline — scheduling such a callback performs zero heap
/// allocations. Larger captures are boxed on the heap, same as
/// std::function. Conversion from any void() callable is implicit so call
/// sites read like std::function call sites.
class InlineFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor, bugprone-forwarding-reference-overload)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kBoxedOps<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  /// Destroy the held callable (releasing its captures) and become empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr && "invoking empty InlineFn");
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kBoxedOps{
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); }};

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Cancelable handle to a scheduled event. Copyable and cheap (two words +
/// a pointer, no reference counting): validity is checked against the
/// event's never-reused sequence number, so a handle to a consumed or
/// recycled event record simply reports !pending().
///
/// Semantics, pinned by des_test:
///   * While the event sits in the queue: pending() is true; cancel()
///     marks it dead (idempotent) and immediately destroys its callback.
///   * DURING the event's own callback the event is already consumed:
///     pending() returns false and cancel() is a no-op. A callback that
///     re-arms itself must use the handle returned by the new schedule
///     call, not its own stale handle.
///   * After the callback (or after cancel()): pending() stays false.
///
/// Lifetime: a handle is a view into its Simulator. Querying or cancelling
/// through a handle after the Simulator is destroyed is undefined;
/// destroying the handle itself is always safe. (Every wait-list owner in
/// this tree is torn down before the Simulator, so this never bites in
/// practice.)
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event has neither run nor been cancelled.
  [[nodiscard]] inline bool pending() const noexcept;
  /// Cancel if still pending; idempotent.
  inline void cancel() noexcept;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t seq) noexcept
      : sim_(sim), slot_(slot), seq_(seq) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

/// Why Simulator::run returned.
enum class StopReason {
  kIdle,        ///< event queue drained (all processes finished or blocked forever)
  kDeadlock,    ///< queue drained but live processes remain blocked
  kTimeLimit,   ///< reached the requested time horizon
  kEventLimit,  ///< safety valve: too many events
  kStopped,     ///< Simulator::stop() was called
};

std::string_view to_string(StopReason reason) noexcept;

struct RunResult {
  StopReason reason = StopReason::kIdle;
  TimePoint end_time;
  std::uint64_t events_executed = 0;
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// Order-sensitive hash over every executed event's (time, seq). Two runs
  /// of the same model with the same seed must produce identical hashes —
  /// the determinism invariant the verify/ subsystem checks. Cancelled
  /// events never execute, so neither cancellation timing nor heap
  /// compaction can influence the hash.
  [[nodiscard]] std::uint64_t trace_hash() const noexcept { return trace_hash_; }

  // -- queue introspection (all deterministic) -------------------------------

  /// Entries currently in the queue, cancelled ones included.
  [[nodiscard]] std::size_t queue_size() const noexcept { return heap_.size(); }
  /// High-water mark of queue_size() over the simulator's lifetime. With
  /// compaction this stays O(live events), not O(cancellation history).
  [[nodiscard]] std::size_t queue_peak() const noexcept { return queue_peak_; }
  /// Cancelled entries awaiting reclamation (pop or compaction).
  [[nodiscard]] std::uint64_t dead_events() const noexcept { return dead_in_heap_; }
  /// Scheduled events that have neither run nor been cancelled.
  [[nodiscard]] std::size_t live_events() const noexcept {
    return heap_.size() - static_cast<std::size_t>(dead_in_heap_);
  }
  /// Bulk dead-entry reclamations performed so far.
  [[nodiscard]] std::uint64_t compactions() const noexcept { return compactions_; }

  /// Schedule a callback. Callbacks run in kernel context: they must not
  /// block (use a process for blocking behaviour). Scheduling in the past
  /// is an error; scheduling at the current instant runs after all events
  /// already queued for that instant.
  EventHandle schedule_at(TimePoint when, InlineFn fn);
  EventHandle schedule_after(Duration delay, InlineFn fn);
  EventHandle schedule_now(InlineFn fn) { return schedule_after(Duration::zero(), std::move(fn)); }

  /// Create a simulated process whose body starts executing at `start`
  /// (default: the current instant). The Simulator owns the Process; the
  /// returned reference is valid for the Simulator's lifetime.
  Process& spawn(std::string name, ProcessFn body);
  Process& spawn_at(TimePoint start, std::string name, ProcessFn body);

  /// Kill a process: if blocked, it is woken immediately and ProcessKilled
  /// is thrown at its suspension point; if it has not started, it never
  /// runs. Safe to call on finished processes (no-op). Self-kill throws
  /// ProcessKilled directly.
  void kill(Process& process);

  /// Run until the queue drains, `until` is reached, `max_events` have run,
  /// or stop() is called. May be called repeatedly to continue.
  RunResult run(TimePoint until = TimePoint::max(),
                std::uint64_t max_events = std::uint64_t{1} << 62);

  /// Kill every live process and join its thread (stacks unwind through
  /// their RAII cleanups NOW, while the objects they reference are still
  /// alive). Call before destroying any object a process might touch; the
  /// destructor runs this as a backstop. Idempotent, and must only be
  /// called from kernel context (never from inside a process body).
  void shutdown() noexcept;

  /// Request run() to return after the current event completes. Callable
  /// from kernel callbacks or from process context.
  void stop() noexcept { stop_requested_ = true; }

  /// The process currently executing, or nullptr in kernel context.
  [[nodiscard]] Process* current() const noexcept { return current_; }

  /// Wake a blocked process (schedules its resumption at the current
  /// instant). For use by synchronization-primitive implementations after
  /// removing the process from their wait list; the process must be parked
  /// in Process::suspend. Throws SimError otherwise.
  void wake(Process& process) { resume(process); }

  /// Number of spawned processes that have not finished.
  [[nodiscard]] std::size_t live_processes() const noexcept;

  /// All processes ever spawned (finished ones included).
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const noexcept {
    return processes_;
  }

  /// Attach (or detach, with nullptr) an event tracer. Emission is
  /// observation only: it never schedules events or advances time, so the
  /// simulated schedule — and trace_hash() — is identical with or without
  /// a tracer attached.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  friend class EventHandle;
  friend class Process;

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Sentinel seq for pool records not holding a scheduled event (free, or
  /// currently executing). next_seq_ counts from 0 and can never reach it.
  static constexpr std::uint64_t kFreeSeq = ~std::uint64_t{0};
  /// Compaction floor: below this many dead entries, pop-time discard is
  /// cheaper than a sweep.
  static constexpr std::uint64_t kCompactMinDead = 64;

  /// Pooled event record. `seq` doubles as the generation tag: kFreeSeq
  /// while the record is off-queue, the event's unique sequence number
  /// while scheduled.
  struct EventRec {
    TimePoint time;
    std::uint64_t seq = kFreeSeq;
    InlineFn fn;
    std::uint32_t next_free = kNilSlot;
    bool cancelled = false;
  };

  /// Heap node: the full ordering key plus the record slot. Comparisons
  /// never touch the pool.
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Schedules a context switch into `process` at the current instant.
  // Precondition: the process is blocked or not yet started.
  void resume(Process& process);
  // Transfers execution to the process thread and waits for it to yield
  // back. Called only from kernel context.
  void switch_to(Process& process);
  // Called on the process thread as its final act before exiting.
  void on_process_exit(Process& process) noexcept;

  // -- event pool + heap -----------------------------------------------------
  [[nodiscard]] std::uint32_t alloc_record();
  void release_record(std::uint32_t slot) noexcept;
  [[nodiscard]] bool event_pending(std::uint32_t slot, std::uint64_t seq) const noexcept {
    return slot < pool_.size() && pool_[slot].seq == seq && !pool_[slot].cancelled;
  }
  void cancel_event(std::uint32_t slot, std::uint64_t seq) noexcept;
  void heap_push(HeapEntry entry);
  void heap_pop_top() noexcept;
  void sift_down(std::size_t hole) noexcept;
  void compact() noexcept;

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t trace_hash_ = 0x9e3779b97f4a7c15ULL;
  bool running_ = false;
  bool stop_requested_ = false;
  bool compacting_ = false;
  Process* current_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  std::vector<EventRec> pool_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t dead_in_heap_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t queue_peak_ = 0;

  std::vector<std::unique_ptr<Process>> processes_;
  std::binary_semaphore kernel_baton_{0};  // process -> kernel
};

inline bool EventHandle::pending() const noexcept {
  return sim_ != nullptr && sim_->event_pending(slot_, seq_);
}

inline void EventHandle::cancel() noexcept {
  if (sim_ != nullptr) sim_->cancel_event(slot_, seq_);
}

}  // namespace chk::des
