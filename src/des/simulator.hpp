// Discrete-event simulation kernel.
//
// The Simulator owns a totally ordered event queue keyed by (time, sequence
// number) — equal-time events run in schedule order, so runs with the same
// seed are bit-identical. Simulated processes (see process.hpp) are backed
// by real threads, but the kernel hands execution to exactly one thread at
// a time through binary semaphores; there is therefore never concurrent
// access to simulator state and the simulation is deterministic.
#pragma once

#include <cstdint>
#include "util/format.hpp"
#include <functional>
#include <memory>
#include <queue>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <vector>

#include "des/time.hpp"
#include "obs/tracer.hpp"

namespace chk::des {

class Process;
using ProcessFn = std::function<void(Process&)>;

/// Thrown inside a simulated process when it has been killed (failure
/// injection, recovery restart, or simulator teardown). Process bodies may
/// let it propagate; the kernel catches it at the process boundary.
struct ProcessKilled {};

/// Raised on structural misuse of the kernel (e.g. blocking call from the
/// kernel context). Always a programming error, never a simulation outcome.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cancelable handle to a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event has neither run nor been cancelled.
  [[nodiscard]] bool pending() const noexcept {
    const auto ev = event_.lock();
    return ev != nullptr && !ev->cancelled;
  }
  /// Cancel if still pending; idempotent.
  void cancel() noexcept {
    if (const auto ev = event_.lock()) ev->cancelled = true;
  }

 private:
  friend class Simulator;
  struct Event {
    TimePoint time;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool cancelled = false;
  };
  explicit EventHandle(std::weak_ptr<Event> event) : event_(std::move(event)) {}
  std::weak_ptr<Event> event_;
};

/// Why Simulator::run returned.
enum class StopReason {
  kIdle,        ///< event queue drained (all processes finished or blocked forever)
  kDeadlock,    ///< queue drained but live processes remain blocked
  kTimeLimit,   ///< reached the requested time horizon
  kEventLimit,  ///< safety valve: too many events
  kStopped,     ///< Simulator::stop() was called
};

std::string_view to_string(StopReason reason) noexcept;

struct RunResult {
  StopReason reason = StopReason::kIdle;
  TimePoint end_time;
  std::uint64_t events_executed = 0;
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// Order-sensitive hash over every executed event's (time, seq). Two runs
  /// of the same model with the same seed must produce identical hashes —
  /// the determinism invariant the verify/ subsystem checks.
  [[nodiscard]] std::uint64_t trace_hash() const noexcept { return trace_hash_; }

  /// Schedule a callback. Callbacks run in kernel context: they must not
  /// block (use a process for blocking behaviour). Scheduling in the past
  /// is an error; scheduling at the current instant runs after all events
  /// already queued for that instant.
  EventHandle schedule_at(TimePoint when, std::function<void()> fn);
  EventHandle schedule_after(Duration delay, std::function<void()> fn);
  EventHandle schedule_now(std::function<void()> fn) { return schedule_after(Duration::zero(), std::move(fn)); }

  /// Create a simulated process whose body starts executing at `start`
  /// (default: the current instant). The Simulator owns the Process; the
  /// returned reference is valid for the Simulator's lifetime.
  Process& spawn(std::string name, ProcessFn body);
  Process& spawn_at(TimePoint start, std::string name, ProcessFn body);

  /// Kill a process: if blocked, it is woken immediately and ProcessKilled
  /// is thrown at its suspension point; if it has not started, it never
  /// runs. Safe to call on finished processes (no-op). Self-kill throws
  /// ProcessKilled directly.
  void kill(Process& process);

  /// Run until the queue drains, `until` is reached, `max_events` have run,
  /// or stop() is called. May be called repeatedly to continue.
  RunResult run(TimePoint until = TimePoint::max(),
                std::uint64_t max_events = std::uint64_t{1} << 62);

  /// Kill every live process and join its thread (stacks unwind through
  /// their RAII cleanups NOW, while the objects they reference are still
  /// alive). Call before destroying any object a process might touch; the
  /// destructor runs this as a backstop. Idempotent.
  void shutdown() noexcept;

  /// Request run() to return after the current event completes. Callable
  /// from kernel callbacks or from process context.
  void stop() noexcept { stop_requested_ = true; }

  /// The process currently executing, or nullptr in kernel context.
  [[nodiscard]] Process* current() const noexcept { return current_; }

  /// Wake a blocked process (schedules its resumption at the current
  /// instant). For use by synchronization-primitive implementations after
  /// removing the process from their wait list; the process must be parked
  /// in Process::suspend. Throws SimError otherwise.
  void wake(Process& process) { resume(process); }

  /// Number of spawned processes that have not finished.
  [[nodiscard]] std::size_t live_processes() const noexcept;

  /// All processes ever spawned (finished ones included).
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const noexcept {
    return processes_;
  }

  /// Attach (or detach, with nullptr) an event tracer. Emission is
  /// observation only: it never schedules events or advances time, so the
  /// simulated schedule — and trace_hash() — is identical with or without
  /// a tracer attached.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  friend class Process;

  // Schedules a context switch into `process` at the current instant.
  // Precondition: the process is blocked or not yet started.
  void resume(Process& process);
  // Transfers execution to the process thread and waits for it to yield
  // back. Called only from kernel context.
  void switch_to(Process& process);
  // Called on the process thread as its final act before exiting.
  void on_process_exit(Process& process) noexcept;

  struct QueueEntry {
    std::shared_ptr<EventHandle::Event> event;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) noexcept {
      if (a.event->time != b.event->time) return a.event->time > b.event->time;
      return a.event->seq > b.event->seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t trace_hash_ = 0x9e3779b97f4a7c15ULL;
  bool running_ = false;
  bool stop_requested_ = false;
  Process* current_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::binary_semaphore kernel_baton_{0};  // process -> kernel
};

}  // namespace chk::des
