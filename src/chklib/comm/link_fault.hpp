// Configurable unreliable-link model.
//
// The paper's CHK-LIB promises reliable FIFO channels on top of raw Parix
// links; this model supplies the raw-link misbehavior those channels must
// survive: per-frame drop, duplication, corruption and extra queueing
// delay, each an independent Bernoulli draw from a dedicated seed-stable
// RNG stream (same seed, same fault schedule, same trace — the campaign
// discipline of src/faultsim/injector.*). The model judges every frame the
// network delivers, including transport-layer acks and retransmissions;
// when no model is installed the comm layer takes its historical
// fault-free path, so the feature is zero-overhead when disabled.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace chk::chklib {

struct LinkFaultConfig {
  /// Per-frame loss probability in [0, 1).
  double drop = 0;
  /// Per-frame duplication probability in [0, 1): a second, clean copy of
  /// the frame arrives `dup_lag_mean_s` (exponential) later.
  double duplicate = 0;
  /// Per-frame payload-corruption probability in [0, 1): the frame arrives
  /// with flipped bits. With the reliable transport installed the checksum
  /// catches it (and the retransmit recovers it); without, the frame is
  /// discarded as a link-level CRC failure — i.e. it behaves as a loss.
  double corrupt = 0;
  /// Per-frame extra-delay probability in [0, 1); a delayed frame arrives
  /// `delay_mean_s` (exponential) later, which can reorder the raw link.
  double delay_prob = 0;
  double delay_mean_s = 1e-3;
  double dup_lag_mean_s = 5e-4;
  /// Stream selector forked off the experiment seed, so one experiment
  /// config hosts many campaign runs differing only in the link weather.
  std::uint64_t stream = 0;
  /// Timed partition windows isolating one rank: every frame touching
  /// `partition_rank` (as physical sender or receiver) is dropped while a
  /// window is active. Window k covers
  /// [k * partition_period_s, k * partition_period_s + partition_duration_s);
  /// partition_duration_s == 0 disables. Purely a function of simulated
  /// time: the partition check consumes no RNG draws of its own (the
  /// drop/dup/corrupt/delay stream advances only for frames that actually
  /// reach judge()).
  int partition_rank = -1;
  double partition_period_s = 0;
  double partition_duration_s = 0;

  /// True when any fault can actually occur.
  [[nodiscard]] bool enabled() const noexcept {
    return drop > 0 || duplicate > 0 || corrupt > 0 || delay_prob > 0 ||
           partition_enabled();
  }
  [[nodiscard]] bool partition_enabled() const noexcept {
    return partition_rank >= 0 && partition_duration_s > 0 &&
           partition_period_s > 0;
  }
  /// Throws std::invalid_argument on out-of-range probabilities (outside
  /// [0, 1)) or negative delays.
  void validate() const;
};

class LinkFaultModel {
 public:
  /// The model's ruling on one frame arrival. Draw order is fixed
  /// (drop, duplicate, corrupt, delay) regardless of outcomes, so the
  /// stream stays aligned across configs that toggle individual faults.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    std::uint64_t corrupt_mask = 0;   ///< nonzero iff corrupt
    std::int64_t dup_lag_ns = 0;      ///< lag of the duplicate copy
    std::int64_t extra_delay_ns = 0;  ///< 0 = deliver now
  };

  LinkFaultModel(const LinkFaultConfig& config, util::Rng rng)
      : cfg_(config), rng_(rng) {
    cfg_.validate();
  }

  [[nodiscard]] Verdict judge();

  /// True when a frame physically travelling a->b at time `now_ns` falls
  /// inside an active partition window (either endpoint isolated). Pure
  /// predicate: consumes no RNG draws. Callers check this *before* judge()
  /// and count the drop via note_partition_drop().
  [[nodiscard]] bool partitioned(std::size_t a, std::size_t b,
                                 std::int64_t now_ns) const noexcept;
  void note_partition_drop() noexcept { ++partition_drops_; }

  [[nodiscard]] const LinkFaultConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return duplicates_; }
  [[nodiscard]] std::uint64_t corrupted() const noexcept { return corrupted_; }
  [[nodiscard]] std::uint64_t delayed() const noexcept { return delayed_; }
  [[nodiscard]] std::uint64_t partition_drops() const noexcept {
    return partition_drops_;
  }
  void reset_counters() noexcept {
    drops_ = duplicates_ = corrupted_ = delayed_ = partition_drops_ = 0;
  }

 private:
  LinkFaultConfig cfg_;
  util::Rng rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t partition_drops_ = 0;
};

}  // namespace chk::chklib
