// Per-node application freeze gate.
//
// Checkpointing schemes block the application process for some window (the
// whole stable-storage write for Coord_NB/Indep; only the main-memory copy
// for the *_M variants; until global commit for the blocking ablation).
// The gate implements that window: while frozen, every application-level
// operation (compute, send, recv, collective) parks at its entry point.
// Time spent parked is accounted as checkpoint-induced blocking.
#pragma once

#include <deque>

#include "des/process.hpp"
#include "des/simulator.hpp"
#include "des/time.hpp"
#include "obs/tracer.hpp"

namespace chk::chklib {

class FreezeGate {
 public:
  explicit FreezeGate(des::Simulator& sim) : sim_(&sim) {}
  FreezeGate(const FreezeGate&) = delete;
  FreezeGate& operator=(const FreezeGate&) = delete;
  ~FreezeGate() {
    for (des::Process* proc : waiting_) proc->detach_cancel();
  }

  /// Application operations call this first; blocks while frozen.
  void enter(des::Process& self) {
    while (frozen_) {
      const des::TimePoint parked_at = sim_->now();
      waiting_.push_back(&self);
      self.suspend([this, &self] { std::erase(waiting_, &self); });
      blocked_time_ += sim_->now() - parked_at;
      if (tracer_) {
        tracer_->span(obs::EventKind::kFrozenStall, rank_, parked_at.to_nanos(),
                      sim_->now().to_nanos());
      }
    }
  }

  void freeze() noexcept {
    ++freeze_depth_;
    frozen_ = true;
  }

  void unfreeze() {
    if (freeze_depth_ > 0) --freeze_depth_;
    if (freeze_depth_ > 0) return;
    frozen_ = false;
    auto waiting = std::move(waiting_);
    waiting_.clear();
    for (des::Process* proc : waiting) sim_->wake(*proc);
  }

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// Recovery: clear any freeze left over from a round in flight when the
  /// failure struck. Waiters have already been killed with their processes.
  void reset() noexcept {
    freeze_depth_ = 0;
    frozen_ = false;
    waiting_.clear();
  }
  /// Total time application processes spent parked at this gate.
  [[nodiscard]] des::Duration blocked_time() const noexcept { return blocked_time_; }
  void reset_stats() noexcept { blocked_time_ = des::Duration::zero(); }

  void set_tracer(obs::Tracer* tracer, std::uint16_t rank) noexcept {
    tracer_ = tracer;
    rank_ = rank;
  }

 private:
  des::Simulator* sim_;
  obs::Tracer* tracer_ = nullptr;
  std::uint16_t rank_ = obs::kMetaRank;
  bool frozen_ = false;
  int freeze_depth_ = 0;
  std::deque<des::Process*> waiting_;
  des::Duration blocked_time_;
};

}  // namespace chk::chklib
