#include "chklib/comm/endpoint.hpp"

#include <cstring>
#include <utility>

#include "chklib/comm/comm_system.hpp"
#include "util/logging.hpp"

namespace chk::chklib {

Endpoint::Endpoint(CommSystem& system, Rank rank, xplorer::Node& node, des::Simulator& sim)
    : system_(&system), rank_(rank), node_(&node), sim_(&sim), gate_(sim), control_(sim) {}

void Endpoint::send(des::Process& self, Rank dst, int tag, std::vector<std::byte> payload) {
  gate_.enter(self);
  if (tracer_) {
    tracer_->instant(obs::EventKind::kMsgSend, static_cast<std::uint16_t>(rank_),
                     sim_->now().to_nanos(), payload.size(), static_cast<std::uint32_t>(dst));
  }
  Envelope env;
  env.src = rank_;
  env.dst = dst;
  env.tag = tag;
  env.seq = next_seq(dst);
  env.payload = std::move(payload);
  system_->transmit(self, std::move(env));
}

std::optional<Envelope> Endpoint::take_match(int src, int tag) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (matches(*it, src, tag)) {
      Envelope env = std::move(*it);
      pending_.erase(it);
      return env;
    }
  }
  return std::nullopt;
}

const Envelope* Endpoint::peek_match(int src, int tag) const {
  for (const auto& env : pending_) {
    if (matches(env, src, tag)) return &env;
  }
  return nullptr;
}

Envelope Endpoint::consume_match(des::Process& self, int src, int tag,
                                 std::int64_t wait_start_ns) {
  // Precondition: peek_match(src, tag) != nullptr.
  if (tracer_ && wait_start_ns >= 0) {
    tracer_->span(obs::EventKind::kRecvWait, static_cast<std::uint16_t>(rank_),
                  wait_start_ns, sim_->now().to_nanos());
  }
  // Charge the receive-side CPU cost while the message is still in the
  // pending queue: a checkpoint captured during this window must see
  // the message as channel state (it has not reached the application).
  node_->message_overhead(self, peek_match(src, tag)->payload.size());
  // From here to the return there is no suspension point: removal,
  // consumption bookkeeping and delivery hooks are atomic with respect
  // to checkpoint captures (which only happen at application-declared
  // safe points).
  auto env = take_match(src, tag);
  note_consumed(env->src, env->seq);
  if (auto* observer = system_->observer()) observer->on_consume(rank_, *env);
  if (auto* hooks = system_->hooks()) hooks->on_deliver(self, rank_, *env);
  ++messages_received_;
  return std::move(*env);
}

Envelope Endpoint::recv(des::Process& self, int src, int tag) {
  gate_.enter(self);
  std::int64_t wait_start_ns = -1;  // first suspension instant, if any
  for (;;) {
    if (peek_match(src, tag) != nullptr) {
      return consume_match(self, src, tag, wait_start_ns);
    }
    if (wait_start_ns < 0) wait_start_ns = sim_->now().to_nanos();
    recv_waiters_.push_back(&self);
    self.suspend([this, &self] { std::erase(recv_waiters_, &self); });
  }
}

std::optional<Envelope> Endpoint::recv_until(des::Process& self, des::TimePoint deadline,
                                             int src, int tag) {
  gate_.enter(self);
  std::int64_t wait_start_ns = -1;
  for (;;) {
    if (peek_match(src, tag) != nullptr) {
      return consume_match(self, src, tag, wait_start_ns);
    }
    if (sim_->now() >= deadline) {
      if (tracer_ && wait_start_ns >= 0) {
        tracer_->span(obs::EventKind::kRecvWait, static_cast<std::uint16_t>(rank_),
                      wait_start_ns, sim_->now().to_nanos());
      }
      return std::nullopt;
    }
    if (wait_start_ns < 0) wait_start_ns = sim_->now().to_nanos();
    recv_waiters_.push_back(&self);
    // Waiter-list membership <=> parked in the suspend below (deliver,
    // reinject and the kill-cancel callback all erase before waking), so
    // the timer may wake the process exactly when the erase succeeds. If
    // this process is killed first, the fired timer's erase finds nothing;
    // a same-address successor in the list is parked in a wake-tolerant
    // recv loop, so a spurious wake at worst re-checks and re-parks.
    des::EventHandle timer = sim_->schedule_at(deadline, [this, &self] {
      if (std::erase(recv_waiters_, &self) > 0) sim_->wake(self);
    });
    self.suspend([this, &self] { std::erase(recv_waiters_, &self); });
    timer.cancel();
  }
}

bool Endpoint::probe(int src, int tag) const {
  for (const auto& env : pending_) {
    if (matches(env, src, tag)) return true;
  }
  return false;
}

void Endpoint::deliver(Envelope env) {
  if (auto* observer = system_->observer()) observer->on_endpoint_arrival(env);
  if (already_consumed(env.src, env.seq)) {
    // A re-executed sender regenerated a message whose consumption is
    // already part of our restored state (an orphan of the recovery cut).
    ++duplicates_dropped_;
    if (auto* observer = system_->observer()) observer->on_duplicate_dropped(env);
    return;
  }
  if (auto* hooks = system_->hooks()) hooks->on_arrival(rank_, env);
  pending_.push_back(std::move(env));
  auto waiters = std::move(recv_waiters_);
  recv_waiters_.clear();
  for (des::Process* waiter : waiters) sim_->wake(*waiter);
}

std::vector<Envelope> Endpoint::pending_snapshot() const {
  return {pending_.begin(), pending_.end()};
}

void Endpoint::flush() {
  pending_.clear();
  control_.clear();
  if (auto* observer = system_->observer()) observer->on_flush(rank_);
}

void Endpoint::reinject(std::vector<Envelope> envelopes) {
  if (auto* observer = system_->observer()) observer->on_reinject(rank_, envelopes);
  // Restored channel-log messages precede anything the re-execution sends.
  pending_.insert(pending_.begin(), std::make_move_iterator(envelopes.begin()),
                  std::make_move_iterator(envelopes.end()));
  auto waiters = std::move(recv_waiters_);
  recv_waiters_.clear();
  for (des::Process* waiter : waiters) sim_->wake(*waiter);
}

void Endpoint::reset_seq() noexcept {
  send_seq_.clear();
  consumed_upto_.clear();
  consumed_extra_.clear();
}

void Endpoint::note_consumed(Rank src, std::uint64_t seq) {
  std::uint64_t& upto = consumed_upto_[src];
  if (seq == upto) {
    ++upto;
    // absorb any out-of-order consumptions that now form a prefix
    auto& extra = consumed_extra_[src];
    while (extra.erase(upto) > 0) ++upto;
  } else if (seq > upto) {
    consumed_extra_[src].insert(seq);
  }
  // seq < upto: duplicate consumption cannot happen (deliver() dedups).
}

bool Endpoint::already_consumed(Rank src, std::uint64_t seq) const {
  if (const auto it = consumed_upto_.find(src); it != consumed_upto_.end()) {
    if (seq < it->second) return true;
  }
  if (const auto it = consumed_extra_.find(src); it != consumed_extra_.end()) {
    return it->second.contains(seq);
  }
  return false;
}

ChannelSeqState Endpoint::seq_snapshot() const {
  ChannelSeqState state;
  for (const auto& [rank, seq] : send_seq_) state.send_next.push_back({rank, seq});
  for (const auto& [rank, seq] : consumed_upto_) state.consumed_upto.push_back({rank, seq});
  for (const auto& [rank, extras] : consumed_extra_) {
    for (std::uint64_t seq : extras) state.consumed_extra.push_back({rank, seq});
  }
  return state;
}

void Endpoint::restore_seq(const ChannelSeqState& state) {
  reset_seq();
  for (const auto& [rank, seq] : state.send_next) send_seq_[rank] = seq;
  for (const auto& [rank, seq] : state.consumed_upto) consumed_upto_[rank] = seq;
  for (const auto& [rank, seq] : state.consumed_extra) consumed_extra_[rank].insert(seq);
  if (auto* observer = system_->observer()) observer->on_restore_seq(rank_, state);
}

// ---------------------------------------------------------------------------
// Collectives: binomial trees over point-to-point messages. `vrank` is the
// rank rotated so the root maps to 0; tree edges connect vrank r to
// r +/- 2^k exactly as in the classic MPICH binomial algorithms.
// ---------------------------------------------------------------------------

namespace {

Rank physical(std::size_t vrank, Rank root, std::size_t n) {
  return static_cast<Rank>((vrank + root) % n);
}

std::size_t virtual_of(Rank rank, Rank root, std::size_t n) {
  return (rank + n - root) % n;
}

std::vector<std::byte> pack_doubles(const std::vector<double>& values) {
  std::vector<std::byte> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

std::vector<double> unpack_doubles(const std::vector<std::byte>& bytes) {
  std::vector<double> values(bytes.size() / sizeof(double));
  std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

}  // namespace

void Endpoint::barrier(des::Process& self) {
  const std::size_t n = system_->num_ranks();
  if (n <= 1) return;
  const std::size_t vrank = rank_;  // barrier is always rooted at 0
  // Gather phase (binomial fan-in to vrank 0).
  for (std::size_t mask = 1; mask < n; mask <<= 1) {
    if ((vrank & mask) != 0) {
      send(self, static_cast<Rank>(vrank - mask), kTagBarrierUp, {});
      break;
    }
    if (vrank + mask < n) {
      (void)recv(self, static_cast<int>(vrank + mask), kTagBarrierUp);
    }
  }
  // Release phase (binomial fan-out from vrank 0).
  std::size_t mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      (void)recv(self, static_cast<int>(vrank - mask), kTagBarrierDown);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < n) {
      send(self, static_cast<Rank>(vrank + mask), kTagBarrierDown, {});
    }
    mask >>= 1;
  }
}

std::vector<std::byte> Endpoint::broadcast(des::Process& self, Rank root,
                                           std::vector<std::byte> data) {
  const std::size_t n = system_->num_ranks();
  if (n <= 1) return data;
  const std::size_t vrank = virtual_of(rank_, root, n);
  std::size_t mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      data = recv(self, static_cast<int>(physical(vrank - mask, root, n)), kTagBcast).payload;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < n) {
      send(self, physical(vrank + mask, root, n), kTagBcast, data);
    }
    mask >>= 1;
  }
  return data;
}

namespace {

/// Element-wise binomial fan-in with an arbitrary combiner.
template <typename Combine>
std::vector<double> reduce_vec(Endpoint& ep, des::Process& self, std::size_t n, Rank rank,
                               Rank root, std::vector<double> values, Combine&& combine) {
  if (n <= 1) return values;
  const std::size_t vrank = virtual_of(rank, root, n);
  for (std::size_t mask = 1; mask < n; mask <<= 1) {
    if ((vrank & mask) != 0) {
      ep.send(self, physical(vrank - mask, root, n), Endpoint::kTagReduce,
              pack_doubles(values));
      break;
    }
    if (vrank + mask < n) {
      const auto partial = unpack_doubles(
          ep.recv(self, static_cast<int>(physical(vrank + mask, root, n)),
                  Endpoint::kTagReduce)
              .payload);
      for (std::size_t i = 0; i < values.size() && i < partial.size(); ++i) {
        values[i] = combine(values[i], partial[i]);
      }
    }
  }
  return values;
}

}  // namespace

std::vector<double> Endpoint::reduce_sum_vec(des::Process& self, Rank root,
                                             std::vector<double> values) {
  return reduce_vec(*this, self, system_->num_ranks(), rank_, root, std::move(values),
                    [](double a, double b) { return a + b; });
}

double Endpoint::reduce_sum(des::Process& self, Rank root, double value) {
  return reduce_sum_vec(self, root, {value})[0];
}

double Endpoint::reduce_min(des::Process& self, Rank root, double value) {
  return reduce_vec(*this, self, system_->num_ranks(), rank_, root, {value},
                    [](double a, double b) { return a < b ? a : b; })[0];
}

double Endpoint::allreduce_sum(des::Process& self, double value) {
  const double total = reduce_sum(self, 0, value);
  auto bytes = broadcast(self, 0, rank_ == 0 ? pack_doubles({total}) : std::vector<std::byte>{});
  return unpack_doubles(bytes)[0];
}

double Endpoint::allreduce_min(des::Process& self, double value) {
  const double best = reduce_min(self, 0, value);
  auto bytes = broadcast(self, 0, rank_ == 0 ? pack_doubles({best}) : std::vector<std::byte>{});
  return unpack_doubles(bytes)[0];
}

}  // namespace chk::chklib
