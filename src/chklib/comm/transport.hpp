// Reliable FIFO transport over unreliable links.
//
// CHK-LIB's protocols assume reliable FIFO channels (markers bound channel
// logging *because* no message is lost, duplicated or reordered —
// SRDS'92). This sublayer provides that guarantee over the raw link +
// LinkFaultModel: per-directed-link sequence numbers, cumulative acks,
// timeout-driven retransmission with exponential backoff, duplicate
// suppression and checksum verification. Application envelopes and
// control messages share ONE sequence space per (src, dst) link — the
// quiescence invariant needs channel markers FIFO-ordered with the app
// traffic they fence, so they must ride the same stream.
//
// Per-link sender: frames are stamped with the next sequence number,
// buffered until cumulatively acked, and retransmitted in bulk when the
// RTO fires (RTO doubles per expiry up to a cap and resets when the
// cumulative ack advances). Per-link receiver: in-order frames are handed
// up immediately; out-of-order frames wait in a reorder buffer (the gap
// opens a `retransmit_wait` span attributed to the receiving rank);
// duplicates are suppressed but re-acked (a lost ack must not wedge the
// sender); checksum mismatches are dropped silently — the retransmit
// recovers them. Every data frame triggers a cumulative ack; acks are
// unsequenced, unacked, and themselves subject to link faults.
//
// Datagram plane: send_datagram() puts a control message on the wire with
// no sequence number, no ack and no retransmission — delivered if it
// survives the link, silently gone otherwise. Heartbeat beacons ride this
// plane: a stale beacon is worthless (the next one is due in one period),
// and retransmitting it through the FIFO stream would head-of-line-block
// behind any stalled data frame, manufacturing multi-second false
// silences out of ordinary loss — exactly the artifact a failure detector
// must not see. Link faults (drop/duplicate/corrupt/partition) apply to
// datagrams like any other frame; corruption is caught by the checksum
// and the frame is simply lost.
//
// The transport is incarnation-agnostic: it delivers exactly-once FIFO
// frames and lets the hand-up callbacks (CommSystem) apply the recovery
// incarnation filter, exactly where the raw path applied it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "chklib/comm/envelope.hpp"
#include "chklib/comm/link_fault.hpp"
#include "des/simulator.hpp"
#include "obs/tracer.hpp"
#include "xplorer/network.hpp"

namespace chk::chklib {

struct TransportConfig {
  /// Initial retransmission timeout. The modelled mesh (1.7 MB/s links,
  /// 8 us latency) round-trips a control frame in well under 1 ms; 50 ms
  /// keeps spurious retransmits out of even deep checkpoint-traffic
  /// queues.
  des::Duration rto_initial = des::Duration::millis(50);
  /// Backoff cap: RTO doubles per expiry up to this.
  des::Duration rto_cap = des::Duration::secs(1);
};

struct TransportStats {
  std::uint64_t data_frames = 0;      ///< first transmissions (app + control)
  std::uint64_t datagrams_sent = 0;   ///< unsequenced fire-and-forget frames
  std::uint64_t retransmits = 0;      ///< frames re-sent on RTO expiry
  std::uint64_t dups_suppressed = 0;  ///< duplicate data frames discarded
  std::uint64_t corrupt_detected = 0; ///< checksum mismatches discarded
  std::uint64_t acks_sent = 0;
  /// RTO timer churn. Every cumulative-ack advance cancels the armed timer
  /// and (with frames still in flight) re-arms it, so under ack-heavy
  /// traffic `rto_cancelled` approaches one per ack — each a dead event
  /// the kernel's queue must reclaim. The pair exists so heap-bloat
  /// regression tests can bound the queue against the true live count.
  std::uint64_t rto_armed = 0;        ///< timer arms, initial + re-arms
  std::uint64_t rto_cancelled = 0;    ///< armed timers cancelled by an ack
};

/// Modelled wire size of a transport ack frame.
inline constexpr std::size_t kAckWireBytes = 16;
/// Modelled per-frame transport header (seq + cumulative ack + checksum).
inline constexpr std::size_t kTransportWireBytes = 16;

class Transport {
 public:
  using DeliverApp = std::function<void(Envelope)>;
  using DeliverControl = std::function<void(Rank dst, const ControlMsg&)>;
  /// Test hook: returns true to make the link swallow this control frame
  /// (applied per physical copy, so retransmissions are re-evaluated).
  using ControlDropFilter = std::function<bool(const ControlMsg&)>;

  Transport(des::Simulator& sim, xplorer::Network& network, TransportConfig config);
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  void set_deliver_app(DeliverApp fn) { deliver_app_ = std::move(fn); }
  void set_deliver_control(DeliverControl fn) { deliver_control_ = std::move(fn); }
  /// Attach the unreliable-link model (nullptr = perfect links; the
  /// transport is then pure overhead but still exactly-once FIFO).
  void set_fault_model(LinkFaultModel* faults) noexcept { faults_ = faults; }
  void set_control_drop_filter(ControlDropFilter filter) {
    drop_filter_ = std::move(filter);
  }
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Submit one application envelope for reliable in-order delivery.
  void send_app(Envelope env);
  /// Submit one control message for reliable in-order delivery.
  void send_control(Rank src, Rank dst, const ControlMsg& msg);
  /// Fire-and-forget: one unsequenced control frame, no ack, no
  /// retransmit. Survives the link or vanishes. For idempotent freshness
  /// signals (heartbeats) that must never head-of-line-block.
  void send_datagram(Rank src, Rank dst, const ControlMsg& msg);

  [[nodiscard]] const TransportStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  enum class FrameKind : std::uint8_t { kApp, kControl, kAck, kDatagram };

  /// One transport PDU. `src`/`dst` always name the DATA direction of the
  /// link; ack frames travel dst -> src.
  struct Frame {
    FrameKind kind = FrameKind::kApp;
    Rank src = 0;
    Rank dst = 0;
    std::uint64_t seq = 0;       ///< data frames: link sequence number
    std::uint64_t ack = 0;       ///< ack frames: receiver's rx_next
    std::uint64_t checksum = 0;
    /// Corruption target: the fault model flips bits here; the checksum
    /// covers it, so a corrupted frame genuinely fails verification while
    /// the logical payload stays intact for tests to inspect.
    std::uint64_t pad = 0;
    Envelope env;    ///< kApp
    ControlMsg msg;  ///< kControl
  };

  using LinkKey = std::pair<Rank, Rank>;  // (data src, data dst)

  struct SenderLink {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Frame> unacked;
    des::EventHandle rto_timer;
    des::Duration rto;
  };

  struct ReceiverLink {
    std::uint64_t rx_next = 0;
    std::map<std::uint64_t, Frame> reorder;
    /// A sequence gap is a stall: the rank is waiting on a retransmit.
    bool stall_open = false;
    std::int64_t stall_start_ns = 0;
  };

  [[nodiscard]] static std::uint64_t checksum_of(const Frame& frame);
  void submit(Frame frame);
  /// Put one physical copy of the frame on the wire.
  void transmit_frame(const Frame& frame);
  /// Link-exit: apply the fault model, then process what survives.
  void on_frame_arrival(Frame frame);
  void process_frame(Frame frame);
  void handle_ack(const Frame& frame);
  void send_ack(const LinkKey& link, std::uint64_t ack);
  void hand_up(Frame frame);
  void arm_rto(const LinkKey& link, SenderLink& tx);
  void on_rto(const LinkKey& link);

  des::Simulator* sim_;
  xplorer::Network* network_;
  TransportConfig cfg_;
  LinkFaultModel* faults_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  DeliverApp deliver_app_;
  DeliverControl deliver_control_;
  ControlDropFilter drop_filter_;
  std::map<LinkKey, SenderLink> senders_;
  std::map<LinkKey, ReceiverLink> receivers_;
  TransportStats stats_;
};

}  // namespace chk::chklib
