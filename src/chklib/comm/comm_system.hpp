// The communication fabric tying all endpoints to the machine model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chklib/comm/endpoint.hpp"
#include "chklib/comm/envelope.hpp"
#include "chklib/comm/hooks.hpp"
#include "chklib/comm/observer.hpp"
#include "xplorer/machine.hpp"

namespace chk::chklib {

class CommSystem {
 public:
  explicit CommSystem(xplorer::Machine& machine);
  CommSystem(const CommSystem&) = delete;
  CommSystem& operator=(const CommSystem&) = delete;

  [[nodiscard]] xplorer::Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] std::size_t num_ranks() const noexcept { return endpoints_.size(); }
  [[nodiscard]] Endpoint& endpoint(Rank rank) noexcept { return *endpoints_[rank]; }

  /// Install protocol interposition (nullptr = no checkpointing).
  void set_hooks(ProtocolHooks* hooks) noexcept { hooks_ = hooks; }
  [[nodiscard]] ProtocolHooks* hooks() const noexcept { return hooks_; }

  /// Install a passive observer (nullptr = none). Used by the verify/
  /// invariant monitor; observers must not mutate simulation state.
  void set_observer(InvariantObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] InvariantObserver* observer() const noexcept { return observer_; }

  /// Application-message transmission (sender process context): applies
  /// hooks, charges sender CPU, then hands the envelope to the network.
  void transmit(des::Process& self, Envelope env);

  /// Control-plane transmission (any context, asynchronous, negligible CPU
  /// but real network time — this is the protocols' "synchronization
  /// overhead" the paper measures).
  void send_control(Rank src, Rank dst, ControlMsg msg);

  /// Recovery support: stale-incarnation messages in flight are dropped on
  /// arrival after this is bumped.
  void bump_incarnation() noexcept {
    ++incarnation_;
    if (observer_ != nullptr) observer_->on_incarnation_bump(incarnation_);
  }
  [[nodiscard]] std::uint32_t incarnation() const noexcept { return incarnation_; }
  /// Drop all queued messages at every endpoint.
  void flush_all();

  /// Attach an event tracer to the control plane and all endpoints.
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    for (auto& ep : endpoints_) ep->set_tracer(tracer);
  }

  // -- statistics -------------------------------------------------------------
  [[nodiscard]] std::uint64_t app_messages() const noexcept { return app_messages_; }
  [[nodiscard]] std::uint64_t app_bytes() const noexcept { return app_bytes_; }
  [[nodiscard]] std::uint64_t control_messages() const noexcept { return control_messages_; }
  [[nodiscard]] std::uint64_t control_bytes() const noexcept { return control_bytes_; }
  [[nodiscard]] std::uint64_t dropped_stale() const noexcept { return dropped_stale_; }
  void reset_stats() noexcept;

 private:
  xplorer::Machine* machine_;
  ProtocolHooks* hooks_ = nullptr;
  InvariantObserver* observer_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::uint32_t incarnation_ = 0;
  std::uint64_t app_messages_ = 0;
  std::uint64_t app_bytes_ = 0;
  std::uint64_t control_messages_ = 0;
  std::uint64_t control_bytes_ = 0;
  std::uint64_t dropped_stale_ = 0;
};

}  // namespace chk::chklib
