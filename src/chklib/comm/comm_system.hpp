// The communication fabric tying all endpoints to the machine model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "chklib/comm/endpoint.hpp"
#include "chklib/comm/envelope.hpp"
#include "chklib/comm/hooks.hpp"
#include "chklib/comm/link_fault.hpp"
#include "chklib/comm/observer.hpp"
#include "chklib/comm/transport.hpp"
#include "xplorer/machine.hpp"

namespace chk::chklib {

/// Control kinds consumed by the membership service rather than a protocol
/// daemon's mailbox.
[[nodiscard]] constexpr bool is_membership_kind(ControlKind kind) noexcept {
  return kind >= ControlKind::kHeartbeat;
}

class CommSystem {
 public:
  explicit CommSystem(xplorer::Machine& machine);
  CommSystem(const CommSystem&) = delete;
  CommSystem& operator=(const CommSystem&) = delete;

  [[nodiscard]] xplorer::Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] std::size_t num_ranks() const noexcept { return endpoints_.size(); }
  [[nodiscard]] Endpoint& endpoint(Rank rank) noexcept { return *endpoints_[rank]; }

  /// Install protocol interposition (nullptr = no checkpointing).
  void set_hooks(ProtocolHooks* hooks) noexcept { hooks_ = hooks; }
  [[nodiscard]] ProtocolHooks* hooks() const noexcept { return hooks_; }

  /// Install a passive observer (nullptr = none). Used by the verify/
  /// invariant monitor; observers must not mutate simulation state.
  void set_observer(InvariantObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] InvariantObserver* observer() const noexcept { return observer_; }

  /// Install the unreliable-link model. Every frame arrival (app, control,
  /// and — with the transport enabled — transport acks and retransmissions)
  /// is judged by it. Call before traffic starts.
  void set_link_faults(const LinkFaultConfig& config, util::Rng rng);
  [[nodiscard]] LinkFaultModel* link_faults() noexcept { return faults_.get(); }

  /// Layer the reliable FIFO transport (sequence numbers, cumulative acks,
  /// retransmission) under the message paths, restoring exactly-once FIFO
  /// delivery over lossy links. Call before traffic starts.
  void enable_transport(TransportConfig config = {});
  [[nodiscard]] Transport* transport() noexcept { return transport_.get(); }

  /// Test hook: make the link swallow matching control frames (each
  /// physical copy re-evaluated, so stateful filters can drop only the
  /// first). Works with and without the transport.
  void set_control_drop_filter(Transport::ControlDropFilter filter);

  /// Membership control kinds (heartbeats, suspicions, view changes) are
  /// routed here instead of the destination's control mailbox — the
  /// membership service is event-driven, not a daemon. Observer
  /// notification still happens first, so monitors see membership traffic.
  using MembershipSink = std::function<void(Rank dst, const ControlMsg&)>;
  void set_membership_sink(MembershipSink sink) noexcept {
    membership_sink_ = std::move(sink);
  }

  /// Crash gate: when set, a rank for which the gate returns true is down —
  /// nothing it sends leaves the node and nothing addressed to it (or still
  /// in flight from it) is delivered. This is how the membership service
  /// models a crashed-but-undetected rank; the oracle-driven recovery path
  /// never sets it.
  using DownGate = std::function<bool(Rank)>;
  void set_down_gate(DownGate gate) noexcept { down_gate_ = std::move(gate); }
  [[nodiscard]] bool rank_down(Rank rank) const {
    return down_gate_ && down_gate_(rank);
  }

  /// Application-message transmission (sender process context): applies
  /// hooks, charges sender CPU, then hands the envelope to the network.
  void transmit(des::Process& self, Envelope env);

  /// Control-plane transmission (any context, asynchronous, negligible CPU
  /// but real network time — this is the protocols' "synchronization
  /// overhead" the paper measures).
  void send_control(Rank src, Rank dst, ControlMsg msg);

  /// Fire-and-forget control transmission: unsequenced, unacked, never
  /// retransmitted. Heartbeat beacons use this so a stalled FIFO stream
  /// (one lost data frame under RTO backoff) cannot head-of-line-block
  /// liveness signals into multi-second false silences. Over the raw
  /// (transport-less) path it behaves exactly like send_control — that
  /// path never retransmits anything anyway.
  void send_control_datagram(Rank src, Rank dst, ControlMsg msg);

  /// Recovery support: stale-incarnation messages in flight are dropped on
  /// arrival after this is bumped.
  void bump_incarnation() noexcept {
    ++incarnation_;
    if (observer_ != nullptr) observer_->on_incarnation_bump(incarnation_);
  }
  [[nodiscard]] std::uint32_t incarnation() const noexcept { return incarnation_; }
  /// Drop all queued messages at every endpoint.
  void flush_all();

  /// Attach an event tracer to the control plane and all endpoints.
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    for (auto& ep : endpoints_) ep->set_tracer(tracer);
    if (transport_ != nullptr) transport_->set_tracer(tracer);
  }

  // -- statistics -------------------------------------------------------------
  [[nodiscard]] std::uint64_t app_messages() const noexcept { return app_messages_; }
  [[nodiscard]] std::uint64_t app_bytes() const noexcept { return app_bytes_; }
  [[nodiscard]] std::uint64_t control_messages() const noexcept { return control_messages_; }
  [[nodiscard]] std::uint64_t control_bytes() const noexcept { return control_bytes_; }
  [[nodiscard]] std::uint64_t dropped_stale() const noexcept { return dropped_stale_; }
  // Transport counters (zero when the transport is off).
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return transport_ != nullptr ? transport_->stats().retransmits : 0;
  }
  [[nodiscard]] std::uint64_t dups_suppressed() const noexcept {
    return transport_ != nullptr ? transport_->stats().dups_suppressed : 0;
  }
  [[nodiscard]] std::uint64_t corrupt_detected() const noexcept {
    return transport_ != nullptr ? transport_->stats().corrupt_detected : 0;
  }
  // Raw link-weather counters (zero when no fault model is installed).
  [[nodiscard]] std::uint64_t link_drops() const noexcept {
    return faults_ != nullptr ? faults_->drops() : 0;
  }
  [[nodiscard]] std::uint64_t link_duplicates() const noexcept {
    return faults_ != nullptr ? faults_->duplicates() : 0;
  }
  [[nodiscard]] std::uint64_t link_corrupted() const noexcept {
    return faults_ != nullptr ? faults_->corrupted() : 0;
  }
  [[nodiscard]] std::uint64_t link_delayed() const noexcept {
    return faults_ != nullptr ? faults_->delayed() : 0;
  }
  [[nodiscard]] std::uint64_t partition_drops() const noexcept {
    return faults_ != nullptr ? faults_->partition_drops() : 0;
  }
  void reset_stats() noexcept;

 private:
  /// Exactly-once hand-up paths (also the raw network callbacks when the
  /// transport is off): apply the recovery incarnation filter, then
  /// endpoint delivery.
  void deliver_app(Envelope env);
  void deliver_control(Rank dst, const ControlMsg& msg);
  /// Raw-path (transport off) fault application at link exit.
  void arrive_raw_app(const std::shared_ptr<Envelope>& carried);
  void arrive_raw_control(Rank dst, const ControlMsg& msg);

  xplorer::Machine* machine_;
  ProtocolHooks* hooks_ = nullptr;
  InvariantObserver* observer_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unique_ptr<LinkFaultModel> faults_;
  std::unique_ptr<Transport> transport_;
  Transport::ControlDropFilter raw_drop_filter_;
  MembershipSink membership_sink_;
  DownGate down_gate_;
  std::uint32_t incarnation_ = 0;
  std::uint64_t app_messages_ = 0;
  std::uint64_t app_bytes_ = 0;
  std::uint64_t control_messages_ = 0;
  std::uint64_t control_bytes_ = 0;
  std::uint64_t dropped_stale_ = 0;
};

}  // namespace chk::chklib
