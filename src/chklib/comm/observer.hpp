// Passive observation interface for the communication / checkpoint layers.
//
// Unlike ProtocolHooks (which the checkpointing protocols implement to
// *participate* in message handling), an InvariantObserver only watches:
// the comm system, endpoints and checkpoint store report every externally
// visible transition through it. The verify/ subsystem installs a Monitor
// here to check protocol invariants (FIFO channels, coordinated quiescence,
// stagger mutual exclusion) without perturbing the simulation — observer
// callbacks run at already-existing event boundaries and consume no
// simulated time.
//
// All methods have empty default bodies so observers implement only what
// they need and new callbacks never break existing observers.
#pragma once

#include <cstdint>
#include <vector>

#include "chklib/comm/envelope.hpp"

namespace chk::chklib {

struct ChannelSeqState;

class InvariantObserver {
 public:
  virtual ~InvariantObserver() = default;

  // ---- application message plane -----------------------------------------
  /// Sender handed an envelope to the network (epoch/incarnation stamped).
  virtual void on_transmit(const Envelope& env) { (void)env; }
  /// Envelope reached the destination endpoint, before duplicate
  /// suppression (kernel context).
  virtual void on_endpoint_arrival(const Envelope& env) { (void)env; }
  /// Arrival suppressed as already consumed by restored channel state.
  virtual void on_duplicate_dropped(const Envelope& env) { (void)env; }
  /// In-flight message from a rolled-back incarnation dropped on arrival.
  virtual void on_stale_dropped(Rank dst, std::uint32_t incarnation) {
    (void)dst;
    (void)incarnation;
  }
  /// Application consumed (recv'd) the envelope at `dst`.
  virtual void on_consume(Rank dst, const Envelope& env) {
    (void)dst;
    (void)env;
  }

  // ---- control plane ------------------------------------------------------
  /// Control message delivered into `dst`'s control mailbox.
  virtual void on_control_delivered(Rank dst, const ControlMsg& msg) {
    (void)dst;
    (void)msg;
  }

  // ---- recovery transitions ----------------------------------------------
  /// Incarnation bumped (all older in-flight traffic is now dead).
  virtual void on_incarnation_bump(std::uint32_t incarnation) { (void)incarnation; }
  /// Endpoint `rank` dropped all pending messages and reset its counters.
  virtual void on_flush(Rank rank) { (void)rank; }
  /// Endpoint `rank`'s sequence state was restored from a checkpoint.
  virtual void on_restore_seq(Rank rank, const ChannelSeqState& state) {
    (void)rank;
    (void)state;
  }
  /// Restored channel-log messages re-injected ahead of new arrivals.
  virtual void on_reinject(Rank rank, const std::vector<Envelope>& envelopes) {
    (void)rank;
    (void)envelopes;
  }

  /// A coordinated checkpoint round was aborted (watchdog timeout or a
  /// membership view change): writes begun under it may still be in flight
  /// and legitimately overlap the re-initiated round's first writer.
  virtual void on_round_abort(std::uint32_t epoch) { (void)epoch; }
  /// The stagger-token watchdog re-issued epoch `epoch`'s ring token. If
  /// the original was merely delayed (not destroyed), the ring briefly
  /// carries two tokens and same-epoch writes may overlap — a performance
  /// degradation, not a safety violation (both images are valid tentatives).
  virtual void on_token_regenerated(std::uint32_t epoch) { (void)epoch; }

  // ---- stable-storage checkpoint writes ----------------------------------
  /// `rank` started writing checkpoint image `index` to stable storage.
  virtual void on_image_write_begin(Rank rank, std::uint32_t index) {
    (void)rank;
    (void)index;
  }
  /// The image write completed (bytes durable).
  virtual void on_image_write_end(Rank rank, std::uint32_t index) {
    (void)rank;
    (void)index;
  }
};

}  // namespace chk::chklib
