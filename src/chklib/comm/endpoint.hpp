// Per-rank communication endpoint: the CHK-LIB "MPI-like programming
// interface" of the paper, with reliable FIFO channels.
//
// Point-to-point: send is buffered-asynchronous (the sender pays a CPU
// staging cost, then the message travels through the modelled network);
// recv blocks until a matching message is available. Collectives (barrier,
// broadcast, reduce, allreduce, gather) are built from point-to-point
// messages over binomial trees, so their synchronization cost is fully
// modelled network traffic.
//
// The endpoint also carries the protocol control plane: a separate mailbox
// of small ControlMsg records consumed by the per-node protocol daemon.
//
// Channel sequence state: every message carries a per-(src,dst) sequence
// number; the endpoint tracks which sequence numbers it has *consumed*
// (handed to the application). Checkpoints save this state; after a
// rollback, re-executing senders regenerate post-cut messages with their
// original sequence numbers (the send counters are restored too), and
// arrivals whose sequence the restored state already consumed are dropped
// as duplicates. This is what makes a cut taken at an application-declared
// safe point globally consistent without blocking the senders.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "chklib/comm/envelope.hpp"
#include "chklib/comm/freeze_gate.hpp"
#include "chklib/comm/hooks.hpp"
#include "des/process.hpp"
#include "des/sync.hpp"
#include "xplorer/node.hpp"

namespace chk::chklib {

class CommSystem;

/// Serializable per-channel sequence state (saved inside checkpoints).
struct ChannelSeqState {
  struct RankSeq {
    std::uint64_t rank = 0;
    std::uint64_t seq = 0;
  };
  std::vector<RankSeq> send_next;      ///< next outgoing seq per destination
  std::vector<RankSeq> consumed_upto;  ///< per source: all seqs below are consumed
  std::vector<RankSeq> consumed_extra; ///< out-of-prefix consumed (src, seq) pairs
};

class Endpoint {
 public:
  Endpoint(CommSystem& system, Rank rank, xplorer::Node& node, des::Simulator& sim);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;
  ~Endpoint() {
    for (des::Process* proc : recv_waiters_) proc->detach_cancel();
  }

  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] FreezeGate& gate() noexcept { return gate_; }
  [[nodiscard]] xplorer::Node& node() noexcept { return *node_; }

  // ---- application API (call from the rank's application process) --------
  void send(des::Process& self, Rank dst, int tag, std::vector<std::byte> payload);
  [[nodiscard]] Envelope recv(des::Process& self, int src = kAnySource, int tag = kAnyTag);
  /// recv with a deadline: blocks until a matching message is consumable
  /// or the simulation clock reaches `deadline`, whichever comes first
  /// (nullopt on timeout). The event-driven primitive the svc workload's
  /// serve loop needs — waiting for "next request or next scheduled
  /// arrival" without a polling quantum contaminating latency tails.
  [[nodiscard]] std::optional<Envelope> recv_until(des::Process& self,
                                                   des::TimePoint deadline,
                                                   int src = kAnySource,
                                                   int tag = kAnyTag);
  [[nodiscard]] bool probe(int src, int tag) const;

  void barrier(des::Process& self);
  /// Root's data is distributed to everyone; returns the received data.
  std::vector<std::byte> broadcast(des::Process& self, Rank root, std::vector<std::byte> data);
  /// Sum-reduction to root; returns the reduced value at root, `value` elsewhere.
  double reduce_sum(des::Process& self, Rank root, double value);
  double allreduce_sum(des::Process& self, double value);
  double reduce_min(des::Process& self, Rank root, double value);
  double allreduce_min(des::Process& self, double value);
  /// Element-wise sum reduction of equal-length vectors to root.
  std::vector<double> reduce_sum_vec(des::Process& self, Rank root, std::vector<double> values);

  // ---- control plane ------------------------------------------------------
  [[nodiscard]] ControlMsg recv_control(des::Process& self) { return control_.recv(self); }
  [[nodiscard]] des::SimMailbox<ControlMsg>& control_mailbox() noexcept { return control_; }

  // ---- plumbing used by CommSystem / protocols / recovery -----------------
  /// Arrival of an application envelope (kernel context).
  void deliver(Envelope env);
  /// Snapshot of arrived-but-unconsumed messages (channel state at capture).
  [[nodiscard]] std::vector<Envelope> pending_snapshot() const;
  /// Recovery: drop all pending app + control messages.
  void flush();
  /// Recovery: re-inject a restored channel log ahead of new arrivals.
  void reinject(std::vector<Envelope> envelopes);

  /// Next FIFO sequence number for the channel to `dst`.
  std::uint64_t next_seq(Rank dst) noexcept { return send_seq_[dst]++; }
  void reset_seq() noexcept;

  /// Sequence state for checkpoint images / rollback restore.
  [[nodiscard]] ChannelSeqState seq_snapshot() const;
  void restore_seq(const ChannelSeqState& state);
  /// True if the (restored) consumption state already covers this message.
  [[nodiscard]] bool already_consumed(Rank src, std::uint64_t seq) const;

  [[nodiscard]] std::uint64_t messages_received() const noexcept { return messages_received_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept { return duplicates_dropped_; }
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_.size(); }

  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    gate_.set_tracer(tracer, static_cast<std::uint16_t>(rank_));
  }

  // Reserved (negative) tags used by the collectives; applications must
  // use non-negative tags.
  static constexpr int kTagBarrierUp = -2;
  static constexpr int kTagBarrierDown = -3;
  static constexpr int kTagBcast = -4;
  static constexpr int kTagReduce = -5;

 private:
  friend class CommSystem;
  static bool matches(const Envelope& env, int src, int tag) noexcept {
    return (src == kAnySource || env.src == static_cast<Rank>(src)) &&
           (tag == kAnyTag || env.tag == tag);
  }
  std::optional<Envelope> take_match(int src, int tag);
  [[nodiscard]] const Envelope* peek_match(int src, int tag) const;
  /// Shared tail of recv/recv_until: charge receive CPU cost, remove the
  /// (guaranteed present) match and run the consumption bookkeeping.
  Envelope consume_match(des::Process& self, int src, int tag,
                         std::int64_t wait_start_ns);
  void note_consumed(Rank src, std::uint64_t seq);

  CommSystem* system_;
  Rank rank_;
  xplorer::Node* node_;
  des::Simulator* sim_;
  obs::Tracer* tracer_ = nullptr;
  FreezeGate gate_;
  std::deque<Envelope> pending_;
  std::deque<des::Process*> recv_waiters_;
  des::SimMailbox<ControlMsg> control_;
  std::map<Rank, std::uint64_t> send_seq_;
  std::map<Rank, std::uint64_t> consumed_upto_;
  std::map<Rank, std::set<std::uint64_t>> consumed_extra_;
  std::uint64_t messages_received_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
};

}  // namespace chk::chklib
