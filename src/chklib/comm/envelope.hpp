// Message envelope carried by the CHK-LIB communication layer.
#pragma once

#include <cstdint>
#include <vector>

#include "xplorer/config.hpp"

namespace chk::chklib {

using Rank = xplorer::NodeId;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Application message with the protocol metadata the checkpointing
/// algorithms piggyback on every send.
struct Envelope {
  Rank src = 0;
  Rank dst = 0;
  int tag = 0;
  /// Sender's checkpoint epoch (coordinated) or checkpoint interval index
  /// (independent) at send time.
  std::uint32_t epoch = 0;
  /// Recovery incarnation at send time; stale-incarnation messages are
  /// dropped on arrival (they died with the rolled-back execution).
  std::uint32_t incarnation = 0;
  /// Per (src, dst) sequence number for FIFO checking.
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;

  [[nodiscard]] std::size_t size_bytes() const noexcept { return payload.size(); }
};

/// Control-plane messages exchanged by the checkpointing protocols. The
/// payload meaning depends on kind; all fit in a small fixed struct so the
/// modelled control traffic is a few dozen bytes per message (the paper's
/// "synchronization overhead").
enum class ControlKind : std::uint8_t {
  kCkptRequest,    ///< coordinator -> all: start checkpoint of `epoch`
  kChannelMarker,  ///< peer -> peer: no more pre-`epoch` messages from me
  kCkptAck,        ///< participant -> coordinator: epoch durable here
  kCommit,         ///< coordinator -> all: epoch committed globally
  kToken,          ///< stagger ring/arbiter: your turn to write to stable storage
  kTokenRequest,   ///< writer -> arbiter: request the stagger grant (Indep_MS)
  kTokenRelease,   ///< writer -> arbiter: done writing, grant the next (Indep_MS)
  kTokenBeacon,    ///< writer -> coordinator: stagger token passed (watchdog progress)
  // ---- cluster membership (src/chklib/membership) --------------------------
  kHeartbeat,      ///< rank -> all: I am alive (periodic beacon)
  kSuspect,        ///< detector -> election candidate: `epoch` looks dead to me
  kViewChange,     ///< candidate -> all: adopt view `view` with members `members`
  kViewAck,        ///< member -> proposer: view `view` accepted here
  kJoinRequest,    ///< fenced rank -> coordinator: re-admit me to the view
};

struct ControlMsg {
  ControlKind kind = ControlKind::kCkptRequest;
  Rank src = 0;
  std::uint32_t epoch = 0;
  std::uint32_t incarnation = 0;
  /// Membership view id this message was sent under (0 = pre-membership /
  /// detector off). Round messages are stamped so a coordinator elected at
  /// a higher view can reject acks from an older round, and the monitor can
  /// check that no committed round spans two views.
  std::uint64_t view = 0;
  /// kViewChange: proposed member set as a rank bitmap (bit r = rank r).
  /// kSuspect: bit set for the suspected rank.
  std::uint64_t members = 0;
};

/// Modelled wire size of a control message (header + fields).
inline constexpr std::size_t kControlWireBytes = 32;
/// Modelled per-message header overhead for application messages.
inline constexpr std::size_t kHeaderWireBytes = 24;

}  // namespace chk::chklib
