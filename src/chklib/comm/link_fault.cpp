#include "chklib/comm/link_fault.hpp"

#include <stdexcept>
#include <string>

namespace chk::chklib {

namespace {

void check_prob(const char* name, double p) {
  if (!(p >= 0.0) || !(p < 1.0)) {
    throw std::invalid_argument(std::string(name) +
                                ": probability must be in [0, 1), got " +
                                std::to_string(p));
  }
}

void check_nonneg(const char* name, double v) {
  if (!(v >= 0.0)) {
    throw std::invalid_argument(std::string(name) +
                                ": must be non-negative, got " +
                                std::to_string(v));
  }
}

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e9);
}

}  // namespace

void LinkFaultConfig::validate() const {
  check_prob("link drop", drop);
  check_prob("link duplicate", duplicate);
  check_prob("link corrupt", corrupt);
  check_prob("link delay probability", delay_prob);
  check_nonneg("link delay mean", delay_mean_s);
  check_nonneg("link duplicate lag mean", dup_lag_mean_s);
  check_nonneg("partition period", partition_period_s);
  check_nonneg("partition duration", partition_duration_s);
  if (partition_duration_s > 0 && partition_period_s > 0 &&
      partition_duration_s > partition_period_s) {
    throw std::invalid_argument(
        "partition duration must not exceed the partition period, got " +
        std::to_string(partition_duration_s) + " > " +
        std::to_string(partition_period_s));
  }
}

bool LinkFaultModel::partitioned(std::size_t a, std::size_t b,
                                 std::int64_t now_ns) const noexcept {
  if (!cfg_.partition_enabled()) return false;
  const auto target = static_cast<std::size_t>(cfg_.partition_rank);
  if (a != target && b != target) return false;
  const auto period_ns = to_ns(cfg_.partition_period_s);
  const auto duration_ns = to_ns(cfg_.partition_duration_s);
  if (period_ns <= 0) return false;
  return now_ns % period_ns < duration_ns;
}

LinkFaultModel::Verdict LinkFaultModel::judge() {
  Verdict v;
  // Base draws happen unconditionally and in a fixed order; only the
  // value draws (mask, lags) are conditional — determinism needs the same
  // call sequence for the same seed, which this guarantees.
  v.drop = cfg_.drop > 0 && rng_.bernoulli(cfg_.drop);
  v.duplicate = cfg_.duplicate > 0 && rng_.bernoulli(cfg_.duplicate);
  v.corrupt = cfg_.corrupt > 0 && rng_.bernoulli(cfg_.corrupt);
  const bool delay = cfg_.delay_prob > 0 && rng_.bernoulli(cfg_.delay_prob);
  if (v.drop) {
    // The frame never arrives; nothing downstream to duplicate or corrupt.
    ++drops_;
    return Verdict{.drop = true};
  }
  if (v.duplicate) {
    ++duplicates_;
    v.dup_lag_ns = to_ns(rng_.exponential(cfg_.dup_lag_mean_s));
  }
  if (v.corrupt) {
    ++corrupted_;
    v.corrupt_mask = rng_() | 1u;
  }
  if (delay) {
    ++delayed_;
    v.extra_delay_ns = to_ns(rng_.exponential(cfg_.delay_mean_s));
  }
  return v;
}

}  // namespace chk::chklib
