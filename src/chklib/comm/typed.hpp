// Typed convenience wrappers over the byte-oriented Endpoint API.
#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "chklib/comm/endpoint.hpp"

namespace chk::chklib {

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> to_bytes(const T& value) {
  std::vector<std::byte> bytes(sizeof(T));
  std::memcpy(bytes.data(), &value, sizeof(T));
  return bytes;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::byte> to_bytes(std::span<const T> values) {
  std::vector<std::byte> bytes(values.size_bytes());
  std::memcpy(bytes.data(), values.data(), values.size_bytes());
  return bytes;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T from_bytes(std::span<const std::byte> bytes) {
  T value{};
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> vector_from_bytes(std::span<const std::byte> bytes) {
  std::vector<T> values(bytes.size() / sizeof(T));
  std::memcpy(values.data(), bytes.data(), values.size() * sizeof(T));
  return values;
}

template <typename T>
void send_value(Endpoint& ep, des::Process& self, Rank dst, int tag, const T& value) {
  ep.send(self, dst, tag, to_bytes(value));
}

template <typename T>
T recv_value(Endpoint& ep, des::Process& self, int src = kAnySource, int tag = kAnyTag) {
  return from_bytes<T>(ep.recv(self, src, tag).payload);
}

template <typename T>
void send_span(Endpoint& ep, des::Process& self, Rank dst, int tag, std::span<const T> values) {
  ep.send(self, dst, tag, to_bytes(values));
}

template <typename T>
std::vector<T> recv_vector(Endpoint& ep, des::Process& self, int src = kAnySource,
                           int tag = kAnyTag) {
  return vector_from_bytes<T>(ep.recv(self, src, tag).payload);
}

}  // namespace chk::chklib
