#include "chklib/comm/comm_system.hpp"

#include <memory>
#include <utility>

namespace chk::chklib {

CommSystem::CommSystem(xplorer::Machine& machine) : machine_(&machine) {
  endpoints_.reserve(machine.num_nodes());
  for (Rank rank = 0; rank < machine.num_nodes(); ++rank) {
    endpoints_.push_back(
        std::make_unique<Endpoint>(*this, rank, machine.node(rank), machine.sim()));
  }
}

void CommSystem::set_link_faults(const LinkFaultConfig& config, util::Rng rng) {
  faults_ = std::make_unique<LinkFaultModel>(config, rng);
  if (transport_ != nullptr) transport_->set_fault_model(faults_.get());
}

void CommSystem::enable_transport(TransportConfig config) {
  transport_ = std::make_unique<Transport>(machine_->sim(), machine_->network(), config);
  transport_->set_fault_model(faults_.get());
  transport_->set_tracer(tracer_);
  transport_->set_deliver_app([this](Envelope env) { deliver_app(std::move(env)); });
  transport_->set_deliver_control(
      [this](Rank dst, const ControlMsg& msg) { deliver_control(dst, msg); });
  if (raw_drop_filter_) transport_->set_control_drop_filter(std::move(raw_drop_filter_));
}

void CommSystem::set_control_drop_filter(Transport::ControlDropFilter filter) {
  if (transport_ != nullptr) {
    transport_->set_control_drop_filter(std::move(filter));
  } else {
    raw_drop_filter_ = std::move(filter);
  }
}

void CommSystem::deliver_app(Envelope env) {
  if (env.incarnation != incarnation_) {
    ++dropped_stale_;  // message from a rolled-back execution
    if (observer_ != nullptr) observer_->on_stale_dropped(env.dst, env.incarnation);
    return;
  }
  // Crash gate: a down rank neither receives nor has its in-flight frames
  // (transport retransmissions of pre-crash sends) delivered.
  if (rank_down(env.src) || rank_down(env.dst)) return;
  endpoint(env.dst).deliver(std::move(env));
}

void CommSystem::deliver_control(Rank dst, const ControlMsg& msg) {
  if (msg.incarnation != incarnation_) {
    ++dropped_stale_;
    if (observer_ != nullptr) observer_->on_stale_dropped(dst, msg.incarnation);
    return;
  }
  if (rank_down(msg.src) || rank_down(dst)) return;
  if (observer_ != nullptr) observer_->on_control_delivered(dst, msg);
  if (is_membership_kind(msg.kind)) {
    // Event-driven hand-off to the membership service; never a daemon
    // mailbox message (no daemon knows these kinds).
    if (membership_sink_) membership_sink_(dst, msg);
    return;
  }
  endpoint(dst).control_mailbox().send(msg);
}

void CommSystem::arrive_raw_app(const std::shared_ptr<Envelope>& carried) {
  if (faults_ == nullptr) {
    deliver_app(std::move(*carried));
    return;
  }
  if (faults_->partitioned(carried->src, carried->dst,
                           machine_->sim().now().to_nanos())) {
    faults_->note_partition_drop();
    return;
  }
  const LinkFaultModel::Verdict verdict = faults_->judge();
  if (verdict.drop) return;
  if (verdict.corrupt) return;  // no transport checksum: link-level CRC discard
  if (verdict.duplicate) {
    machine_->sim().schedule_after(des::Duration::nanos(verdict.dup_lag_ns),
                                   [this, copy = *carried]() mutable {
                                     deliver_app(std::move(copy));
                                   });
  }
  if (verdict.extra_delay_ns > 0) {
    machine_->sim().schedule_after(des::Duration::nanos(verdict.extra_delay_ns),
                                   [this, carried] {
                                     deliver_app(std::move(*carried));
                                   });
    return;
  }
  deliver_app(std::move(*carried));
}

void CommSystem::arrive_raw_control(Rank dst, const ControlMsg& msg) {
  if (raw_drop_filter_ && raw_drop_filter_(msg)) return;
  if (faults_ == nullptr) {
    deliver_control(dst, msg);
    return;
  }
  if (faults_->partitioned(msg.src, dst, machine_->sim().now().to_nanos())) {
    faults_->note_partition_drop();
    return;
  }
  const LinkFaultModel::Verdict verdict = faults_->judge();
  if (verdict.drop) return;
  if (verdict.corrupt) return;
  if (verdict.duplicate) {
    machine_->sim().schedule_after(
        des::Duration::nanos(verdict.dup_lag_ns),
        [this, dst, msg] { deliver_control(dst, msg); });
  }
  if (verdict.extra_delay_ns > 0) {
    machine_->sim().schedule_after(
        des::Duration::nanos(verdict.extra_delay_ns),
        [this, dst, msg] { deliver_control(dst, msg); });
    return;
  }
  deliver_control(dst, msg);
}

void CommSystem::transmit(des::Process& self, Envelope env) {
  if (rank_down(env.src)) return;  // zombie sender: nothing leaves the node
  if (hooks_ != nullptr) hooks_->on_send(env.src, env);
  env.incarnation = incarnation_;
  if (observer_ != nullptr) observer_->on_transmit(env);
  ++app_messages_;
  app_bytes_ += env.payload.size();
  // Sender-side CPU staging cost (software overhead + copy to link buffer).
  machine_->node(env.src).message_overhead(self, env.payload.size());
  if (transport_ != nullptr) {
    transport_->send_app(std::move(env));
    return;
  }
  const Rank src = env.src;
  const Rank dst = env.dst;
  const std::size_t wire_bytes = env.payload.size() + kHeaderWireBytes;
  auto carried = std::make_shared<Envelope>(std::move(env));
  machine_->network().transfer(src, dst, wire_bytes, xplorer::Traffic::kApplication,
                               [this, carried] { arrive_raw_app(carried); });
}

void CommSystem::send_control(Rank src, Rank dst, ControlMsg msg) {
  if (rank_down(src)) return;  // zombie background writer / stale timer
  msg.incarnation = incarnation_;
  if (tracer_ != nullptr) {
    tracer_->instant(obs::EventKind::kControlSend, static_cast<std::uint16_t>(src),
                     machine_->sim().now().to_nanos(), 0, static_cast<std::uint32_t>(dst));
  }
  ++control_messages_;
  control_bytes_ += kControlWireBytes;
  if (transport_ != nullptr) {
    transport_->send_control(src, dst, msg);
    return;
  }
  machine_->network().transfer(src, dst, kControlWireBytes, xplorer::Traffic::kControl,
                               [this, dst, msg] { arrive_raw_control(dst, msg); });
}

void CommSystem::send_control_datagram(Rank src, Rank dst, ControlMsg msg) {
  if (rank_down(src)) return;  // zombie background writer / stale timer
  msg.incarnation = incarnation_;
  if (tracer_ != nullptr) {
    tracer_->instant(obs::EventKind::kControlSend, static_cast<std::uint16_t>(src),
                     machine_->sim().now().to_nanos(), 0, static_cast<std::uint32_t>(dst));
  }
  ++control_messages_;
  control_bytes_ += kControlWireBytes;
  if (transport_ != nullptr) {
    transport_->send_datagram(src, dst, msg);
    return;
  }
  machine_->network().transfer(src, dst, kControlWireBytes, xplorer::Traffic::kControl,
                               [this, dst, msg] { arrive_raw_control(dst, msg); });
}

void CommSystem::flush_all() {
  for (auto& ep : endpoints_) {
    ep->flush();
    ep->reset_seq();
  }
}

void CommSystem::reset_stats() noexcept {
  app_messages_ = 0;
  app_bytes_ = 0;
  control_messages_ = 0;
  control_bytes_ = 0;
  dropped_stale_ = 0;
  if (transport_ != nullptr) transport_->reset_stats();
  if (faults_ != nullptr) faults_->reset_counters();
}

}  // namespace chk::chklib
