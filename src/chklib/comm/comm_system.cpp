#include "chklib/comm/comm_system.hpp"

#include <memory>
#include <utility>

namespace chk::chklib {

CommSystem::CommSystem(xplorer::Machine& machine) : machine_(&machine) {
  endpoints_.reserve(machine.num_nodes());
  for (Rank rank = 0; rank < machine.num_nodes(); ++rank) {
    endpoints_.push_back(
        std::make_unique<Endpoint>(*this, rank, machine.node(rank), machine.sim()));
  }
}

void CommSystem::transmit(des::Process& self, Envelope env) {
  if (hooks_ != nullptr) hooks_->on_send(env.src, env);
  env.incarnation = incarnation_;
  if (observer_ != nullptr) observer_->on_transmit(env);
  ++app_messages_;
  app_bytes_ += env.payload.size();
  // Sender-side CPU staging cost (software overhead + copy to link buffer).
  machine_->node(env.src).message_overhead(self, env.payload.size());
  const Rank src = env.src;
  const Rank dst = env.dst;
  const std::size_t wire_bytes = env.payload.size() + kHeaderWireBytes;
  auto carried = std::make_shared<Envelope>(std::move(env));
  machine_->network().transfer(src, dst, wire_bytes, xplorer::Traffic::kApplication,
                               [this, carried] {
    if (carried->incarnation != incarnation_) {
      ++dropped_stale_;  // message from a rolled-back execution
      if (observer_ != nullptr) observer_->on_stale_dropped(carried->dst, carried->incarnation);
      return;
    }
    endpoint(carried->dst).deliver(std::move(*carried));
  });
}

void CommSystem::send_control(Rank src, Rank dst, ControlMsg msg) {
  msg.incarnation = incarnation_;
  if (tracer_ != nullptr) {
    tracer_->instant(obs::EventKind::kControlSend, static_cast<std::uint16_t>(src),
                     machine_->sim().now().to_nanos(), 0, static_cast<std::uint32_t>(dst));
  }
  ++control_messages_;
  control_bytes_ += kControlWireBytes;
  machine_->network().transfer(src, dst, kControlWireBytes, xplorer::Traffic::kControl,
                               [this, dst, msg] {
    if (msg.incarnation != incarnation_) {
      ++dropped_stale_;
      if (observer_ != nullptr) observer_->on_stale_dropped(dst, msg.incarnation);
      return;
    }
    if (observer_ != nullptr) observer_->on_control_delivered(dst, msg);
    endpoint(dst).control_mailbox().send(msg);
  });
}

void CommSystem::flush_all() {
  for (auto& ep : endpoints_) {
    ep->flush();
    ep->reset_seq();
  }
}

void CommSystem::reset_stats() noexcept {
  app_messages_ = 0;
  app_bytes_ = 0;
  control_messages_ = 0;
  control_bytes_ = 0;
  dropped_stale_ = 0;
}

}  // namespace chk::chklib
