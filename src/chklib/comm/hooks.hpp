// Interposition interface the checkpointing protocols implement.
#pragma once

#include "chklib/comm/envelope.hpp"
#include "des/process.hpp"

namespace chk::chklib {

/// The communication layer calls these around every application message so
/// a protocol can piggyback metadata, track dependencies, log channel
/// contents and induce checkpoints. A null hooks pointer disables all
/// checkpointing (the "NORMAL" baseline).
class ProtocolHooks {
 public:
  virtual ~ProtocolHooks() = default;

  /// Sender context, before the message enters the network: stamp epoch /
  /// interval metadata and record the send.
  virtual void on_send(Rank src, Envelope& env) = 0;

  /// Kernel context, when the message arrives at the destination endpoint
  /// (before the application consumes it): channel logging for coordinated
  /// checkpointing keys off arrival order, which FIFO channels preserve.
  virtual void on_arrival(Rank dst, const Envelope& env) = 0;

  /// Receiving application's context, immediately before the message is
  /// handed to the application: induced (communication-triggered)
  /// checkpoints and receive-dependency tracking happen here.
  virtual void on_deliver(des::Process& self, Rank dst, const Envelope& env) = 0;
};

}  // namespace chk::chklib
