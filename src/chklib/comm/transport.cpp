#include "chklib/comm/transport.hpp"

#include <algorithm>

namespace chk::chklib {

namespace {

/// Wire size of one physical frame copy.
std::size_t frame_wire_bytes(std::size_t logical_bytes) {
  return logical_bytes + kTransportWireBytes;
}

}  // namespace

Transport::Transport(des::Simulator& sim, xplorer::Network& network,
                     TransportConfig config)
    : sim_(&sim), network_(&network), cfg_(config) {}

std::uint64_t Transport::checksum_of(const Frame& frame) {
  // splitmix64-fold over every field the "wire" carries, including `pad`
  // (the corruption target) and the payload bytes — a flipped bit anywhere
  // fails verification.
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  auto mix = [&h](std::uint64_t word) {
    h ^= word;
    h = util::splitmix64(h);
  };
  mix(static_cast<std::uint64_t>(frame.kind));
  mix(static_cast<std::uint64_t>(frame.src));
  mix(static_cast<std::uint64_t>(frame.dst));
  mix(frame.seq);
  mix(frame.ack);
  mix(frame.pad);
  if (frame.kind == FrameKind::kApp) {
    const Envelope& env = frame.env;
    mix(static_cast<std::uint64_t>(env.tag));
    mix(env.epoch);
    mix(env.incarnation);
    mix(env.seq);
    mix(env.payload.size());
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < env.payload.size(); ++i) {
      word = (word << 8) | static_cast<std::uint64_t>(env.payload[i]);
      if ((i & 7u) == 7u) {
        mix(word);
        word = 0;
      }
    }
    if ((env.payload.size() & 7u) != 0) mix(word);
  } else if (frame.kind == FrameKind::kControl || frame.kind == FrameKind::kDatagram) {
    mix(static_cast<std::uint64_t>(frame.msg.kind));
    mix(static_cast<std::uint64_t>(frame.msg.src));
    mix(frame.msg.epoch);
    mix(frame.msg.incarnation);
    mix(frame.msg.view);
    mix(frame.msg.members);
  }
  return h;
}

void Transport::send_app(Envelope env) {
  Frame frame;
  frame.kind = FrameKind::kApp;
  frame.src = env.src;
  frame.dst = env.dst;
  frame.env = std::move(env);
  submit(std::move(frame));
}

void Transport::send_control(Rank src, Rank dst, const ControlMsg& msg) {
  Frame frame;
  frame.kind = FrameKind::kControl;
  frame.src = src;
  frame.dst = dst;
  frame.msg = msg;
  submit(std::move(frame));
}

void Transport::send_datagram(Rank src, Rank dst, const ControlMsg& msg) {
  // No sequence number, no sender state, no RTO: one physical copy on the
  // wire, delivered iff the link lets it through.
  Frame frame;
  frame.kind = FrameKind::kDatagram;
  frame.src = src;
  frame.dst = dst;
  frame.msg = msg;
  frame.checksum = checksum_of(frame);
  ++stats_.datagrams_sent;
  transmit_frame(frame);
}

void Transport::submit(Frame frame) {
  const LinkKey link{frame.src, frame.dst};
  SenderLink& tx = senders_[link];
  frame.seq = tx.next_seq++;
  frame.checksum = checksum_of(frame);
  ++stats_.data_frames;
  transmit_frame(frame);
  tx.unacked.emplace(frame.seq, std::move(frame));
  if (!tx.rto_timer.pending()) {
    tx.rto = cfg_.rto_initial;
    arm_rto(link, tx);
  }
}

void Transport::transmit_frame(const Frame& frame) {
  std::size_t logical = kAckWireBytes;
  xplorer::Traffic traffic = xplorer::Traffic::kControl;
  Rank from = frame.dst;
  Rank to = frame.src;
  if (frame.kind != FrameKind::kAck) {
    from = frame.src;
    to = frame.dst;
    logical = frame.kind == FrameKind::kApp
                  ? frame.env.payload.size() + kHeaderWireBytes
                  : kControlWireBytes;
    traffic = frame.kind == FrameKind::kApp ? xplorer::Traffic::kApplication
                                            : xplorer::Traffic::kControl;
  }
  network_->transfer(from, to, frame_wire_bytes(logical), traffic,
                     [this, frame] { on_frame_arrival(frame); });
}

void Transport::on_frame_arrival(Frame frame) {
  // The test hook models a link that eats specific control frames; it sits
  // below the fault model so retransmitted copies are re-evaluated.
  if ((frame.kind == FrameKind::kControl || frame.kind == FrameKind::kDatagram) &&
      drop_filter_ && drop_filter_(frame.msg)) {
    return;
  }
  if (faults_ != nullptr) {
    // Physical travel direction: acks go frame.dst -> frame.src (mirroring
    // transmit_frame). Partition drops consume no RNG draws.
    const Rank phys_from = frame.kind == FrameKind::kAck ? frame.dst : frame.src;
    const Rank phys_to = frame.kind == FrameKind::kAck ? frame.src : frame.dst;
    if (faults_->partitioned(phys_from, phys_to, sim_->now().to_nanos())) {
      faults_->note_partition_drop();
      return;
    }
  }
  if (faults_ != nullptr) {
    const LinkFaultModel::Verdict verdict = faults_->judge();
    if (verdict.drop) return;
    if (verdict.duplicate) {
      // The duplicate is a second clean physical copy; it does not pass
      // through the fault model again (that would recurse unboundedly at
      // high duplication rates).
      sim_->schedule_after(des::Duration::nanos(verdict.dup_lag_ns),
                           [this, copy = frame] { process_frame(copy); });
    }
    if (verdict.corrupt) frame.pad ^= verdict.corrupt_mask;
    if (verdict.extra_delay_ns > 0) {
      sim_->schedule_after(des::Duration::nanos(verdict.extra_delay_ns),
                           [this, delayed = std::move(frame)] {
                             process_frame(delayed);
                           });
      return;
    }
  }
  process_frame(std::move(frame));
}

void Transport::process_frame(Frame frame) {
  if (checksum_of(frame) != frame.checksum) {
    // Treated exactly like a loss: the sender's RTO recovers data frames,
    // and a lost ack is covered by the next (cumulative) one.
    ++stats_.corrupt_detected;
    return;
  }
  if (frame.kind == FrameKind::kAck) {
    handle_ack(frame);
    return;
  }
  if (frame.kind == FrameKind::kDatagram) {
    // Unsequenced plane: no dedup, no reorder buffer, no ack.
    hand_up(std::move(frame));
    return;
  }
  const LinkKey link{frame.src, frame.dst};
  ReceiverLink& rx = receivers_[link];
  if (frame.seq < rx.rx_next || rx.reorder.contains(frame.seq)) {
    // Duplicate (link-level or retransmit after a lost ack): suppress, but
    // re-ack — the sender may still be waiting on the ack that died.
    ++stats_.dups_suppressed;
    send_ack(link, rx.rx_next);
    return;
  }
  if (frame.seq == rx.rx_next) {
    ++rx.rx_next;
    hand_up(std::move(frame));
    for (auto it = rx.reorder.begin();
         it != rx.reorder.end() && it->first == rx.rx_next;
         it = rx.reorder.erase(it)) {
      ++rx.rx_next;
      hand_up(std::move(it->second));
    }
    if (rx.stall_open && rx.reorder.empty()) {
      rx.stall_open = false;
      const std::int64_t now = sim_->now().to_nanos();
      if (tracer_ != nullptr && now > rx.stall_start_ns) {
        tracer_->span(obs::EventKind::kRetransmitWait,
                      static_cast<std::uint16_t>(link.second), rx.stall_start_ns,
                      now, 0, static_cast<std::uint32_t>(link.first));
      }
    }
  } else {
    if (!rx.stall_open) {
      rx.stall_open = true;
      rx.stall_start_ns = sim_->now().to_nanos();
    }
    rx.reorder.emplace(frame.seq, std::move(frame));
  }
  send_ack(link, rx.rx_next);
}

void Transport::handle_ack(const Frame& frame) {
  const LinkKey link{frame.src, frame.dst};
  const auto it = senders_.find(link);
  if (it == senders_.end()) return;
  SenderLink& tx = it->second;
  bool advanced = false;
  while (!tx.unacked.empty() && tx.unacked.begin()->first < frame.ack) {
    tx.unacked.erase(tx.unacked.begin());
    advanced = true;
  }
  if (!advanced) return;
  if (tx.rto_timer.pending()) ++stats_.rto_cancelled;
  tx.rto_timer.cancel();
  tx.rto = cfg_.rto_initial;
  if (!tx.unacked.empty()) arm_rto(link, tx);
}

void Transport::send_ack(const LinkKey& link, std::uint64_t ack) {
  Frame frame;
  frame.kind = FrameKind::kAck;
  frame.src = link.first;
  frame.dst = link.second;
  frame.ack = ack;
  frame.checksum = checksum_of(frame);
  ++stats_.acks_sent;
  transmit_frame(frame);
}

void Transport::hand_up(Frame frame) {
  if (frame.kind == FrameKind::kApp) {
    if (deliver_app_) deliver_app_(std::move(frame.env));
  } else {
    if (deliver_control_) deliver_control_(frame.dst, frame.msg);
  }
}

void Transport::arm_rto(const LinkKey& link, SenderLink& tx) {
  ++stats_.rto_armed;
  tx.rto_timer = sim_->schedule_after(tx.rto, [this, link] { on_rto(link); });
}

void Transport::on_rto(const LinkKey& link) {
  SenderLink& tx = senders_[link];
  if (tx.unacked.empty()) return;
  for (const auto& [seq, frame] : tx.unacked) {
    ++stats_.retransmits;
    if (tracer_ != nullptr) {
      tracer_->instant(obs::EventKind::kRetransmit,
                       static_cast<std::uint16_t>(link.first),
                       sim_->now().to_nanos(), seq,
                       static_cast<std::uint32_t>(link.second));
    }
    transmit_frame(frame);
  }
  tx.rto = des::Duration::nanos(
      std::min(tx.rto.to_nanos() * 2, cfg_.rto_cap.to_nanos()));
  arm_rto(link, tx);
}

}  // namespace chk::chklib
