#include "chklib/recovery/line.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

namespace chk::chklib {

std::string_view to_string(LineMode mode) noexcept {
  switch (mode) {
    case LineMode::kStrict: return "strict";
    case LineMode::kOrphanFree: return "orphan-free";
  }
  return "?";
}

namespace {

/// Largest restorable checkpoint index <= x for this history (0 = initial
/// state is always restorable).
std::uint32_t floor_to_saved(const ProcessHistory& history, std::uint32_t x) {
  std::uint32_t best = 0;
  for (std::uint32_t index : history.saved) {
    if (index <= x && index > best) best = index;
  }
  return best;
}

}  // namespace

LineResult compute_recovery_line(const std::vector<ProcessHistory>& histories, LineMode mode) {
  const std::size_t n = histories.size();
  LineResult result;
  result.line.index.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    result.line.index[p] = histories[p].saved.empty() ? 0 : histories[p].saved.back();
  }
  auto& line = result.line.index;

  // Receive-interval lookup for the lost-message rule: (receiver, sender,
  // seq) -> receive interval. A message with no record was never delivered
  // before any saved receiver checkpoint.
  std::vector<std::map<std::pair<Rank, std::uint64_t>, std::uint32_t>> recv_at(n);
  for (std::size_t q = 0; q < n; ++q) {
    for (const RecvRecord& rec : histories[q].recvs) {
      recv_at[q][{rec.src, rec.seq}] = rec.recv_interval;
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    // Orphan rule: a remembered receive whose send is forgotten forces the
    // receiver back to (at latest) the checkpoint preceding the receive.
    for (std::size_t q = 0; q < n; ++q) {
      for (const RecvRecord& rec : histories[q].recvs) {
        if (rec.recv_interval < line[q] && rec.send_interval >= line[rec.src]) {
          line[q] = floor_to_saved(histories[q], rec.recv_interval);
          changed = true;
          ++result.rollbacks;
        }
      }
    }
    if (mode == LineMode::kStrict) {
      // Lost-message rule: a remembered send whose receive is forgotten
      // cannot be regenerated without logging; retract the sender.
      for (std::size_t p = 0; p < n; ++p) {
        for (const SendRecord& rec : histories[p].sends) {
          if (rec.interval >= line[p]) continue;  // send already forgotten
          const auto it = recv_at[rec.dst].find({static_cast<Rank>(p), rec.seq});
          const std::uint32_t recv_interval =
              it == recv_at[rec.dst].end() ? std::numeric_limits<std::uint32_t>::max()
                                           : it->second;
          if (recv_interval >= line[rec.dst]) {
            line[p] = floor_to_saved(histories[p], rec.interval);
            changed = true;
            ++result.rollbacks;
          }
        }
      }
    }
  }
  return result;
}

std::vector<std::vector<std::uint32_t>> reclaimable(
    const std::vector<ProcessHistory>& histories, const RecoveryLine& line) {
  std::vector<std::vector<std::uint32_t>> result(histories.size());
  for (std::size_t p = 0; p < histories.size(); ++p) {
    for (std::uint32_t index : histories[p].saved) {
      if (index != 0 && index < line.index[p]) result[p].push_back(index);
    }
  }
  return result;
}

}  // namespace chk::chklib
