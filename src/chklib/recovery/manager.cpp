#include "chklib/recovery/manager.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "chklib/ckpt/incremental.hpp"

#include "util/format.hpp"
#include "util/logging.hpp"

namespace chk::chklib {

void RecoveryManager::inject_failure_at(des::TimePoint when, Rank rank) {
  rt_->sim().schedule_at(when, [this, rank] {
    if (rt_->apps_done()) return;
    // Timed failures are crashes like any other: with a membership service
    // installed the victim goes silent and the cluster must detect it.
    if (interceptor_ && interceptor_(rank)) return;
    on_failure(rank);
  });
}

void RecoveryManager::fail_now(Rank rank) {
  if (rt_->apps_done()) return;
  if (rt_->sim().current() != nullptr) {
    // Called from a process body (e.g. off a storage write hook fired inside
    // write_blocking). Both the interceptor (it may kill the caller's own
    // rank) and on_failure (it kills every application process — including,
    // possibly, the caller) must run in kernel context, so defer one event.
    rt_->sim().schedule_now([this, rank] {
      if (rt_->apps_done()) return;
      if (interceptor_ && interceptor_(rank)) return;
      on_failure(rank);
    });
    return;
  }
  if (interceptor_ && interceptor_(rank)) return;
  on_failure(rank);
}

void RecoveryManager::recover_now(Rank rank) {
  if (rt_->apps_done()) return;
  if (rt_->sim().current() != nullptr) {
    rt_->sim().schedule_now([this, rank] {
      if (rt_->apps_done()) return;
      on_failure(rank);
    });
    return;
  }
  on_failure(rank);
}

void RecoveryManager::add_observer(RecoveryObserver* observer) {
  if (observer == nullptr) return;
  if (std::find(observers_.begin(), observers_.end(), observer) != observers_.end()) {
    return;
  }
  observers_.push_back(observer);
}

void RecoveryManager::remove_observer(RecoveryObserver* observer) noexcept {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void RecoveryManager::abort_active_recovery() {
  ActiveRecovery aborted = std::move(*active_);
  active_.reset();
  // The crash takes the loader processes down with everything else; a loader
  // that never started never runs. None of them can reach the completion
  // block, so the coalesced recovery below owns all shared state.
  for (des::Process* loader : aborted.loaders) {
    if (!loader->finished()) rt_->sim().kill(*loader);
  }
  RecoveryReport& report = *aborted.report;
  report.interrupted = true;
  report.recovery_latency = rt_->sim().now() - report.failed_at;
  report.logged_sends.clear();  // replay scratch; contract: empty when published
  CHK_INFO("recovery", "restore of rank {} failure interrupted after {}",
           report.failed_rank, report.recovery_latency.str());
  reports_.push_back(report);
}

void RecoveryManager::on_failure(Rank failed) {
  des::Simulator& sim = rt_->sim();
  CHK_INFO("recovery", "node {} failed at {}", failed, sim.now().str());
  if (auto* tracer = rt_->tracer()) {
    tracer->instant(obs::EventKind::kFailure, static_cast<std::uint16_t>(failed),
                    sim.now().to_nanos());
  }

  // Overlapping failure: abort the in-flight restore first so the two
  // recoveries never interleave over shared rank/store/endpoint state.
  if (active_) abort_active_recovery();

  RecoveryReport report;
  report.failed_at = sim.now();
  report.failed_rank = failed;
  report.mid_write = rt_->store().storage().inflight_writes() > 0;

  // Latest saved index per rank, for the domino-depth metric (before
  // prepare_recovery erases post-line images).
  std::vector<std::uint32_t> newest(rt_->num_ranks(), 0);
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    const auto saved = rt_->store().saved_indices(r);
    if (!saved.empty()) newest[r] = saved.back();
  }

  // 1. The whole application goes down: every in-flight message dies with
  //    it, every process stops, and stable-storage writes still in the
  //    pipeline never become durable (no partial/stale image may surface
  //    after the crash, nor count as bytes written).
  rt_->comm().bump_incarnation();
  rt_->kill_apps();
  protocol_->halt();
  rt_->comm().flush_all();
  report.inflight_discarded = rt_->store().storage().discard_inflight_writes();

  // 2+3. Plan the rollback and spawn the loaders. Re-planned from scratch
  //      if a loader finds its generation unreadable.
  active_.emplace();
  active_->report = std::make_shared<RecoveryReport>(std::move(report));
  active_->newest = std::move(newest);
  plan_and_spawn();
}

void RecoveryManager::plan_and_spawn() {
  des::Simulator& sim = rt_->sim();
  auto shared_report = active_->report;
  RecoveryReport& report = *shared_report;

  // Plan the rollback (metadata only, free) against what stable storage
  // still holds — on a re-plan attempt the discarded generation is gone and
  // the line falls back to the newest surviving consistent cut.
  report.line = protocol_->recovery_line();
  report.rolled_to_origin = report.line.at_origin();
  report.domino_depth.assign(rt_->num_ranks(), 0);
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    report.domino_depth[r] = domino_depth(active_->newest[r], report.line.index[r]);
  }
  report.rollback_distance.assign(rt_->num_ranks(), des::Duration());
  protocol_->prepare_recovery(report.line);
  if (active_->attempt == 0) {
    for (RecoveryObserver* obs : observers_) obs->on_recovery_begin(report.failed_rank);
  }

  // Restore: one loader process per rank issues the timed stable-storage
  // reads (they contend at the disk exactly like the writes did).
  active_->pending = std::make_shared<std::size_t>(rt_->num_ranks());
  active_->loaders.clear();
  auto pending = active_->pending;
  const std::uint32_t attempt = active_->attempt;
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    des::Process& loader = sim.spawn(
        util::format("recover-r{}", r),
        [this, r, pending, shared_report, attempt](des::Process& self) {
      RankRuntime& rank = rt_->rank(r);
      const std::uint32_t index = shared_report->line.index[r];
      des::TimePoint restored_from = des::TimePoint::origin();
      if (index == 0) {
        // Initial state: nothing to read; the body reinitializes.
        rank.pending_restore.reset();
        rank.fresh = true;
      } else {
        std::uint64_t blob_bytes = 0;
        auto loaded = rt_->store().try_load_image_blocking(self, r, index, &blob_bytes);
        shared_report->bytes_read += blob_bytes;
        if (!loaded) {
          replan_after_bad_generation(shared_report, attempt, r, {index});
          return;
        }
        CheckpointImage image = std::move(*loaded);
        restored_from = des::TimePoint::from_nanos(image.captured_at_ns);
        std::vector<std::byte> state;
        if (image.delta_base == 0) {
          state = std::move(image.state);
        } else {
          // Incremental chain: read back to the last full image (each read
          // is timed and contends at the disk), then apply the deltas
          // oldest-first. These chain reads are the re-read cost of
          // incremental checkpointing — counted separately as bytes_reread.
          std::vector<CheckpointImage> chain;
          chain.push_back(std::move(image));
          while (chain.back().delta_base != 0) {
            const std::uint32_t pred_index = chain.back().delta_base;
            auto pred =
                rt_->store().try_load_image_blocking(self, r, pred_index, &blob_bytes);
            shared_report->bytes_read += blob_bytes;
            shared_report->bytes_reread += blob_bytes;
            if (!pred) {
              // The whole generation is unusable without its chain: discard
              // the line image together with the unreadable predecessor.
              replan_after_bad_generation(shared_report, attempt, r, {index, pred_index});
              return;
            }
            chain.push_back(std::move(*pred));
          }
          state = std::move(chain.back().state);
          for (auto it = chain.rbegin() + 1; it != chain.rend(); ++it) {
            StateDelta::deserialize(it->state).apply(state);
          }
          image = std::move(chain.front());
        }
        rank.pending_restore = std::move(state);
        rank.fresh = false;
        // Channel counters at the cut: re-sent post-cut messages keep their
        // original sequence numbers and consumed duplicates are dropped.
        rt_->comm().endpoint(r).restore_seq(image.seq);
        // Pessimistic message logging (independent + logging): stash the
        // line's sent payloads; lost ones are replayed once every rank's
        // sequence state is restored (see the completion block below).
        if (!image.sent_log.messages.empty()) {
          auto& logged = shared_report->logged_sends;
          logged.insert(logged.end(),
                        std::make_move_iterator(image.sent_log.messages.begin()),
                        std::make_move_iterator(image.sent_log.messages.end()));
        }
        // Pre-line images also carry payload logs that may be needed
        // (earlier intervals whose receives the line forgot). Collect
        // them from metadata; their bytes were paid for when written.
        // A rotted pre-line image contributes nothing — the line planner
        // already rolled the sender below any unreadable log it may need.
        for (std::uint32_t older : rt_->store().saved_indices(r)) {
          if (older >= index) continue;
          const auto meta = rt_->store().try_peek_image(r, older);
          if (!meta) continue;
          auto& logged = shared_report->logged_sends;
          logged.insert(logged.end(), meta->sent_log.messages.begin(),
                        meta->sent_log.messages.end());
        }
        // Coordinated: replay the in-transit messages of the cut.
        bool log_failed = false;
        if (auto log = rt_->store().try_load_log_blocking(self, r, index, &log_failed)) {
          shared_report->channel_messages_replayed += log->messages.size();
          rt_->comm().endpoint(r).reinject(std::move(log->messages));
        } else if (log_failed) {
          // A cut whose channel log cannot be restored is not executable.
          replan_after_bad_generation(shared_report, attempt, r, {index});
          return;
        }
      }
      shared_report->rollback_distance[r] = shared_report->failed_at - restored_from;
      const std::size_t remaining = --*pending;
      for (RecoveryObserver* obs : observers_) obs->on_restore_progress(r, remaining);
      if (remaining == 0) finish_recovery(shared_report);
    });
    active_->loaders.push_back(&loader);
  }
}

void RecoveryManager::replan_after_bad_generation(std::shared_ptr<RecoveryReport> report,
                                                  std::uint32_t attempt, Rank r,
                                                  std::vector<std::uint32_t> bad) {
  // Called from a loader's own context: defer one event so the re-plan can
  // kill the sibling loaders (and let the caller finish) in kernel context
  // without unwinding anyone mid-body.
  rt_->sim().schedule_now([this, report = std::move(report), attempt, r,
                           bad = std::move(bad)] {
    // Stale trigger: a sibling loader already re-planned this attempt, or a
    // new failure superseded the whole recovery.
    if (!active_ || active_->report != report || active_->attempt != attempt) return;
    CHK_INFO("recovery", "rank {} generation {} unreadable; discarding and re-planning",
             r, bad.front());
    for (des::Process* loader : active_->loaders) {
      if (!loader->finished()) rt_->sim().kill(*loader);
    }
    active_->loaders.clear();
    for (std::uint32_t index : bad) rt_->store().erase(r, index);
    ++report->generations_skipped;
    // Partial restore state from this attempt is rolled back: reinjected
    // replays and restored sequence counters are flushed, the replay
    // scratch restarts empty. bytes_read keeps accumulating — the failed
    // reads did real, timed work.
    report->logged_sends.clear();
    report->channel_messages_replayed = 0;
    rt_->comm().flush_all();
    ++active_->attempt;
    plan_and_spawn();
  });
}

void RecoveryManager::finish_recovery(const std::shared_ptr<RecoveryReport>& shared_report) {
  // 4a. Message-log replay: a logged pre-line send whose consumption
  // is not part of the receiver's restored state was lost with the
  // crash (its sender will not re-send it); re-inject it. This is
  // what makes the orphan-free line executable.
  if (!shared_report->logged_sends.empty()) {
    std::vector<std::vector<Envelope>> by_dst(rt_->num_ranks());
    for (Envelope& env : shared_report->logged_sends) {
      Endpoint& dst = rt_->comm().endpoint(env.dst);
      if (!dst.already_consumed(env.src, env.seq)) {
        by_dst[env.dst].push_back(std::move(env));
      }
    }
    for (Rank q = 0; q < rt_->num_ranks(); ++q) {
      if (by_dst[q].empty()) continue;
      // FIFO per channel: replay in sequence order.
      std::sort(by_dst[q].begin(), by_dst[q].end(),
                [](const Envelope& a, const Envelope& b) {
                  return a.src != b.src ? a.src < b.src : a.seq < b.seq;
                });
      shared_report->channel_messages_replayed += by_dst[q].size();
      rt_->comm().endpoint(q).reinject(std::move(by_dst[q]));
    }
  }
  // The replay scratch must not leak into the published report —
  // "empty in finished reports" is part of its contract (and the
  // moved-from envelopes above would be garbage anyway).
  shared_report->logged_sends.clear();
  // 4b. Everything restored: restart the protocol and the application.
  shared_report->recovery_latency = rt_->sim().now() - shared_report->failed_at;
  active_.reset();
  protocol_->resume_after_recovery();
  rt_->restart_apps();
  reports_.push_back(*shared_report);
  if (auto* tracer = rt_->tracer()) {
    tracer->instant(obs::EventKind::kRecoveryDone,
                    static_cast<std::uint16_t>(shared_report->failed_rank),
                    rt_->sim().now().to_nanos());
  }
  for (RecoveryObserver* obs : observers_) obs->on_recovery_end(reports_.back());
  CHK_INFO("recovery", "restart complete at {} (latency {})", rt_->sim().now().str(),
           shared_report->recovery_latency.str());
}

}  // namespace chk::chklib
