#include "chklib/recovery/manager.hpp"

#include <algorithm>
#include <memory>

#include "chklib/ckpt/incremental.hpp"

#include "util/format.hpp"
#include "util/logging.hpp"

namespace chk::chklib {

void RecoveryManager::inject_failure_at(des::TimePoint when, Rank rank) {
  rt_->sim().schedule_at(when, [this, rank] {
    if (rt_->apps_done()) return;
    on_failure(rank);
  });
}

void RecoveryManager::on_failure(Rank failed) {
  des::Simulator& sim = rt_->sim();
  CHK_INFO("recovery", "node {} failed at {}", failed, sim.now().str());
  if (auto* tracer = rt_->tracer()) {
    tracer->instant(obs::EventKind::kFailure, static_cast<std::uint16_t>(failed),
                    sim.now().to_nanos());
  }

  RecoveryReport report;
  report.failed_at = sim.now();
  report.failed_rank = failed;

  // Latest saved index per rank, for the domino-depth metric (before
  // prepare_recovery erases post-line images).
  std::vector<std::uint32_t> newest(rt_->num_ranks(), 0);
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    const auto saved = rt_->store().saved_indices(r);
    if (!saved.empty()) newest[r] = saved.back();
  }

  // 1. The whole application goes down: every in-flight message dies with
  //    it, every process stops.
  rt_->comm().bump_incarnation();
  rt_->kill_apps();
  protocol_->halt();
  rt_->comm().flush_all();

  // 2. Plan the rollback (metadata only, free).
  report.line = protocol_->recovery_line();
  report.rolled_to_origin = report.line.at_origin();
  report.domino_depth.resize(rt_->num_ranks());
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    report.domino_depth[r] = newest[r] - report.line.index[r];
  }
  protocol_->prepare_recovery(report.line);

  // 3. Restore: one loader process per rank issues the timed stable-storage
  //    reads (they contend at the disk exactly like the writes did).
  auto pending = std::make_shared<std::size_t>(rt_->num_ranks());
  auto shared_report = std::make_shared<RecoveryReport>(std::move(report));
  const std::uint64_t bytes_before = rt_->store().storage().bytes_written();
  (void)bytes_before;
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    sim.spawn(util::format("recover-r{}", r), [this, r, pending, shared_report](des::Process& self) {
      RankRuntime& rank = rt_->rank(r);
      const std::uint32_t index = shared_report->line.index[r];
      des::TimePoint restored_from = des::TimePoint::origin();
      if (index == 0) {
        // Initial state: nothing to read; the body reinitializes.
        rank.pending_restore.reset();
        rank.fresh = true;
      } else {
        CheckpointImage image = rt_->store().load_image_blocking(self, r, index);
        shared_report->bytes_read += image.state.size();
        restored_from = des::TimePoint::from_nanos(image.captured_at_ns);
        std::vector<std::byte> state;
        if (image.delta_base == 0) {
          state = std::move(image.state);
        } else {
          // Incremental chain: read back to the last full image (each read
          // is timed and contends at the disk), then apply the deltas
          // oldest-first.
          std::vector<CheckpointImage> chain;
          chain.push_back(std::move(image));
          while (chain.back().delta_base != 0) {
            CheckpointImage pred =
                rt_->store().load_image_blocking(self, r, chain.back().delta_base);
            shared_report->bytes_read += pred.state.size();
            chain.push_back(std::move(pred));
          }
          state = std::move(chain.back().state);
          for (auto it = chain.rbegin() + 1; it != chain.rend(); ++it) {
            StateDelta::deserialize(it->state).apply(state);
          }
          image = std::move(chain.front());
        }
        rank.pending_restore = std::move(state);
        rank.fresh = false;
        // Channel counters at the cut: re-sent post-cut messages keep their
        // original sequence numbers and consumed duplicates are dropped.
        rt_->comm().endpoint(r).restore_seq(image.seq);
        // Pessimistic message logging (independent + logging): stash the
        // line's sent payloads; lost ones are replayed once every rank's
        // sequence state is restored (see the completion block below).
        if (!image.sent_log.messages.empty()) {
          auto& logged = shared_report->logged_sends;
          logged.insert(logged.end(),
                        std::make_move_iterator(image.sent_log.messages.begin()),
                        std::make_move_iterator(image.sent_log.messages.end()));
        }
        // Pre-line images also carry payload logs that may be needed
        // (earlier intervals whose receives the line forgot). Collect
        // them from metadata; their bytes were paid for when written.
        for (std::uint32_t older : rt_->store().saved_indices(r)) {
          if (older >= index) continue;
          const CheckpointImage meta = rt_->store().peek_image(r, older);
          auto& logged = shared_report->logged_sends;
          logged.insert(logged.end(), meta.sent_log.messages.begin(),
                        meta.sent_log.messages.end());
        }
        // Coordinated: replay the in-transit messages of the cut.
        if (auto log = rt_->store().load_log_blocking(self, r, index)) {
          shared_report->channel_messages_replayed += log->messages.size();
          rt_->comm().endpoint(r).reinject(std::move(log->messages));
        }
      }
      shared_report->rollback_distance.resize(rt_->num_ranks());
      shared_report->rollback_distance[r] = shared_report->failed_at - restored_from;
      if (--*pending == 0) {
        // 4a. Message-log replay: a logged pre-line send whose consumption
        // is not part of the receiver's restored state was lost with the
        // crash (its sender will not re-send it); re-inject it. This is
        // what makes the orphan-free line executable.
        if (!shared_report->logged_sends.empty()) {
          std::vector<std::vector<Envelope>> by_dst(rt_->num_ranks());
          for (Envelope& env : shared_report->logged_sends) {
            Endpoint& dst = rt_->comm().endpoint(env.dst);
            if (!dst.already_consumed(env.src, env.seq)) {
              by_dst[env.dst].push_back(std::move(env));
            }
          }
          for (Rank q = 0; q < rt_->num_ranks(); ++q) {
            if (by_dst[q].empty()) continue;
            // FIFO per channel: replay in sequence order.
            std::sort(by_dst[q].begin(), by_dst[q].end(),
                      [](const Envelope& a, const Envelope& b) {
                        return a.src != b.src ? a.src < b.src : a.seq < b.seq;
                      });
            shared_report->channel_messages_replayed += by_dst[q].size();
            rt_->comm().endpoint(q).reinject(std::move(by_dst[q]));
          }
        }
        // The replay scratch must not leak into the published report —
        // "empty in finished reports" is part of its contract (and the
        // moved-from envelopes above would be garbage anyway).
        shared_report->logged_sends.clear();
        // 4b. Everything restored: restart the protocol and the application.
        shared_report->recovery_latency = rt_->sim().now() - shared_report->failed_at;
        protocol_->resume_after_recovery();
        rt_->restart_apps();
        reports_.push_back(*shared_report);
        if (auto* tracer = rt_->tracer()) {
          tracer->instant(obs::EventKind::kRecoveryDone,
                          static_cast<std::uint16_t>(shared_report->failed_rank),
                          rt_->sim().now().to_nanos());
        }
        CHK_INFO("recovery", "restart complete at {} (latency {})", rt_->sim().now().str(),
                 shared_report->recovery_latency.str());
      }
    });
  }
}

}  // namespace chk::chklib
