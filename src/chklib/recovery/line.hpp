// Recovery-line computation for independent checkpointing.
//
// Each saved checkpoint of rank p carries the send/receive records of the
// interval that preceded it (interval k = execution between checkpoints k
// and k+1; records of interval k are stored in checkpoint k+1). Given a
// candidate line L (checkpoint index per rank, 0 = initial state):
//
//   * a send by p in interval s is REMEMBERED iff s <  L[p]
//   * a receive by q in interval r is REMEMBERED iff r < L[q]
//
// A line is consistent iff no message is an ORPHAN (receive remembered,
// send forgotten) and — in strict mode — no message is LOST (send
// remembered, receive forgotten). The maximal consistent line is computed
// by the classic rollback-propagation fixpoint: start from the newest
// checkpoints and repeatedly retract the offending side. Strict mode is
// Randell's domino-effect model (no logging: a crossing message cannot be
// regenerated); orphan-free mode is the weaker Wang-style line that a
// message-logging add-on would make sufficient, and is what the
// checkpoint-space reclamation of [12] garbage-collects against.
#pragma once

#include <cstdint>
#include <vector>

#include "chklib/ckpt/image.hpp"
#include "chklib/proto/protocol.hpp"

namespace chk::chklib {

enum class LineMode {
  kStrict,      ///< no crossing messages at all (domino-prone, log-free recovery)
  kOrphanFree,  ///< no orphans only (requires message logging to execute)
};

[[nodiscard]] std::string_view to_string(LineMode mode) noexcept;

/// One process's saved-checkpoint metadata, newest last.
struct ProcessHistory {
  Rank rank = 0;
  /// Ascending saved checkpoint indices (not necessarily contiguous after GC).
  std::vector<std::uint32_t> saved;
  /// All records from the saved checkpoints, merged.
  std::vector<SendRecord> sends;
  std::vector<RecvRecord> recvs;
};

struct LineResult {
  RecoveryLine line;
  std::uint32_t iterations = 0;       ///< fixpoint sweeps until stable
  std::uint64_t rollbacks = 0;        ///< individual retraction steps (domino cascades)
};

/// Compute the maximal consistent line <= the newest saved checkpoints.
/// Histories must be indexed by rank and cover every rank.
[[nodiscard]] LineResult compute_recovery_line(const std::vector<ProcessHistory>& histories,
                                               LineMode mode);

/// Checkpoints strictly below the line are unreachable by any future
/// recovery and can be reclaimed. Returns per-rank lists of indices to
/// delete (index 0, the implicit initial state, is never listed).
[[nodiscard]] std::vector<std::vector<std::uint32_t>> reclaimable(
    const std::vector<ProcessHistory>& histories, const RecoveryLine& line);

}  // namespace chk::chklib
