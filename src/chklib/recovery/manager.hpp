// Whole-application rollback recovery.
//
// Failure model (matching the paper's system class): a node failure takes
// the whole application down; recovery rolls every process back to a
// consistent global state — the last committed global checkpoint for
// coordinated schemes, the computed recovery line (possibly dominoing to
// the initial state) for independent schemes — restores process states
// from stable storage with fully timed reads, replays logged channel
// contents (coordinated), and restarts the application processes.
//
// Failures are serialized: a failure that lands while a previous restore is
// still in flight aborts that restore (its loader processes die with the
// crash, its partial report is published with `interrupted` set) and starts
// a fresh recovery from the surviving stable-storage state. Stable-storage
// writes that were in the pipeline at the instant of failure are discarded —
// a crashed node cannot complete a checkpoint write.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "chklib/proto/protocol.hpp"
#include "chklib/runtime.hpp"
#include "des/time.hpp"

namespace chk::chklib {

struct RecoveryReport {
  des::TimePoint failed_at;
  Rank failed_rank = 0;
  des::Duration recovery_latency;  ///< failure -> all processes restarted
  RecoveryLine line;
  /// failure time minus restored checkpoint capture time, per rank (work lost).
  std::vector<des::Duration> rollback_distance;
  /// newest saved index minus restored index, per rank (domino depth).
  std::vector<std::uint32_t> domino_depth;
  /// Stable-storage image bytes read back during restore (channel logs are
  /// metadata-sized and excluded). Includes bytes_reread.
  std::uint64_t bytes_read = 0;
  /// The incremental-chain share of bytes_read: predecessor full images and
  /// deltas read *in addition to* each rank's line image.
  std::uint64_t bytes_reread = 0;
  std::uint64_t channel_messages_replayed = 0;
  /// Checkpoint generations the restore had to discard and fall back past:
  /// a planned line image (or one of its delta-chain predecessors, or its
  /// channel log) turned out unreadable — terminal read error or bit-rot —
  /// so the bad generation was erased and the rollback re-planned against
  /// the surviving stable-storage state.
  std::uint32_t generations_skipped = 0;
  bool rolled_to_origin = false;
  /// The failure landed while checkpoint stable-storage writes were still in
  /// the mesh/host-link/disk pipeline (those writes were discarded).
  bool mid_write = false;
  /// Number of in-flight stable-storage writes the crash invalidated.
  std::uint64_t inflight_discarded = 0;
  /// This recovery's restore was aborted by a subsequent overlapping
  /// failure; the report is partial (recovery_latency covers only the time
  /// until the second failure, and the application did not restart from it).
  bool interrupted = false;
  /// Scratch during recovery: payload-logged sends awaiting lost-message
  /// replay (independent + message logging); empty in finished reports.
  std::vector<Envelope> logged_sends;
};

/// Domino depth of one rank: how many newer-than-restored checkpoints the
/// rollback discards. GC or discarded in-flight writes can leave the newest
/// saved index below the line momentarily — clamp to zero instead of
/// wrapping the unsigned subtraction.
[[nodiscard]] constexpr std::uint32_t domino_depth(std::uint32_t newest,
                                                   std::uint32_t restored) noexcept {
  return newest > restored ? newest - restored : 0;
}

/// Passive observer of recovery lifecycle, for fault injection and tests.
/// All callbacks run in kernel context except on_restore_progress, which
/// runs in a loader process's context — observers must only inspect state
/// or schedule simulator events, never call back into RecoveryManager
/// synchronously.
class RecoveryObserver {
 public:
  virtual ~RecoveryObserver() = default;
  virtual void on_recovery_begin(Rank /*failed*/) {}
  /// One rank's restore finished; `remaining` ranks are still loading.
  virtual void on_restore_progress(Rank /*restored*/, std::size_t /*remaining*/) {}
  virtual void on_recovery_end(const RecoveryReport& /*report*/) {}
};

class RecoveryManager {
 public:
  RecoveryManager(Runtime& runtime, Protocol& protocol)
      : rt_(&runtime), protocol_(&protocol) {}
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Schedule a crash of `rank` at absolute simulated time `when`. If the
  /// application has already finished by then, the failure is a no-op.
  void inject_failure_at(des::TimePoint when, Rank rank);

  /// Crash `rank` now. Safe from both kernel and process context (a strike
  /// originating inside a running process — e.g. triggered off a storage
  /// write hook — is deferred one event so the failure bookkeeping never
  /// unwinds the caller's own stack). No-op once the application is done.
  /// With a failure interceptor installed, the crash is handed to it
  /// instead of the oracle rollback below.
  void fail_now(Rank rank);

  /// Trigger the whole-application rollback now, bypassing any installed
  /// failure interceptor. The membership service calls this once detection
  /// has run its course (eviction confirmed, rejoin grace expired); same
  /// context-safety and no-op rules as fail_now.
  void recover_now(Rank rank);

  /// When set and returning true for a rank, fail_now hands the crash to
  /// the interceptor (the membership service's crash model: the rank goes
  /// silent and the cluster must *detect* it) instead of rolling back
  /// immediately. Always invoked in kernel context.
  using FailureInterceptor = std::function<bool(Rank)>;
  void set_failure_interceptor(FailureInterceptor interceptor) noexcept {
    interceptor_ = std::move(interceptor);
  }

  /// A restore is in flight (loader processes still pending).
  [[nodiscard]] bool recovering() const noexcept { return active_.has_value(); }

  /// Whether a failure at this instant would roll back to a non-origin line,
  /// i.e. the restore would issue timed stable-storage reads. Metadata-only
  /// planning query (the protocols' recovery_line() is pure); used by fault
  /// injection to target failures whose recovery actually has a restore
  /// window.
  [[nodiscard]] bool restore_would_read() const {
    return !protocol_->recovery_line().at_origin();
  }

  /// Observers are notified in registration order; duplicates are ignored.
  void add_observer(RecoveryObserver* observer);
  void remove_observer(RecoveryObserver* observer) noexcept;

  [[nodiscard]] const std::vector<RecoveryReport>& reports() const noexcept { return reports_; }

 private:
  void on_failure(Rank failed);
  void abort_active_recovery();
  /// Compute the line against the current stable-storage state, reset the
  /// protocol, and spawn one loader per rank. Called once per attempt —
  /// initially from on_failure, again after each discarded generation.
  void plan_and_spawn();
  /// A loader found its generation unreadable (terminal read error or
  /// bit-rot). Erase the `bad` indices at rank `r`, bump
  /// generations_skipped, and re-plan the rollback one event later in
  /// kernel context. `attempt` guards against stale triggers (a sibling
  /// loader re-planned first, or a new failure superseded this recovery).
  void replan_after_bad_generation(std::shared_ptr<RecoveryReport> report,
                                   std::uint32_t attempt, Rank r,
                                   std::vector<std::uint32_t> bad);
  void finish_recovery(const std::shared_ptr<RecoveryReport>& shared_report);

  /// The restore currently in flight, if any.
  struct ActiveRecovery {
    std::shared_ptr<RecoveryReport> report;
    std::shared_ptr<std::size_t> pending;  ///< loader ranks not yet restored
    std::vector<des::Process*> loaders;
    /// Newest saved index per rank at failure time (domino-depth metric).
    std::vector<std::uint32_t> newest;
    std::uint32_t attempt = 0;  ///< restore attempts (re-plans) so far
  };

  Runtime* rt_;
  Protocol* protocol_;
  std::vector<RecoveryObserver*> observers_;
  FailureInterceptor interceptor_;
  std::optional<ActiveRecovery> active_;
  std::vector<RecoveryReport> reports_;
};

}  // namespace chk::chklib
