// Whole-application rollback recovery.
//
// Failure model (matching the paper's system class): a node failure takes
// the whole application down; recovery rolls every process back to a
// consistent global state — the last committed global checkpoint for
// coordinated schemes, the computed recovery line (possibly dominoing to
// the initial state) for independent schemes — restores process states
// from stable storage with fully timed reads, replays logged channel
// contents (coordinated), and restarts the application processes.
#pragma once

#include <cstdint>
#include <vector>

#include "chklib/proto/protocol.hpp"
#include "chklib/runtime.hpp"
#include "des/time.hpp"

namespace chk::chklib {

struct RecoveryReport {
  des::TimePoint failed_at;
  Rank failed_rank = 0;
  des::Duration recovery_latency;  ///< failure -> all processes restarted
  RecoveryLine line;
  /// failure time minus restored checkpoint capture time, per rank (work lost).
  std::vector<des::Duration> rollback_distance;
  /// newest saved index minus restored index, per rank (domino depth).
  std::vector<std::uint32_t> domino_depth;
  std::uint64_t bytes_read = 0;
  std::uint64_t channel_messages_replayed = 0;
  bool rolled_to_origin = false;
  /// Scratch during recovery: payload-logged sends awaiting lost-message
  /// replay (independent + message logging); empty in finished reports.
  std::vector<Envelope> logged_sends;
};

class RecoveryManager {
 public:
  RecoveryManager(Runtime& runtime, Protocol& protocol)
      : rt_(&runtime), protocol_(&protocol) {}
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Schedule a crash of `rank` at absolute simulated time `when`. If the
  /// application has already finished by then, the failure is a no-op.
  void inject_failure_at(des::TimePoint when, Rank rank);

  [[nodiscard]] const std::vector<RecoveryReport>& reports() const noexcept { return reports_; }

 private:
  void on_failure(Rank failed);

  Runtime* rt_;
  Protocol* protocol_;
  std::vector<RecoveryReport> reports_;
};

}  // namespace chk::chklib
