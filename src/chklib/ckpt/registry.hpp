// Checkpoint registry: the application-visible state description.
//
// An application registers the memory regions that constitute its
// recoverable state (arrays, counters, RNG state). capture() serializes
// them into a blob; restore() copies a blob back into the same regions,
// matching by name and size. This mirrors CHK-LIB's user-defined
// checkpointing interface (the application declares its state; the
// checkpointer thread saves it).
//
// Regions come in two kinds. Fixed regions are raw spans that must stay
// valid (same address, same size) for the registration's lifetime — the
// right shape for batch kernels whose arrays never resize. Dynamic
// regions are accessor pairs re-read at every capture, so their size may
// change between checkpoints (the svc shard grows and shrinks with its
// put/delete mix); restore resizes the target. Both serialize the same
// way (name + length-prefixed bytes), so the image wire format — and
// every consumer of it (checksums, incremental deltas, stable storage) —
// is unchanged.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace chk::chklib {

class RegistryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CheckpointRegistry {
 public:
  /// Reads the current bytes of a dynamic region (must stay valid only for
  /// the duration of the capture call).
  using DynamicCapture = std::function<std::span<const std::byte>()>;
  /// Writes restored bytes back, resizing the underlying container.
  using DynamicRestore = std::function<void(std::span<const std::byte>)>;

  /// Register a writable region under a unique name. The region must stay
  /// valid (same address, same size) until clear().
  void register_region(std::string name, std::span<std::byte> bytes);

  /// Register a variable-size region through accessors. capture() calls
  /// `cap` for the current contents; restore() hands the saved bytes to
  /// `res`, which must resize its target to fit.
  void register_dynamic(std::string name, DynamicCapture cap, DynamicRestore res);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void register_value(std::string name, T& value) {
    register_region(std::move(name), util::as_writable_bytes_of(value));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void register_vector(std::string name, std::vector<T>& v) {
    register_region(std::move(name), util::as_writable_bytes_of(v));
  }

  /// Register a vector whose *size* is part of the recoverable state: the
  /// capture re-reads data()/size() every time, and restore resizes. The
  /// vector object itself must outlive the registration; its heap buffer
  /// may move freely.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void register_dynamic_vector(std::string name, std::vector<T>& v) {
    register_dynamic(
        std::move(name),
        [&v]() -> std::span<const std::byte> {
          return {reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T)};
        },
        [&v](std::span<const std::byte> bytes) {
          if (bytes.size() % sizeof(T) != 0) {
            throw RegistryError("dynamic vector restore: byte count not a multiple "
                                "of the element size");
          }
          v.resize(bytes.size() / sizeof(T));
          if (!bytes.empty()) std::memcpy(v.data(), bytes.data(), bytes.size());
        });
  }

  /// Forget all regions (application restart re-registers).
  void clear() noexcept { regions_.clear(); }

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  /// Total registered state size in bytes (the checkpoint payload size at
  /// this instant; dynamic regions contribute their current size).
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  /// Serialize all regions.
  [[nodiscard]] std::vector<std::byte> capture() const;

  /// Copy a captured blob back into the registered regions. Throws
  /// RegistryError on any name mismatch or fixed-region size mismatch
  /// (regions must be registered identically across restarts); dynamic
  /// regions accept any saved size.
  void restore(std::span<const std::byte> blob);

 private:
  struct Region {
    std::string name;
    std::span<std::byte> bytes;  ///< fixed regions only
    DynamicCapture dyn_capture;  ///< non-null => dynamic region
    DynamicRestore dyn_restore;
  };
  void check_unique(const std::string& name) const;
  std::vector<Region> regions_;
};

}  // namespace chk::chklib
