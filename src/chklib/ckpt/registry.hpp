// Checkpoint registry: the application-visible state description.
//
// An application registers the memory regions that constitute its
// recoverable state (arrays, counters, RNG state). capture() serializes
// them into a blob; restore() copies a blob back into the same regions,
// matching by name and size. This mirrors CHK-LIB's user-defined
// checkpointing interface (the application declares its state; the
// checkpointer thread saves it).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace chk::chklib {

class RegistryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CheckpointRegistry {
 public:
  /// Register a writable region under a unique name. The region must stay
  /// valid (same address, same size) until clear().
  void register_region(std::string name, std::span<std::byte> bytes);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void register_value(std::string name, T& value) {
    register_region(std::move(name), util::as_writable_bytes_of(value));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void register_vector(std::string name, std::vector<T>& v) {
    register_region(std::move(name), util::as_writable_bytes_of(v));
  }

  /// Forget all regions (application restart re-registers).
  void clear() noexcept { regions_.clear(); }

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  /// Total registered state size in bytes (the checkpoint payload size).
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  /// Serialize all regions.
  [[nodiscard]] std::vector<std::byte> capture() const;

  /// Copy a captured blob back into the registered regions. Throws
  /// RegistryError on any name/size mismatch (regions must be registered
  /// identically across restarts).
  void restore(std::span<const std::byte> blob);

 private:
  struct Region {
    std::string name;
    std::span<std::byte> bytes;
  };
  std::vector<Region> regions_;
};

}  // namespace chk::chklib
