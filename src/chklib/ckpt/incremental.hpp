// Incremental checkpointing.
//
// The paper's related work ([13], Elnozahy et al.'s consistent-checkpointing
// study) reduced the dominant cost — writing checkpoints to stable storage —
// with incremental and copy-on-write techniques. This module implements the
// incremental part for the reproduction: the registered state is hashed in
// fixed-size chunks; a delta image stores only the chunks that changed since
// the previous checkpoint, and recovery reconstructs the state by applying
// the delta chain on top of the last full image.
//
// Pays off exactly where the paper's workloads suggest: ISING's quenched
// coupling arrays never change after initialization, GAUSS rows freeze once
// the pivot passes them — while SOR dirties its whole grid every sweep and
// gains nothing (the ablation bench shows both).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chklib/ckpt/registry.hpp"
#include "util/serialize.hpp"

namespace chk::chklib {

/// A delta between two full state blobs of identical layout.
struct StateDelta {
  std::uint64_t full_size = 0;          ///< size of the full blob it patches to
  std::uint32_t chunk_size = 0;
  std::vector<std::uint32_t> chunks;    ///< indices of changed chunks
  std::vector<std::byte> data;          ///< concatenated changed-chunk bytes

  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static StateDelta deserialize(std::span<const std::byte> blob);

  /// Patch `base` in place (base must be the predecessor state).
  void apply(std::vector<std::byte>& base) const;

  [[nodiscard]] std::size_t payload_bytes() const noexcept { return data.size(); }
};

/// Per-process dirty-chunk tracker. capture_full() establishes a baseline;
/// capture_delta() diffs the current blob against the remembered hashes.
class IncrementalTracker {
 public:
  explicit IncrementalTracker(std::uint32_t chunk_size = 4096) : chunk_size_(chunk_size) {}

  /// Record the baseline hashes of a full capture.
  void rebase(std::span<const std::byte> full_blob);

  /// Diff `full_blob` against the baseline and advance the baseline.
  /// The blob must have the same size as the baseline (same registry
  /// layout); otherwise a full rebase is required (returns nullopt).
  [[nodiscard]] std::optional<StateDelta> capture_delta(std::span<const std::byte> full_blob);

  [[nodiscard]] bool has_baseline() const noexcept { return !hashes_.empty() || size_ > 0; }
  void reset() noexcept {
    hashes_.clear();
    size_ = 0;
  }

 private:
  std::uint32_t chunk_size_;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> hashes_;
};

}  // namespace chk::chklib
