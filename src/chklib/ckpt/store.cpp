#include "chklib/ckpt/store.hpp"

#include "util/format.hpp"

namespace chk::chklib {

std::string CheckpointStore::image_key(Rank rank, std::uint32_t index) {
  return util::format("ckpt/p{}/v{:08}", rank, index);
}

std::string CheckpointStore::log_key(Rank rank, std::uint32_t index) {
  return image_key(rank, index) + ".log";
}

void CheckpointStore::write_image(Rank rank, const CheckpointImage& image,
                                  std::function<void()> on_durable) {
  const std::uint32_t index = image.index;
  if (observer_ != nullptr) observer_->on_image_write_begin(rank, index);
  storage_->write(rank, image_key(rank, index), image.serialize(),
                  [this, rank, index, on_durable = std::move(on_durable)] {
                    if (observer_ != nullptr) observer_->on_image_write_end(rank, index);
                    if (on_durable) on_durable();
                  });
}

void CheckpointStore::trace_write(des::Process& self, obs::EventKind kind, Rank rank,
                                  std::int64_t t0_ns, std::size_t bytes,
                                  std::uint32_t arg) const {
  if (tracer_ == nullptr) return;
  const auto pure = storage_->pure_write_time(rank, bytes);
  tracer_->span(kind, static_cast<std::uint16_t>(rank), t0_ns, self.sim().now().to_nanos(),
                static_cast<std::uint64_t>(pure.to_nanos()), arg);
}

void CheckpointStore::write_image_blocking(des::Process& self, Rank rank,
                                           const CheckpointImage& image,
                                           WriteContext context) {
  if (observer_ != nullptr) observer_->on_image_write_begin(rank, image.index);
  auto blob = image.serialize();
  const std::size_t bytes = blob.size();
  const std::int64_t t0 = self.sim().now().to_nanos();
  storage_->write_blocking(self, rank, image_key(rank, image.index), std::move(blob));
  trace_write(self, obs::EventKind::kStableWrite, rank, t0, bytes,
              static_cast<std::uint32_t>(context));
  if (observer_ != nullptr) observer_->on_image_write_end(rank, image.index);
}

void CheckpointStore::write_log_blocking(des::Process& self, Rank rank, std::uint32_t index,
                                         const ChannelLog& log, WriteContext context) {
  auto blob = log.serialize();
  const std::size_t bytes = blob.size();
  const std::int64_t t0 = self.sim().now().to_nanos();
  storage_->write_blocking(self, rank, log_key(rank, index), std::move(blob));
  trace_write(self, obs::EventKind::kLogWrite, rank, t0, bytes,
              static_cast<std::uint32_t>(context));
}

void CheckpointStore::write_commit_blocking(des::Process& self, Rank coordinator_node,
                                            std::uint32_t epoch) {
  util::ByteWriter writer;
  writer.put(epoch);
  writer.put<std::uint32_t>(~epoch);  // trivial integrity check
  auto blob = writer.take();
  const std::size_t bytes = blob.size();
  const std::int64_t t0 = self.sim().now().to_nanos();
  storage_->write_blocking(self, coordinator_node, "ckpt/commit", std::move(blob));
  trace_write(self, obs::EventKind::kCommitWrite, coordinator_node, t0, bytes, epoch);
  committed_epoch_ = epoch;
}

CheckpointImage CheckpointStore::load_image_blocking(des::Process& self, Rank reader,
                                                     std::uint32_t index,
                                                     std::uint64_t* blob_bytes) {
  const std::int64_t t0 = self.sim().now().to_nanos();
  const auto blob = storage_->read_blocking(self, reader, image_key(reader, index));
  if (blob_bytes != nullptr) *blob_bytes = blob.size();
  if (tracer_ != nullptr) {
    tracer_->span(obs::EventKind::kRecoveryRead, static_cast<std::uint16_t>(reader), t0,
                  self.sim().now().to_nanos(), blob.size());
  }
  return CheckpointImage::deserialize(blob);
}

std::optional<ChannelLog> CheckpointStore::load_log_blocking(des::Process& self, Rank reader,
                                                             std::uint32_t index) {
  const std::string key = log_key(reader, index);
  if (!storage_->exists(key)) return std::nullopt;
  const auto blob = storage_->read_blocking(self, reader, key);
  return ChannelLog::deserialize(blob);
}

bool CheckpointStore::has_image(Rank rank, std::uint32_t index) const {
  return storage_->exists(image_key(rank, index));
}

std::vector<std::uint32_t> CheckpointStore::saved_indices(Rank rank) const {
  std::vector<std::uint32_t> indices;
  const std::string prefix = util::format("ckpt/p{}/v", rank);
  for (const auto& key : storage_->keys_with_prefix(prefix)) {
    if (key.ends_with(".log")) continue;
    indices.push_back(
        static_cast<std::uint32_t>(std::stoul(key.substr(prefix.size()))));
  }
  return indices;  // map order => ascending
}

CheckpointImage CheckpointStore::peek_image(Rank rank, std::uint32_t index) const {
  // Metadata-only access: no timed I/O. Recovery uses load_image_blocking
  // for the actual state transfer.
  const std::string key = image_key(rank, index);
  if (!storage_->exists(key)) {
    throw util::SerializeError(util::format("peek_image: no image {}", key));
  }
  // StableStorage does not expose raw bytes directly; reuse the keyed size
  // check through read path? The store keeps it simple: the blob is fetched
  // via the storage's internal map using a zero-time accessor.
  return CheckpointImage::deserialize(storage_->peek(key));
}

void CheckpointStore::erase(Rank rank, std::uint32_t index) {
  storage_->erase(image_key(rank, index));
  storage_->erase(log_key(rank, index));
}

std::uint64_t CheckpointStore::bytes_for(Rank rank) const {
  std::uint64_t total = 0;
  for (const auto& key : storage_->keys_with_prefix(util::format("ckpt/p{}/", rank))) {
    total += storage_->size(key);
  }
  return total;
}

std::uint64_t CheckpointStore::total_checkpoint_bytes() const {
  std::uint64_t total = 0;
  for (const auto& key : storage_->keys_with_prefix("ckpt/")) total += storage_->size(key);
  return total;
}

std::size_t CheckpointStore::checkpoint_count() const {
  std::size_t count = 0;
  for (const auto& key : storage_->keys_with_prefix("ckpt/p")) {
    if (!key.ends_with(".log")) ++count;
  }
  return count;
}

}  // namespace chk::chklib
