#include "chklib/ckpt/store.hpp"

#include "util/format.hpp"

namespace chk::chklib {

std::string CheckpointStore::image_key(Rank rank, std::uint32_t index) {
  return util::format("ckpt/p{}/v{:08}", rank, index);
}

std::string CheckpointStore::log_key(Rank rank, std::uint32_t index) {
  return image_key(rank, index) + ".log";
}

void CheckpointStore::write_image(Rank rank, const CheckpointImage& image,
                                  std::function<void()> on_durable) {
  const std::uint32_t index = image.index;
  if (observer_ != nullptr) observer_->on_image_write_begin(rank, index);
  storage_->write(rank, image_key(rank, index), image.serialize(),
                  [this, rank, index, on_durable = std::move(on_durable)] {
                    if (observer_ != nullptr) observer_->on_image_write_end(rank, index);
                    if (on_durable) on_durable();
                  });
}

void CheckpointStore::write_image_blocking(des::Process& self, Rank rank,
                                           const CheckpointImage& image) {
  if (observer_ != nullptr) observer_->on_image_write_begin(rank, image.index);
  storage_->write_blocking(self, rank, image_key(rank, image.index), image.serialize());
  if (observer_ != nullptr) observer_->on_image_write_end(rank, image.index);
}

void CheckpointStore::write_log_blocking(des::Process& self, Rank rank, std::uint32_t index,
                                         const ChannelLog& log) {
  storage_->write_blocking(self, rank, log_key(rank, index), log.serialize());
}

void CheckpointStore::write_commit_blocking(des::Process& self, Rank coordinator_node,
                                            std::uint32_t epoch) {
  util::ByteWriter writer;
  writer.put(epoch);
  writer.put<std::uint32_t>(~epoch);  // trivial integrity check
  storage_->write_blocking(self, coordinator_node, "ckpt/commit", writer.take());
  committed_epoch_ = epoch;
}

CheckpointImage CheckpointStore::load_image_blocking(des::Process& self, Rank reader,
                                                     std::uint32_t index) {
  const auto blob = storage_->read_blocking(self, reader, image_key(reader, index));
  return CheckpointImage::deserialize(blob);
}

std::optional<ChannelLog> CheckpointStore::load_log_blocking(des::Process& self, Rank reader,
                                                             std::uint32_t index) {
  const std::string key = log_key(reader, index);
  if (!storage_->exists(key)) return std::nullopt;
  const auto blob = storage_->read_blocking(self, reader, key);
  return ChannelLog::deserialize(blob);
}

bool CheckpointStore::has_image(Rank rank, std::uint32_t index) const {
  return storage_->exists(image_key(rank, index));
}

std::vector<std::uint32_t> CheckpointStore::saved_indices(Rank rank) const {
  std::vector<std::uint32_t> indices;
  const std::string prefix = util::format("ckpt/p{}/v", rank);
  for (const auto& key : storage_->keys_with_prefix(prefix)) {
    if (key.ends_with(".log")) continue;
    indices.push_back(
        static_cast<std::uint32_t>(std::stoul(key.substr(prefix.size()))));
  }
  return indices;  // map order => ascending
}

CheckpointImage CheckpointStore::peek_image(Rank rank, std::uint32_t index) const {
  // Metadata-only access: no timed I/O. Recovery uses load_image_blocking
  // for the actual state transfer.
  const std::string key = image_key(rank, index);
  if (!storage_->exists(key)) {
    throw util::SerializeError(util::format("peek_image: no image {}", key));
  }
  // StableStorage does not expose raw bytes directly; reuse the keyed size
  // check through read path? The store keeps it simple: the blob is fetched
  // via the storage's internal map using a zero-time accessor.
  return CheckpointImage::deserialize(storage_->peek(key));
}

void CheckpointStore::erase(Rank rank, std::uint32_t index) {
  storage_->erase(image_key(rank, index));
  storage_->erase(log_key(rank, index));
}

std::uint64_t CheckpointStore::bytes_for(Rank rank) const {
  std::uint64_t total = 0;
  for (const auto& key : storage_->keys_with_prefix(util::format("ckpt/p{}/", rank))) {
    total += storage_->size(key);
  }
  return total;
}

std::uint64_t CheckpointStore::total_checkpoint_bytes() const {
  std::uint64_t total = 0;
  for (const auto& key : storage_->keys_with_prefix("ckpt/")) total += storage_->size(key);
  return total;
}

std::size_t CheckpointStore::checkpoint_count() const {
  std::size_t count = 0;
  for (const auto& key : storage_->keys_with_prefix("ckpt/p")) {
    if (!key.ends_with(".log")) ++count;
  }
  return count;
}

}  // namespace chk::chklib
