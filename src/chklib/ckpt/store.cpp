#include "chklib/ckpt/store.hpp"

#include "util/format.hpp"

namespace chk::chklib {

std::string CheckpointStore::image_key(Rank rank, std::uint32_t index) {
  return util::format("ckpt/p{}/v{:08}", rank, index);
}

std::string CheckpointStore::log_key(Rank rank, std::uint32_t index) {
  return image_key(rank, index) + ".log";
}

xplorer::IoStatus CheckpointStore::write_image_blocking(des::Process& self, Rank rank,
                                                        const CheckpointImage& image,
                                                        WriteContext context) {
  // The observer brackets the whole operation, retries included: the
  // stagger invariant is about the rank occupying the write pipeline,
  // which it does for every attempt.
  if (observer_ != nullptr) observer_->on_image_write_begin(rank, image.index);
  const xplorer::IoStatus status = client_.write_blocking(
      self, rank, image_key(rank, image.index), image.serialize(),
      obs::EventKind::kStableWrite, static_cast<std::uint32_t>(context),
      context == WriteContext::kAppBlocking);
  if (observer_ != nullptr) observer_->on_image_write_end(rank, image.index);
  return status;
}

xplorer::IoStatus CheckpointStore::write_log_blocking(des::Process& self, Rank rank,
                                                      std::uint32_t index,
                                                      const ChannelLog& log,
                                                      WriteContext context) {
  return client_.write_blocking(self, rank, log_key(rank, index), log.serialize(),
                                obs::EventKind::kLogWrite,
                                static_cast<std::uint32_t>(context),
                                context == WriteContext::kAppBlocking);
}

xplorer::IoStatus CheckpointStore::write_commit_blocking(des::Process& self,
                                                         Rank coordinator_node,
                                                         std::uint32_t epoch) {
  util::ByteWriter writer;
  writer.put(epoch);
  writer.put<std::uint32_t>(~epoch);  // trivial integrity check
  const xplorer::IoStatus status = client_.write_blocking(
      self, coordinator_node, "ckpt/commit", writer.take(),
      obs::EventKind::kCommitWrite, epoch, /*app_blocking=*/false);
  if (status == xplorer::IoStatus::kOk) committed_epoch_ = epoch;
  return status;
}

CheckpointImage CheckpointStore::load_image_blocking(des::Process& self, Rank reader,
                                                     std::uint32_t index,
                                                     std::uint64_t* blob_bytes) {
  const std::int64_t t0 = self.sim().now().to_nanos();
  std::vector<std::byte> blob;
  const xplorer::IoStatus status =
      client_.read_blocking(self, reader, image_key(reader, index), &blob);
  if (blob_bytes != nullptr) *blob_bytes = blob.size();
  if (tracer_ != nullptr) {
    tracer_->span(obs::EventKind::kRecoveryRead, static_cast<std::uint16_t>(reader), t0,
                  self.sim().now().to_nanos(), blob.size());
  }
  if (status != xplorer::IoStatus::kOk) {
    throw util::SerializeError(
        util::format("load_image: terminal read error on {}", image_key(reader, index)));
  }
  return CheckpointImage::deserialize(blob);
}

std::optional<CheckpointImage> CheckpointStore::try_load_image_blocking(
    des::Process& self, Rank reader, std::uint32_t index, std::uint64_t* blob_bytes) {
  const std::int64_t t0 = self.sim().now().to_nanos();
  std::vector<std::byte> blob;
  const xplorer::IoStatus status =
      client_.read_blocking(self, reader, image_key(reader, index), &blob);
  // The read is charged whether or not it restores anything: a failed or
  // corrupt read still moved (up to) blob.size() bytes through the disk.
  if (blob_bytes != nullptr) *blob_bytes = blob.size();
  if (tracer_ != nullptr) {
    tracer_->span(obs::EventKind::kRecoveryRead, static_cast<std::uint16_t>(reader), t0,
                  self.sim().now().to_nanos(), blob.size());
  }
  if (status != xplorer::IoStatus::kOk) return std::nullopt;
  try {
    return CheckpointImage::deserialize(blob);
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
}

std::optional<ChannelLog> CheckpointStore::load_log_blocking(des::Process& self, Rank reader,
                                                             std::uint32_t index) {
  const std::string key = log_key(reader, index);
  if (!storage_->exists(key)) return std::nullopt;
  std::vector<std::byte> blob;
  const xplorer::IoStatus status = client_.read_blocking(self, reader, key, &blob);
  if (status != xplorer::IoStatus::kOk) {
    throw util::SerializeError(util::format("load_log: terminal read error on {}", key));
  }
  return ChannelLog::deserialize(blob);
}

std::optional<ChannelLog> CheckpointStore::try_load_log_blocking(des::Process& self,
                                                                 Rank reader,
                                                                 std::uint32_t index,
                                                                 bool* failed) {
  if (failed != nullptr) *failed = false;
  const std::string key = log_key(reader, index);
  if (!storage_->exists(key)) return std::nullopt;
  std::vector<std::byte> blob;
  const xplorer::IoStatus status = client_.read_blocking(self, reader, key, &blob);
  if (status != xplorer::IoStatus::kOk) {
    if (failed != nullptr) *failed = true;
    return std::nullopt;
  }
  try {
    return ChannelLog::deserialize(blob);
  } catch (const util::SerializeError&) {
    if (failed != nullptr) *failed = true;
    return std::nullopt;
  }
}

bool CheckpointStore::has_image(Rank rank, std::uint32_t index) const {
  return storage_->exists(image_key(rank, index));
}

std::vector<std::uint32_t> CheckpointStore::saved_indices(Rank rank) const {
  std::vector<std::uint32_t> indices;
  const std::string prefix = util::format("ckpt/p{}/v", rank);
  for (const auto& key : storage_->keys_with_prefix(prefix)) {
    if (key.ends_with(".log")) continue;
    indices.push_back(
        static_cast<std::uint32_t>(std::stoul(key.substr(prefix.size()))));
  }
  return indices;  // map order => ascending
}

CheckpointImage CheckpointStore::peek_image(Rank rank, std::uint32_t index) const {
  // Metadata-only access: no timed I/O. Recovery uses load_image_blocking
  // for the actual state transfer.
  const std::string key = image_key(rank, index);
  if (!storage_->exists(key)) {
    throw util::SerializeError(util::format("peek_image: no image {}", key));
  }
  // StableStorage does not expose raw bytes directly; reuse the keyed size
  // check through read path? The store keeps it simple: the blob is fetched
  // via the storage's internal map using a zero-time accessor.
  return CheckpointImage::deserialize(storage_->peek(key));
}

std::optional<CheckpointImage> CheckpointStore::try_peek_image(Rank rank,
                                                               std::uint32_t index) const {
  const std::string key = image_key(rank, index);
  if (!storage_->exists(key)) return std::nullopt;
  try {
    return CheckpointImage::deserialize(storage_->peek(key));
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
}

void CheckpointStore::erase(Rank rank, std::uint32_t index) {
  storage_->erase(image_key(rank, index));
  storage_->erase(log_key(rank, index));
}

std::uint64_t CheckpointStore::bytes_for(Rank rank) const {
  std::uint64_t total = 0;
  for (const auto& key : storage_->keys_with_prefix(util::format("ckpt/p{}/", rank))) {
    total += storage_->size(key);
  }
  return total;
}

std::uint64_t CheckpointStore::total_checkpoint_bytes() const {
  std::uint64_t total = 0;
  for (const auto& key : storage_->keys_with_prefix("ckpt/")) total += storage_->size(key);
  return total;
}

std::size_t CheckpointStore::checkpoint_count() const {
  std::size_t count = 0;
  for (const auto& key : storage_->keys_with_prefix("ckpt/p")) {
    if (!key.ends_with(".log")) ++count;
  }
  return count;
}

}  // namespace chk::chklib
