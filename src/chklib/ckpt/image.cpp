#include "chklib/ckpt/image.hpp"

namespace chk::chklib {

namespace {
constexpr std::uint32_t kImageMagic = 0x43484b31;  // "CHK1"
constexpr std::uint32_t kLogMagic = 0x43484c31;    // "CHL1"
}  // namespace

std::vector<std::byte> CheckpointImage::serialize() const {
  util::ByteWriter writer;
  writer.put(kImageMagic);
  writer.put<std::uint64_t>(rank);
  writer.put(index);
  writer.put(captured_at_ns);
  writer.put(delta_base);
  writer.put_vector(state);
  writer.put_vector(seq.send_next);
  writer.put_vector(seq.consumed_upto);
  writer.put_vector(seq.consumed_extra);
  writer.put_vector(sends);
  writer.put_vector(recvs);
  writer.put_bytes(sent_log.serialize());
  return writer.take();
}

CheckpointImage CheckpointImage::deserialize(std::span<const std::byte> blob) {
  util::ByteReader reader(blob);
  if (reader.get<std::uint32_t>() != kImageMagic) {
    throw util::SerializeError("CheckpointImage: bad magic");
  }
  CheckpointImage image;
  image.rank = static_cast<Rank>(reader.get<std::uint64_t>());
  image.index = reader.get<std::uint32_t>();
  image.captured_at_ns = reader.get<std::int64_t>();
  image.delta_base = reader.get<std::uint32_t>();
  image.state = reader.get_vector<std::byte>();
  image.seq.send_next = reader.get_vector<ChannelSeqState::RankSeq>();
  image.seq.consumed_upto = reader.get_vector<ChannelSeqState::RankSeq>();
  image.seq.consumed_extra = reader.get_vector<ChannelSeqState::RankSeq>();
  image.sends = reader.get_vector<SendRecord>();
  image.recvs = reader.get_vector<RecvRecord>();
  image.sent_log = ChannelLog::deserialize(reader.get_bytes_view());
  return image;
}

std::vector<std::byte> ChannelLog::serialize() const {
  util::ByteWriter writer;
  writer.put(kLogMagic);
  writer.put<std::uint64_t>(messages.size());
  for (const auto& env : messages) {
    writer.put<std::uint64_t>(env.src);
    writer.put<std::uint64_t>(env.dst);
    writer.put<std::int32_t>(env.tag);
    writer.put(env.epoch);
    writer.put(env.seq);
    writer.put_vector(env.payload);
  }
  return writer.take();
}

ChannelLog ChannelLog::deserialize(std::span<const std::byte> blob) {
  util::ByteReader reader(blob);
  if (reader.get<std::uint32_t>() != kLogMagic) {
    throw util::SerializeError("ChannelLog: bad magic");
  }
  ChannelLog log;
  const auto count = reader.get<std::uint64_t>();
  log.messages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Envelope env;
    env.src = static_cast<Rank>(reader.get<std::uint64_t>());
    env.dst = static_cast<Rank>(reader.get<std::uint64_t>());
    env.tag = reader.get<std::int32_t>();
    env.epoch = reader.get<std::uint32_t>();
    env.seq = reader.get<std::uint64_t>();
    env.payload = reader.get_vector<std::byte>();
    log.messages.push_back(std::move(env));
  }
  return log;
}

}  // namespace chk::chklib
