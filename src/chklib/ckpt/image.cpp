#include "chklib/ckpt/image.hpp"

namespace chk::chklib {

namespace {
// Version 2 blobs carry a 64-bit FNV-1a checksum of the body right after
// the magic; deserialize verifies it so a corrupted image fails loudly at
// restore time instead of resurrecting silently wrong state.
constexpr std::uint32_t kImageMagic = 0x43484b32;  // "CHK2"
constexpr std::uint32_t kLogMagic = 0x43484c32;    // "CHL2"

std::uint64_t fnv1a64(std::span<const std::byte> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::vector<std::byte> seal(std::uint32_t magic, util::ByteWriter body) {
  util::ByteWriter writer;
  writer.put(magic);
  writer.put(fnv1a64(body.bytes()));
  writer.put_bytes(body.bytes());
  return writer.take();
}

/// Strips and verifies the envelope; returns the body view.
std::span<const std::byte> unseal(std::uint32_t magic, util::ByteReader& reader,
                                  const char* what) {
  if (reader.get<std::uint32_t>() != magic) {
    throw util::SerializeError(std::string(what) + ": bad magic");
  }
  const auto checksum = reader.get<std::uint64_t>();
  const auto body = reader.get_bytes_view();
  if (fnv1a64(body) != checksum) {
    throw util::SerializeError(std::string(what) + ": checksum mismatch (corrupt image)");
  }
  return body;
}
}  // namespace

std::vector<std::byte> CheckpointImage::serialize() const {
  util::ByteWriter body;
  body.put<std::uint64_t>(rank);
  body.put(index);
  body.put(captured_at_ns);
  body.put(delta_base);
  body.put_vector(state);
  body.put_vector(seq.send_next);
  body.put_vector(seq.consumed_upto);
  body.put_vector(seq.consumed_extra);
  body.put_vector(sends);
  body.put_vector(recvs);
  body.put_bytes(sent_log.serialize());
  return seal(kImageMagic, std::move(body));
}

CheckpointImage CheckpointImage::deserialize(std::span<const std::byte> blob) {
  util::ByteReader outer(blob);
  util::ByteReader reader(unseal(kImageMagic, outer, "CheckpointImage"));
  CheckpointImage image;
  image.rank = static_cast<Rank>(reader.get<std::uint64_t>());
  image.index = reader.get<std::uint32_t>();
  image.captured_at_ns = reader.get<std::int64_t>();
  image.delta_base = reader.get<std::uint32_t>();
  image.state = reader.get_vector<std::byte>();
  image.seq.send_next = reader.get_vector<ChannelSeqState::RankSeq>();
  image.seq.consumed_upto = reader.get_vector<ChannelSeqState::RankSeq>();
  image.seq.consumed_extra = reader.get_vector<ChannelSeqState::RankSeq>();
  image.sends = reader.get_vector<SendRecord>();
  image.recvs = reader.get_vector<RecvRecord>();
  image.sent_log = ChannelLog::deserialize(reader.get_bytes_view());
  return image;
}

std::vector<std::byte> ChannelLog::serialize() const {
  util::ByteWriter body;
  body.put<std::uint64_t>(messages.size());
  for (const auto& env : messages) {
    body.put<std::uint64_t>(env.src);
    body.put<std::uint64_t>(env.dst);
    body.put<std::int32_t>(env.tag);
    body.put(env.epoch);
    body.put(env.seq);
    body.put_vector(env.payload);
  }
  return seal(kLogMagic, std::move(body));
}

ChannelLog ChannelLog::deserialize(std::span<const std::byte> blob) {
  util::ByteReader outer(blob);
  util::ByteReader reader(unseal(kLogMagic, outer, "ChannelLog"));
  ChannelLog log;
  const auto count = reader.get<std::uint64_t>();
  log.messages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Envelope env;
    env.src = static_cast<Rank>(reader.get<std::uint64_t>());
    env.dst = static_cast<Rank>(reader.get<std::uint64_t>());
    env.tag = reader.get<std::int32_t>();
    env.epoch = reader.get<std::uint32_t>();
    env.seq = reader.get<std::uint64_t>();
    env.payload = reader.get_vector<std::byte>();
    log.messages.push_back(std::move(env));
  }
  return log;
}

}  // namespace chk::chklib
