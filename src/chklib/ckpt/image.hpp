// Checkpoint image: everything one process stores per checkpoint.
//
// Coordinated checkpoints carry a channel log (in-transit messages of the
// consistent cut, Chandy-Lamport style). Independent checkpoints instead
// carry the send/receive records of the preceding interval, from which the
// recovery-line algorithms build the rollback-dependency structure.
#pragma once

#include <cstdint>
#include <vector>

#include "chklib/comm/endpoint.hpp"
#include "chklib/comm/envelope.hpp"
#include "util/serialize.hpp"

namespace chk::chklib {

/// A message sent during interval `interval` (recorded at the sender).
struct SendRecord {
  Rank dst = 0;
  std::uint64_t seq = 0;
  std::uint32_t interval = 0;
};

/// A message delivered during interval `recv_interval` that was sent by
/// `src` during its interval `send_interval` (recorded at the receiver).
struct RecvRecord {
  Rank src = 0;
  std::uint64_t seq = 0;
  std::uint32_t send_interval = 0;
  std::uint32_t recv_interval = 0;
};

/// Channel log: stored separately from the image because late (in-transit)
/// messages keep arriving after the state has been written; the log is
/// finalized when all channel markers have been received.
struct ChannelLog {
  std::vector<Envelope> messages;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static ChannelLog deserialize(std::span<const std::byte> blob);
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& env : messages) total += env.payload.size();
    return total;
  }
};

struct CheckpointImage {
  Rank rank = 0;
  std::uint32_t index = 0;        ///< epoch (coordinated) / interval count (independent)
  std::int64_t captured_at_ns = 0;
  /// 0: `state` is a full CheckpointRegistry::capture blob. Non-zero:
  /// `state` is a serialized StateDelta against the checkpoint with this
  /// index (incremental checkpointing; recovery applies the chain).
  std::uint32_t delta_base = 0;
  std::vector<std::byte> state;   ///< full blob or serialized StateDelta
  ChannelSeqState seq;            ///< channel counters at the cut (for dedup/replay)
  std::vector<SendRecord> sends;  ///< independent: interval send records
  std::vector<RecvRecord> recvs;  ///< independent: interval receive records
  /// Independent + message logging: full payloads of the interval's sends
  /// (pessimistic sender-based logging — the paper's §1 remedy for the
  /// domino effect). Recovery replays the ones the receiver's restored
  /// state has not consumed, which makes the orphan-free recovery line
  /// executable without rollback propagation.
  ChannelLog sent_log;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static CheckpointImage deserialize(std::span<const std::byte> blob);
};


}  // namespace chk::chklib
