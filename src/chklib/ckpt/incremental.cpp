#include "chklib/ckpt/incremental.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace chk::chklib {

namespace {

constexpr std::uint32_t kDeltaMagic = 0x44454c31;  // "DEL1"

std::uint64_t hash_chunk(std::span<const std::byte> chunk) {
  // FNV-1a 64-bit, then a splitmix finalizer for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : chunk) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return util::splitmix64(h);
}

}  // namespace

std::vector<std::byte> StateDelta::serialize() const {
  util::ByteWriter writer;
  writer.put(kDeltaMagic);
  writer.put(full_size);
  writer.put(chunk_size);
  writer.put_vector(chunks);
  writer.put_vector(data);
  return writer.take();
}

StateDelta StateDelta::deserialize(std::span<const std::byte> blob) {
  util::ByteReader reader(blob);
  if (reader.get<std::uint32_t>() != kDeltaMagic) {
    throw util::SerializeError("StateDelta: bad magic");
  }
  StateDelta delta;
  delta.full_size = reader.get<std::uint64_t>();
  delta.chunk_size = reader.get<std::uint32_t>();
  delta.chunks = reader.get_vector<std::uint32_t>();
  delta.data = reader.get_vector<std::byte>();
  return delta;
}

void StateDelta::apply(std::vector<std::byte>& base) const {
  if (base.size() != full_size) {
    throw util::SerializeError("StateDelta::apply: base size mismatch");
  }
  std::size_t offset = 0;
  for (std::uint32_t index : chunks) {
    const std::size_t begin = std::size_t{index} * chunk_size;
    const std::size_t len = std::min<std::size_t>(chunk_size, full_size - begin);
    if (begin >= full_size || offset + len > data.size()) {
      throw util::SerializeError("StateDelta::apply: corrupt delta");
    }
    std::memcpy(base.data() + begin, data.data() + offset, len);
    offset += len;
  }
}

void IncrementalTracker::rebase(std::span<const std::byte> full_blob) {
  size_ = full_blob.size();
  const std::size_t nchunks = (size_ + chunk_size_ - 1) / chunk_size_;
  hashes_.resize(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t begin = c * chunk_size_;
    const std::size_t len = std::min<std::size_t>(chunk_size_, size_ - begin);
    hashes_[c] = hash_chunk(full_blob.subspan(begin, len));
  }
}

std::optional<StateDelta> IncrementalTracker::capture_delta(
    std::span<const std::byte> full_blob) {
  if (full_blob.size() != size_) return std::nullopt;  // layout changed: need rebase
  StateDelta delta;
  delta.full_size = size_;
  delta.chunk_size = chunk_size_;
  const std::size_t nchunks = hashes_.size();
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t begin = c * chunk_size_;
    const std::size_t len = std::min<std::size_t>(chunk_size_, size_ - begin);
    const auto chunk = full_blob.subspan(begin, len);
    const std::uint64_t h = hash_chunk(chunk);
    if (h != hashes_[c]) {
      hashes_[c] = h;
      delta.chunks.push_back(static_cast<std::uint32_t>(c));
      delta.data.insert(delta.data.end(), chunk.begin(), chunk.end());
    }
  }
  return delta;
}

}  // namespace chk::chklib
