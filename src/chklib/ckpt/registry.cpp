#include "chklib/ckpt/registry.hpp"

#include <algorithm>
#include <cstring>

#include "util/format.hpp"

namespace chk::chklib {

void CheckpointRegistry::register_region(std::string name, std::span<std::byte> bytes) {
  const bool duplicate = std::any_of(regions_.begin(), regions_.end(),
                                     [&](const Region& r) { return r.name == name; });
  if (duplicate) {
    throw RegistryError(util::format("region '{}' registered twice", name));
  }
  regions_.push_back(Region{std::move(name), bytes});
}

std::size_t CheckpointRegistry::state_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& region : regions_) total += region.bytes.size();
  return total;
}

std::vector<std::byte> CheckpointRegistry::capture() const {
  util::ByteWriter writer;
  writer.put<std::uint32_t>(static_cast<std::uint32_t>(regions_.size()));
  for (const auto& region : regions_) {
    writer.put_string(region.name);
    writer.put_bytes(region.bytes);
  }
  return writer.take();
}

void CheckpointRegistry::restore(std::span<const std::byte> blob) {
  util::ByteReader reader(blob);
  const auto count = reader.get<std::uint32_t>();
  if (count != regions_.size()) {
    throw RegistryError(util::format("restore: {} regions captured, {} registered", count,
                                     regions_.size()));
  }
  for (auto& region : regions_) {
    const std::string name = reader.get_string();
    const auto bytes = reader.get_bytes_view();
    if (name != region.name) {
      throw RegistryError(
          util::format("restore: region order mismatch ('{}' vs '{}')", name, region.name));
    }
    if (bytes.size() != region.bytes.size()) {
      throw RegistryError(util::format("restore: region '{}' size {} != registered {}", name,
                                       bytes.size(), region.bytes.size()));
    }
    std::memcpy(region.bytes.data(), bytes.data(), bytes.size());
  }
}

}  // namespace chk::chklib
