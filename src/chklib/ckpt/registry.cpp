#include "chklib/ckpt/registry.hpp"

#include <algorithm>
#include <cstring>

#include "util/format.hpp"

namespace chk::chklib {

void CheckpointRegistry::check_unique(const std::string& name) const {
  const bool duplicate = std::any_of(regions_.begin(), regions_.end(),
                                     [&](const Region& r) { return r.name == name; });
  if (duplicate) {
    throw RegistryError(util::format("region '{}' registered twice", name));
  }
}

void CheckpointRegistry::register_region(std::string name, std::span<std::byte> bytes) {
  check_unique(name);
  regions_.push_back(Region{std::move(name), bytes, nullptr, nullptr});
}

void CheckpointRegistry::register_dynamic(std::string name, DynamicCapture cap,
                                          DynamicRestore res) {
  if (!cap || !res) {
    throw RegistryError(util::format("dynamic region '{}': null accessor", name));
  }
  check_unique(name);
  regions_.push_back(Region{std::move(name), {}, std::move(cap), std::move(res)});
}

std::size_t CheckpointRegistry::state_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& region : regions_) {
    total += region.dyn_capture ? region.dyn_capture().size() : region.bytes.size();
  }
  return total;
}

std::vector<std::byte> CheckpointRegistry::capture() const {
  util::ByteWriter writer;
  writer.put<std::uint32_t>(static_cast<std::uint32_t>(regions_.size()));
  for (const auto& region : regions_) {
    writer.put_string(region.name);
    writer.put_bytes(region.dyn_capture ? region.dyn_capture() : region.bytes);
  }
  return writer.take();
}

void CheckpointRegistry::restore(std::span<const std::byte> blob) {
  util::ByteReader reader(blob);
  const auto count = reader.get<std::uint32_t>();
  if (count != regions_.size()) {
    throw RegistryError(util::format("restore: {} regions captured, {} registered", count,
                                     regions_.size()));
  }
  for (auto& region : regions_) {
    const std::string name = reader.get_string();
    const auto bytes = reader.get_bytes_view();
    if (name != region.name) {
      throw RegistryError(
          util::format("restore: region order mismatch ('{}' vs '{}')", name, region.name));
    }
    if (region.dyn_restore) {
      region.dyn_restore(bytes);
      continue;
    }
    if (bytes.size() != region.bytes.size()) {
      throw RegistryError(util::format("restore: region '{}' size {} != registered {}", name,
                                       bytes.size(), region.bytes.size()));
    }
    std::memcpy(region.bytes.data(), bytes.data(), bytes.size());
  }
}

}  // namespace chk::chklib
