// Retrying stable-storage client.
//
// Transient I/O errors (IoStatus::kIoError from the StableStorage fault
// model) are the storage tier's own fault domain; this client is the one
// door every protocol and the recovery manager go through, so the retry
// policy lives in exactly one place. A failed attempt is retried after an
// exponentially growing backoff until the attempt budget or the deadline
// runs out, at which point the terminal error is surfaced to the caller —
// the protocols decide what a permanently lost write means (abort the
// round, skip the interval), the client never hides one.
//
// Each attempt emits its own traced span (the caller's event kind, aux =
// uncontended write time) and each backoff sleep emits a
// kStorageRetryWait span, so the overhead attribution can split "writing"
// from "waiting to retry" exactly. Fault-free runs take a single attempt
// with zero extra simulator events — bit-identical to the pre-client path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chklib/comm/envelope.hpp"
#include "des/process.hpp"
#include "des/time.hpp"
#include "obs/tracer.hpp"
#include "xplorer/storage.hpp"

namespace chk::chklib {

struct RetryPolicy {
  /// Total tries per operation (first attempt included). Must be >= 1.
  std::uint32_t max_attempts = 4;
  /// Backoff before retry k is initial * multiplier^(k-1).
  des::Duration initial_backoff = des::Duration::millis(50);
  double multiplier = 2.0;
  /// Give up once this much time has elapsed since the operation started,
  /// even with attempts left. Duration::max() = no deadline.
  des::Duration deadline = des::Duration::secs(30);

  /// Throws std::invalid_argument on a zero attempt budget, a multiplier
  /// below 1 or negative durations.
  void validate() const;
};

class StorageClient {
 public:
  explicit StorageClient(xplorer::StableStorage& storage) : storage_(&storage) {}
  StorageClient(const StorageClient&) = delete;
  StorageClient& operator=(const StorageClient&) = delete;

  void set_policy(const RetryPolicy& policy);
  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Blocking write with bounded retries. Emits one `kind` span per
  /// attempt (arg = `arg`); backoff sleeps emit kStorageRetryWait spans
  /// with arg = 1 when `app_blocking` (so attribution charges them to the
  /// blocked window) and 0 otherwise.
  xplorer::IoStatus write_blocking(des::Process& self, Rank rank, const std::string& key,
                                   std::vector<std::byte> blob, obs::EventKind kind,
                                   std::uint32_t arg, bool app_blocking);

  /// Blocking read with bounded retries. A missing key is not an error:
  /// it returns kOk with an empty blob. Retry sleeps emit
  /// kStorageRetryWait spans with arg = 0 (recovery time is charged
  /// through the caller's enclosing kRecoveryRead span).
  xplorer::IoStatus read_blocking(des::Process& self, Rank rank, const std::string& key,
                                  std::vector<std::byte>* out);

  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t write_failures() const noexcept { return write_failures_; }
  [[nodiscard]] std::uint64_t read_failures() const noexcept { return read_failures_; }
  /// Total simulated time spent in backoff sleeps.
  [[nodiscard]] des::Duration retry_wait() const noexcept { return retry_wait_; }
  void reset_stats() noexcept {
    retries_ = write_failures_ = read_failures_ = 0;
    retry_wait_ = des::Duration::zero();
  }

 private:
  /// Sleep out the backoff for retry `attempt` (1-based); returns false if
  /// the deadline would already be exceeded.
  bool backoff(des::Process& self, Rank rank, std::uint32_t attempt,
               des::TimePoint started, bool app_blocking);

  xplorer::StableStorage* storage_;
  RetryPolicy policy_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t retries_ = 0;
  std::uint64_t write_failures_ = 0;
  std::uint64_t read_failures_ = 0;
  des::Duration retry_wait_ = des::Duration::zero();
};

}  // namespace chk::chklib
