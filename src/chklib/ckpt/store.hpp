// Checkpoint store: naming, commit bookkeeping and space accounting on top
// of the raw stable storage.
//
// Keys:   ckpt/p{rank}/v{index:08}        process state image
//         ckpt/p{rank}/v{index:08}.log    channel log (coordinated)
//         ckpt/commit                     last globally committed epoch
//
// Writes go through the retrying StorageClient and are therefore fully
// timed (network + host link + disk with contention, plus retry backoff
// when the storage misbehaves). Every blocking operation reports its
// terminal IoStatus so the protocols can react to a permanently failed
// write. Metadata queries (listing, sizes) are free, matching the
// paper-era systems where the recovery manager scans a directory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chklib/ckpt/image.hpp"
#include "chklib/ckpt/storage_client.hpp"
#include "chklib/comm/observer.hpp"
#include "des/process.hpp"
#include "obs/tracer.hpp"
#include "xplorer/storage.hpp"

namespace chk::chklib {

/// Who is paying for a stable-storage write. The overhead attribution only
/// charges kAppBlocking writes to the checkpoint blocking window; writes
/// streamed by a background checkpointer carry kBackground even if they
/// happen to overlap a later window.
enum class WriteContext : std::uint32_t { kBackground = 0, kAppBlocking = 1 };

class CheckpointStore {
 public:
  explicit CheckpointStore(xplorer::StableStorage& storage)
      : storage_(&storage), client_(storage) {}
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  [[nodiscard]] static std::string image_key(Rank rank, std::uint32_t index);
  [[nodiscard]] static std::string log_key(Rank rank, std::uint32_t index);

  /// Passive observer of image writes (stagger mutual-exclusion checking).
  void set_observer(InvariantObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] InvariantObserver* observer() const noexcept { return observer_; }

  /// Blocking write with bounded retries; kIoError is terminal.
  xplorer::IoStatus write_image_blocking(des::Process& self, Rank rank,
                                         const CheckpointImage& image,
                                         WriteContext context = WriteContext::kBackground);

  xplorer::IoStatus write_log_blocking(des::Process& self, Rank rank, std::uint32_t index,
                                       const ChannelLog& log,
                                       WriteContext context = WriteContext::kBackground);

  /// Timed write of the global commit record (coordinator's node). The
  /// committed epoch only advances when the write achieved durability.
  xplorer::IoStatus write_commit_blocking(des::Process& self, Rank coordinator_node,
                                          std::uint32_t epoch);

  /// Timed reads (recovery path). `blob_bytes`, when non-null, receives the
  /// serialized size actually transferred from the disk — the number
  /// recovery accounting charges as bytes read. Throws util::SerializeError
  /// on terminal read failure or a corrupt blob; recovery paths that must
  /// survive those use try_load_image_blocking.
  [[nodiscard]] CheckpointImage load_image_blocking(des::Process& self, Rank reader,
                                                    std::uint32_t index,
                                                    std::uint64_t* blob_bytes = nullptr);
  /// Like load_image_blocking but corruption- and error-tolerant: returns
  /// nullopt when the image cannot be restored (terminal read error after
  /// retries, or checksum mismatch from bit-rot). Bytes transferred are
  /// still reported — failed reads did real work.
  [[nodiscard]] std::optional<CheckpointImage> try_load_image_blocking(
      des::Process& self, Rank reader, std::uint32_t index,
      std::uint64_t* blob_bytes = nullptr);
  [[nodiscard]] std::optional<ChannelLog> load_log_blocking(des::Process& self, Rank reader,
                                                            std::uint32_t index);
  /// Error-tolerant log load: nullopt with *failed == false means no log
  /// was stored (normal); *failed == true means a log exists but cannot be
  /// restored — the generation is unusable for a consistent replay.
  [[nodiscard]] std::optional<ChannelLog> try_load_log_blocking(des::Process& self,
                                                                Rank reader,
                                                                std::uint32_t index,
                                                                bool* failed);

  // -- metadata (free) -------------------------------------------------------
  [[nodiscard]] std::uint32_t committed_epoch() const noexcept { return committed_epoch_; }
  [[nodiscard]] bool has_image(Rank rank, std::uint32_t index) const;
  [[nodiscard]] std::vector<std::uint32_t> saved_indices(Rank rank) const;
  /// Peek image metadata without timed I/O (recovery-line computation scans
  /// dependency records; modelled as free directory metadata). Throws on a
  /// corrupt blob — planning paths use try_peek_image.
  [[nodiscard]] CheckpointImage peek_image(Rank rank, std::uint32_t index) const;
  /// Checksum-tolerant peek: nullopt when the image is missing or fails
  /// its CHK2 verification (bit-rot).
  [[nodiscard]] std::optional<CheckpointImage> try_peek_image(Rank rank,
                                                             std::uint32_t index) const;
  /// True when the image exists and its checksum verifies (free check —
  /// the GC precondition before pruning an older generation).
  [[nodiscard]] bool verify_image(Rank rank, std::uint32_t index) const {
    return try_peek_image(rank, index).has_value();
  }
  void erase(Rank rank, std::uint32_t index);
  [[nodiscard]] std::uint64_t bytes_for(Rank rank) const;
  [[nodiscard]] std::uint64_t total_checkpoint_bytes() const;
  [[nodiscard]] std::size_t checkpoint_count() const;

  [[nodiscard]] xplorer::StableStorage& storage() noexcept { return *storage_; }
  [[nodiscard]] StorageClient& client() noexcept { return client_; }
  void set_retry_policy(const RetryPolicy& policy) { client_.set_policy(policy); }

  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    client_.set_tracer(tracer);
  }

 private:
  xplorer::StableStorage* storage_;
  StorageClient client_;
  InvariantObserver* observer_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t committed_epoch_ = 0;  ///< epoch 0 = initial state, implicit
};

}  // namespace chk::chklib
