// Checkpoint store: naming, commit bookkeeping and space accounting on top
// of the raw stable storage.
//
// Keys:   ckpt/p{rank}/v{index:08}        process state image
//         ckpt/p{rank}/v{index:08}.log    channel log (coordinated)
//         ckpt/commit                     last globally committed epoch
//
// Writes go through StableStorage and are therefore fully timed (network +
// host link + disk with contention). Metadata queries (listing, sizes) are
// free, matching the paper-era systems where the recovery manager scans a
// directory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chklib/ckpt/image.hpp"
#include "chklib/comm/observer.hpp"
#include "des/process.hpp"
#include "obs/tracer.hpp"
#include "xplorer/storage.hpp"

namespace chk::chklib {

/// Who is paying for a stable-storage write. The overhead attribution only
/// charges kAppBlocking writes to the checkpoint blocking window; writes
/// streamed by a background checkpointer carry kBackground even if they
/// happen to overlap a later window.
enum class WriteContext : std::uint32_t { kBackground = 0, kAppBlocking = 1 };

class CheckpointStore {
 public:
  explicit CheckpointStore(xplorer::StableStorage& storage) : storage_(&storage) {}
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  [[nodiscard]] static std::string image_key(Rank rank, std::uint32_t index);
  [[nodiscard]] static std::string log_key(Rank rank, std::uint32_t index);

  /// Passive observer of image writes (stagger mutual-exclusion checking).
  void set_observer(InvariantObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] InvariantObserver* observer() const noexcept { return observer_; }

  /// Timed write of a serialized image from `rank`'s node; on_durable runs
  /// when the bytes are on disk.
  void write_image(Rank rank, const CheckpointImage& image, std::function<void()> on_durable);
  void write_image_blocking(des::Process& self, Rank rank, const CheckpointImage& image,
                            WriteContext context = WriteContext::kBackground);

  void write_log_blocking(des::Process& self, Rank rank, std::uint32_t index,
                          const ChannelLog& log,
                          WriteContext context = WriteContext::kBackground);

  /// Timed write of the global commit record (coordinator's node).
  void write_commit_blocking(des::Process& self, Rank coordinator_node, std::uint32_t epoch);

  /// Timed reads (recovery path). `blob_bytes`, when non-null, receives the
  /// serialized size actually transferred from the disk — the number
  /// recovery accounting charges as bytes read.
  [[nodiscard]] CheckpointImage load_image_blocking(des::Process& self, Rank reader,
                                                    std::uint32_t index,
                                                    std::uint64_t* blob_bytes = nullptr);
  [[nodiscard]] std::optional<ChannelLog> load_log_blocking(des::Process& self, Rank reader,
                                                            std::uint32_t index);

  // -- metadata (free) -------------------------------------------------------
  [[nodiscard]] std::uint32_t committed_epoch() const noexcept { return committed_epoch_; }
  [[nodiscard]] bool has_image(Rank rank, std::uint32_t index) const;
  [[nodiscard]] std::vector<std::uint32_t> saved_indices(Rank rank) const;
  /// Peek image metadata without timed I/O (recovery-line computation scans
  /// dependency records; modelled as free directory metadata).
  [[nodiscard]] CheckpointImage peek_image(Rank rank, std::uint32_t index) const;
  void erase(Rank rank, std::uint32_t index);
  [[nodiscard]] std::uint64_t bytes_for(Rank rank) const;
  [[nodiscard]] std::uint64_t total_checkpoint_bytes() const;
  [[nodiscard]] std::size_t checkpoint_count() const;

  [[nodiscard]] xplorer::StableStorage& storage() noexcept { return *storage_; }

  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  /// Emit a storage span [t0, now] with aux = the uncontended write time.
  void trace_write(des::Process& self, obs::EventKind kind, Rank rank, std::int64_t t0_ns,
                   std::size_t bytes, std::uint32_t arg) const;

  xplorer::StableStorage* storage_;
  InvariantObserver* observer_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t committed_epoch_ = 0;  ///< epoch 0 = initial state, implicit
};

}  // namespace chk::chklib
