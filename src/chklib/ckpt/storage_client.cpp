#include "chklib/ckpt/storage_client.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace chk::chklib {

void RetryPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("storage retry: max_attempts must be >= 1");
  }
  if (!(multiplier >= 1.0)) {
    throw std::invalid_argument("storage retry: backoff multiplier must be >= 1, got " +
                                std::to_string(multiplier));
  }
  if (initial_backoff < des::Duration::zero() || deadline < des::Duration::zero()) {
    throw std::invalid_argument("storage retry: backoff and deadline must be non-negative");
  }
}

void StorageClient::set_policy(const RetryPolicy& policy) {
  policy.validate();
  policy_ = policy;
}

bool StorageClient::backoff(des::Process& self, Rank rank, std::uint32_t attempt,
                            des::TimePoint started, bool app_blocking) {
  des::Duration wait = policy_.initial_backoff;
  for (std::uint32_t i = 1; i < attempt; ++i) wait = wait.scaled(policy_.multiplier);
  const des::TimePoint now = self.sim().now();
  if (policy_.deadline != des::Duration::max() &&
      (now - started) + wait > policy_.deadline) {
    return false;
  }
  const std::int64_t t0 = now.to_nanos();
  self.delay(wait);
  retry_wait_ = retry_wait_ + wait;
  if (tracer_ != nullptr) {
    tracer_->span(obs::EventKind::kStorageRetryWait, static_cast<std::uint16_t>(rank), t0,
                  self.sim().now().to_nanos(), 0, app_blocking ? 1u : 0u);
  }
  return true;
}

xplorer::IoStatus StorageClient::write_blocking(des::Process& self, Rank rank,
                                                const std::string& key,
                                                std::vector<std::byte> blob,
                                                obs::EventKind kind, std::uint32_t arg,
                                                bool app_blocking) {
  const des::TimePoint started = self.sim().now();
  const std::size_t bytes = blob.size();
  for (std::uint32_t attempt = 1;; ++attempt) {
    const std::int64_t t0 = self.sim().now().to_nanos();
    // Each attempt pays the full pipeline; the blob is copied so a retry
    // still has it.
    const xplorer::IoStatus status =
        storage_->write_blocking(self, rank, key, blob);
    if (tracer_ != nullptr) {
      const auto pure = storage_->pure_write_time(rank, bytes);
      tracer_->span(kind, static_cast<std::uint16_t>(rank), t0,
                    self.sim().now().to_nanos(),
                    static_cast<std::uint64_t>(pure.to_nanos()), arg);
    }
    if (status == xplorer::IoStatus::kOk) return status;
    if (attempt >= policy_.max_attempts || !backoff(self, rank, attempt, started, app_blocking)) {
      ++write_failures_;
      return xplorer::IoStatus::kIoError;
    }
    ++retries_;
  }
}

xplorer::IoStatus StorageClient::read_blocking(des::Process& self, Rank rank,
                                               const std::string& key,
                                               std::vector<std::byte>* out) {
  const des::TimePoint started = self.sim().now();
  for (std::uint32_t attempt = 1;; ++attempt) {
    xplorer::IoStatus status = xplorer::IoStatus::kOk;
    auto blob = storage_->read_blocking(self, rank, key, &status);
    if (status == xplorer::IoStatus::kOk) {
      if (out != nullptr) *out = std::move(blob);
      return status;
    }
    if (attempt >= policy_.max_attempts ||
        !backoff(self, rank, attempt, started, /*app_blocking=*/false)) {
      ++read_failures_;
      if (out != nullptr) out->clear();
      return xplorer::IoStatus::kIoError;
    }
    ++retries_;
  }
}

}  // namespace chk::chklib
