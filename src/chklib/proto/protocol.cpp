#include "chklib/proto/protocol.hpp"

namespace chk::chklib {

void Protocol::halt() {
  for (auto& timer : timers_) timer.cancel();
  timers_.clear();
  for (des::Process* proc : procs_) {
    if (!proc->finished()) rt_->sim().kill(*proc);
  }
  procs_.clear();
}

}  // namespace chk::chklib
