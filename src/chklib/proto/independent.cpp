#include "chklib/proto/independent.hpp"

#include <utility>

#include "util/format.hpp"
#include "util/logging.hpp"

namespace chk::chklib {

std::vector<ProcessHistory> collect_histories(const CheckpointStore& store,
                                              std::size_t num_ranks) {
  std::vector<ProcessHistory> histories(num_ranks);
  for (Rank r = 0; r < num_ranks; ++r) {
    ProcessHistory& history = histories[r];
    history.rank = r;
    for (std::uint32_t index : store.saved_indices(r)) {
      const auto image = store.try_peek_image(r, index);
      // A rotted image is unusable itself, and its dependency records are
      // unreadable — so no newer cut at this rank can be consistency-checked
      // either. Truncate the usable history at the first corrupt image;
      // the line algorithms then fall back to an older generation. (A plain
      // *gap* in the indices is different and fine: a terminally failed
      // write skips its interval but migrates the records forward.)
      if (!image) break;
      history.saved.push_back(index);
      history.sends.insert(history.sends.end(), image->sends.begin(), image->sends.end());
      history.recvs.insert(history.recvs.end(), image->recvs.begin(), image->recvs.end());
    }
  }
  return histories;
}

IndependentProtocol::IndependentProtocol(Runtime& runtime, Config config)
    : Protocol(runtime), cfg_(config) {
  if (!is_independent(cfg_.scheme)) {
    throw des::SimError("IndependentProtocol: scheme is not an independent variant");
  }
  agents_.reserve(rt_->num_ranks());
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    agents_.push_back(std::make_unique<Agent>(rt_->sim()));
  }
}

void IndependentProtocol::start() {
  rt_->comm().set_hooks(this);
  install_safe_points();
  spawn_daemons();
}

void IndependentProtocol::install_safe_points() {
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    rt_->rank(r).on_safe_point = [this, r](des::Process& self) { safe_point(r, self); };
  }
}

void IndependentProtocol::safe_point(Rank r, des::Process& self) {
  Agent& agent = *agents_[r];
  if (!agent.pending) return;
  agent.pending = false;
  do_local_checkpoint(self, r);
  agent.captured.release();
}

void IndependentProtocol::spawn_daemons() {
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    track(rt_->sim().spawn(util::format("ichkd-r{}", r), [this, r](des::Process& self) {
      timer_main(r, self);
    }));
    if (is_staggered(cfg_.scheme)) {
      track(rt_->sim().spawn(util::format("idisp-r{}", r), [this, r](des::Process& self) {
        dispatcher_main(r, self);
      }));
    }
  }
}

void IndependentProtocol::timer_main(Rank r, des::Process& self) {
  // Deterministic per-rank jitter stream; restarts reproduce the schedule.
  util::Rng rng = rt_->fork_rng(0x6000 + r).fork(rt_->rank(r).restarts);
  Agent& agent = *agents_[r];
  while (cfg_.count == 0 || agent.intervals < cfg_.count) {
    const double factor = 1.0 + cfg_.jitter * (2.0 * rng.uniform() - 1.0);
    self.delay(cfg_.interval.scaled(factor));
    if (rt_->rank(r).app_process == nullptr) {
      // Application finished: its final state is stable; capture directly.
      do_local_checkpoint(self, r);
      continue;
    }
    agent.pending = true;
    agent.captured.acquire(self);  // wait for the safe-point capture
  }
}

void IndependentProtocol::dispatcher_main(Rank r, des::Process& self) {
  for (;;) {
    const ControlMsg msg = rt_->comm().endpoint(r).recv_control(self);
    switch (msg.kind) {
      case ControlKind::kToken:
        if (auto* tracer = rt_->tracer()) {
          tracer->instant(obs::EventKind::kTokenPass, static_cast<std::uint16_t>(r),
                          rt_->sim().now().to_nanos(), 0, msg.epoch);
        }
        agents_[r]->token.release();
        break;
      case ControlKind::kTokenRequest:
        // Arbiter role: FIFO grant, one writer at a time.
        if (grant_held_) {
          grant_queue_.push_back(msg.src);
        } else {
          grant_held_ = true;
          rt_->comm().send_control(r, msg.src, ControlMsg{ControlKind::kToken, r, 0, 0});
        }
        break;
      case ControlKind::kTokenRelease:
        if (grant_queue_.empty()) {
          grant_held_ = false;
        } else {
          const Rank next = grant_queue_.front();
          grant_queue_.pop_front();
          rt_->comm().send_control(r, next, ControlMsg{ControlKind::kToken, r, 0, 0});
        }
        break;
      default:
        break;  // not ours
    }
  }
}

void IndependentProtocol::on_send(Rank src, Envelope& env) {
  Agent& agent = *agents_[src];
  env.epoch = agent.intervals;
  agent.sends.push_back(SendRecord{env.dst, env.seq, agent.intervals});
  if (cfg_.message_logging) agent.sent_log.messages.push_back(env);
}

void IndependentProtocol::on_arrival(Rank, const Envelope&) {}

void IndependentProtocol::on_deliver(des::Process&, Rank dst, const Envelope& env) {
  Agent& agent = *agents_[dst];
  agent.recvs.push_back(RecvRecord{env.src, env.seq, env.epoch, agent.intervals});
}

void IndependentProtocol::do_local_checkpoint(des::Process& carrier, Rank r) {
  Agent& agent = *agents_[r];
  const std::uint32_t index = agent.intervals + 1;

  Endpoint& endpoint = rt_->comm().endpoint(r);
  RankRuntime& rank = rt_->rank(r);

  const des::TimePoint block_start = rt_->sim().now();
  agent.intervals = index;  // a new interval starts at the cut
  ++stats_.local_checkpoints;
  CheckpointImage image;
  image.rank = r;
  image.index = index;
  image.captured_at_ns = rt_->sim().now().to_nanos();
  image.state = rank.ready ? rank.registry.capture() : std::vector<std::byte>{};
  stats_.image_log.push_back(ProtocolStats::ImageRecord{
      index, static_cast<std::uint32_t>(r), image.state.size(),
      image.captured_at_ns, false});
  image.seq = endpoint.seq_snapshot();
  image.sends = std::exchange(agent.sends, {});
  image.recvs = std::exchange(agent.recvs, {});
  if (cfg_.message_logging) image.sent_log = std::exchange(agent.sent_log, {});

  if (!is_buffered(cfg_.scheme)) {
    // The application carries its own (blocking) stable-storage write.
    const xplorer::IoStatus status =
        rt_->store().write_image_blocking(carrier, r, image, WriteContext::kAppBlocking);
    stats_.app_blocked += rt_->sim().now() - block_start;
    if (auto* tracer = rt_->tracer()) {
      tracer->span(obs::EventKind::kCkptWindow, static_cast<std::uint16_t>(r),
                   block_start.to_nanos(), rt_->sim().now().to_nanos(), 0, index);
    }
    if (status != xplorer::IoStatus::kOk) {
      failed_checkpoint(r, std::move(image));
      return;
    }
    on_durable(r);
    return;
  }

  rt_->machine().node(r).mem_copy(carrier, image.state.size());
  stats_.app_blocked += rt_->sim().now() - block_start;
  if (auto* tracer = rt_->tracer()) {
    tracer->span(obs::EventKind::kCkptWindow, static_cast<std::uint16_t>(r),
                 block_start.to_nanos(), rt_->sim().now().to_nanos(), 0, index);
  }
  track(rt_->sim().spawn(
      util::format("ickwr-r{}-v{}", r, index),
      [this, r, image = std::move(image)](des::Process& self) mutable {
        Agent& a = *agents_[r];
        if (is_staggered(cfg_.scheme)) {
          rt_->comm().send_control(r, cfg_.arbiter,
                                   ControlMsg{ControlKind::kTokenRequest, r, image.index, 0});
          a.token.acquire(self);
        }
        xplorer::Node& node = rt_->machine().node(r);
        node.begin_background_io();
        const xplorer::IoStatus status = rt_->store().write_image_blocking(self, r, image);
        node.end_background_io();
        if (is_staggered(cfg_.scheme)) {
          rt_->comm().send_control(r, cfg_.arbiter,
                                   ControlMsg{ControlKind::kTokenRelease, r, image.index, 0});
        }
        if (status != xplorer::IoStatus::kOk) {
          failed_checkpoint(r, std::move(image));
          return;
        }
        on_durable(r);
      }));
}

void IndependentProtocol::failed_checkpoint(Rank r, CheckpointImage image) {
  // The interval is skipped: stable storage keeps the previous generation
  // as this rank's newest restorable cut. The failed image's dependency
  // records (and logged payloads) were exchanged out at the cut, so splice
  // them back at the *front* of the live accumulators — the next image
  // then carries both intervals' records in chronological order and later
  // cuts remain fully characterized for the line algorithms.
  ++stats_.ckpt_write_failures;
  Agent& agent = *agents_[r];
  agent.sends.insert(agent.sends.begin(), image.sends.begin(), image.sends.end());
  agent.recvs.insert(agent.recvs.begin(), image.recvs.begin(), image.recvs.end());
  if (cfg_.message_logging) {
    agent.sent_log.messages.insert(agent.sent_log.messages.begin(),
                                   image.sent_log.messages.begin(),
                                   image.sent_log.messages.end());
  }
}

void IndependentProtocol::on_durable(Rank) {
  if (cfg_.gc) run_gc();
}

std::uint64_t IndependentProtocol::run_gc() {
  // Corruption pre-pass: a rotted image and everything newer at that rank
  // are discarded — without the rotted image's dependency records those
  // cuts can never be restored consistently (see collect_histories).
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    bool rotted = false;
    for (std::uint32_t index : rt_->store().saved_indices(r)) {
      if (!rotted && !rt_->store().verify_image(r, index)) rotted = true;
      if (rotted) {
        rt_->store().erase(r, index);
        ++stats_.corrupt_discarded;
      }
    }
  }
  const auto histories = collect_histories(rt_->store(), rt_->num_ranks());
  // With message logging, older images' sent logs stay replay-relevant for
  // any send a receiver has not yet covered with a checkpoint: the strict
  // line is exactly the boundary below which no log can be needed.
  const LineMode mode = cfg_.message_logging ? LineMode::kStrict : cfg_.gc_mode;
  const auto result = compute_recovery_line(histories, mode);
  const auto to_delete = reclaimable(histories, result.line);
  std::uint64_t reclaimed = 0;
  const std::size_t keep = std::max<std::uint32_t>(1, cfg_.keep_depth);
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    // Keep-depth retention floor: the newest `keep` generations survive
    // even when the line marks them reclaimable, so restore-time failures
    // still have an older generation to fall back to.
    const auto& saved = histories[r].saved;
    std::uint32_t floor_index = 0;
    if (!saved.empty()) {
      floor_index = saved.size() >= keep ? saved[saved.size() - keep] : saved.front();
    }
    for (std::uint32_t index : to_delete[r]) {
      if (index >= floor_index) continue;
      rt_->store().erase(r, index);
      ++reclaimed;
    }
  }
  stats_.gc_reclaimed += reclaimed;
  return reclaimed;
}

RecoveryLine IndependentProtocol::recovery_line() const {
  if (cfg_.message_logging) {
    // With pessimistic sender logging every combination of per-rank cuts is
    // consistent: orphan consumptions are neutralized by the restored
    // sequence state (duplicate drop) and lost messages are replayed from
    // the logs. Recover to the newest checkpoints — no rollback
    // propagation, no domino.
    RecoveryLine line;
    line.index.resize(rt_->num_ranks());
    for (Rank r = 0; r < rt_->num_ranks(); ++r) {
      // Newest index of the verified prefix: a rotted image's sent log is
      // unreplayable, so the rank must roll below it and re-execute (and
      // thus re-send) those intervals itself.
      std::uint32_t newest = 0;
      for (std::uint32_t index : rt_->store().saved_indices(r)) {
        if (!rt_->store().verify_image(r, index)) break;
        newest = index;
      }
      line.index[r] = newest;
    }
    return line;
  }
  const auto histories = collect_histories(rt_->store(), rt_->num_ranks());
  return compute_recovery_line(histories, cfg_.recovery_mode).line;
}

void IndependentProtocol::prepare_recovery(const RecoveryLine& line) {
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    // Rolled-back checkpoints (and their records) are garbage: the
    // re-execution will regenerate those intervals.
    for (std::uint32_t index : rt_->store().saved_indices(r)) {
      if (index > line.index[r]) rt_->store().erase(r, index);
    }
    Agent& agent = *agents_[r];
    agent.intervals = line.index[r];
    agent.pending = false;
    agent.sends.clear();
    agent.recvs.clear();
    agent.sent_log.messages.clear();
    while (agent.token.try_acquire()) {}
    while (agent.captured.try_acquire()) {}
  }
  grant_queue_.clear();
  grant_held_ = false;
}

void IndependentProtocol::resume_after_recovery() {
  install_safe_points();
  spawn_daemons();
}

}  // namespace chk::chklib
