#include "chklib/proto/coordinated.hpp"

#include <algorithm>
#include <utility>

#include "chklib/membership/service.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"

namespace chk::chklib {

CoordinatedProtocol::CoordinatedProtocol(Runtime& runtime, Config config)
    : Protocol(runtime), cfg_(config) {
  if (!is_coordinated(cfg_.scheme)) {
    throw des::SimError("CoordinatedProtocol: scheme is not a coordinated variant");
  }
  agents_.reserve(rt_->num_ranks());
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    agents_.push_back(std::make_unique<Agent>(rt_->sim()));
  }
}

void CoordinatedProtocol::start() {
  rt_->comm().set_hooks(this);
  install_safe_points();
  spawn_daemons();
  schedule_next_round(cfg_.interval);
}

Rank CoordinatedProtocol::coordinator() const noexcept {
  return membership_ != nullptr ? membership_->coordinator() : cfg_.coordinator;
}

std::uint64_t CoordinatedProtocol::current_view() const noexcept {
  return membership_ != nullptr ? membership_->view() : 0;
}

void CoordinatedProtocol::set_membership(membership::MembershipService* membership) {
  membership_ = membership;
  if (membership_ != nullptr) {
    membership_->set_view_established_callback(
        [this](std::uint64_t) { on_view_established(); });
    membership_->set_fence_callback(
        [this](Rank r, bool fenced) { on_rank_fenced(r, fenced); });
  }
}

void CoordinatedProtocol::on_view_established() {
  // Coord_NBS: a write grant parked at a crashed holder would wedge the
  // FIFO arbiter forever — advance it. A *fenced* (live) holder keeps the
  // grant: its release is still coming.
  if (grant_held_ && membership_ != nullptr && membership_->is_down(grant_holder_)) {
    if (grant_queue_.empty()) {
      grant_held_ = false;
    } else {
      const Rank next = grant_queue_.front();
      grant_queue_.pop_front();
      grant_holder_ = next;
      rt_->comm().send_control(
          coordinator(), next,
          ControlMsg{ControlKind::kToken, coordinator(), grant_epoch_, 0});
    }
  }
  if (!round_in_progress_) return;
  // The round in flight was initiated under the previous view: its
  // outstanding acks are unmatchable now (they carry the old view stamp).
  // Abort it and let the new view's coordinator re-initiate at the next
  // epoch — this is how the schemes survive coordinator death mid-round.
  note_round_abort(round_epoch_);
  CHK_DEBUG("coord", "round {} aborted by view change at {}", round_epoch_,
            rt_->sim().now().str());
  round_watchdog_.cancel();
  token_watchdog_.cancel();
  round_in_progress_ = false;
  begin_round(round_epoch_ + 1);
}

void CoordinatedProtocol::on_rank_fenced(Rank r, bool fenced) {
  if (!fenced) return;  // a rejoining rank participates cleanly from the next round
  Agent& agent = *agents_[r];
  // Discard the rank's in-flight round state: no capture at the next safe
  // point, no open channel log, no ack. Its token semaphore is left alone —
  // a staggered write may be blocked in acquire, and the arbiter still owes
  // it the grant.
  agent.pending_epoch = agent.epoch;
  agent.logging = false;
  agent.finishing = false;
  agent.log.messages.clear();
}

void CoordinatedProtocol::install_safe_points() {
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    rt_->rank(r).on_safe_point = [this, r](des::Process& self) { safe_point(r, self); };
  }
}

void CoordinatedProtocol::spawn_daemons() {
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    track(rt_->sim().spawn(util::format("chkd-r{}", r), [this, r](des::Process& self) {
      daemon_main(r, self);
    }));
  }
}

void CoordinatedProtocol::schedule_next_round(des::Duration delay) {
  const std::uint32_t next_epoch = rt_->store().committed_epoch() + 1;
  if (cfg_.rounds != 0 && rt_->store().committed_epoch() >= cfg_.rounds) return;
  track_timer(rt_->sim().schedule_after(delay, [this, next_epoch] { begin_round(next_epoch); }));
}

void CoordinatedProtocol::begin_round(std::uint32_t epoch) {
  if (round_in_progress_) return;
  round_in_progress_ = true;
  round_epoch_ = epoch;
  round_view_ = current_view();
  acked_.clear();
  CHK_DEBUG("coord", "round {} begins at {}", epoch, rt_->sim().now().str());
  if (auto* tracer = rt_->tracer()) {
    tracer->instant(obs::EventKind::kRoundBegin, static_cast<std::uint16_t>(coordinator()),
                    rt_->sim().now().to_nanos(), 0, epoch);
  }
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    rt_->comm().send_control(
        coordinator(), r,
        ControlMsg{ControlKind::kCkptRequest, coordinator(), epoch, 0, round_view_});
  }
  if (cfg_.scheme == Scheme::kCoordNBMS) {
    // Inject the stagger token at the head of the virtual ring (the
    // paper's token protocol; safe here because background writers never
    // block the applications).
    rt_->comm().send_control(
        coordinator(), 0,
        ControlMsg{ControlKind::kToken, coordinator(), epoch, 0, round_view_});
  }
  if (cfg_.round_timeout.to_nanos() > 0) {
    round_watchdog_.cancel();
    round_watchdog_ = rt_->sim().schedule_after(
        cfg_.round_timeout, [this, epoch] { on_round_timeout(epoch); });
    track_timer(round_watchdog_);
  }
  if (cfg_.scheme == Scheme::kCoordNBMS && cfg_.token_timeout.to_nanos() > 0) {
    token_pos_ = 0;
    token_progress_ = false;
    ring_done_ = false;
    token_watchdog_.cancel();
    arm_token_watchdog();
  }
}

void CoordinatedProtocol::on_round_timeout(std::uint32_t epoch) {
  if (!round_in_progress_ || round_epoch_ != epoch) return;
  note_round_abort(epoch);
  CHK_DEBUG("coord", "round {} aborted at {} ({} / {} acks)", epoch,
            rt_->sim().now().str(), acked_.size(), rt_->num_ranks());
  token_watchdog_.cancel();
  round_in_progress_ = false;
  if (is_staggered(cfg_.scheme) && !is_buffered(cfg_.scheme)) {
    if (grant_held_ && acked_.empty() &&
        (!stall_valid_ || stall_holder_ == grant_holder_)) {
      stall_valid_ = true;
      stall_holder_ = grant_holder_;
      // With membership attached the stall may be a crashed/fenced holder
      // instead of a lost release: detection + eviction (or the deadman)
      // resolves it, so keep aborting rather than failing fast.
      if (++fruitless_rounds_ >= kGrantStallLimit && membership_ == nullptr) {
        // The write grant has been parked at the same holder through
        // kGrantStallLimit consecutive rounds that produced zero acks:
        // the holder's grant-release was lost on the raw links and no
        // watchdog can regenerate it (a release is not re-requestable the
        // way a grant is). Fail fast with the cure instead of live-locking
        // through endless aborts.
        throw des::SimError(util::format(
            "Coord_NBS: write grant stuck at rank {} for {} consecutive "
            "aborted rounds with no acks — a grant-release was lost on the "
            "raw links, which Coord_NBS cannot recover without the "
            "reliable transport. Enable the reliable transport "
            "(reliable_transport=true / omit --no-transport) or use "
            "Coord_NBMS over lossy links.",
            grant_holder_, fruitless_rounds_));
      }
    } else {
      fruitless_rounds_ = 0;
      stall_valid_ = false;
    }
    if (grant_held_) {
      // A lost Coord_NBS write grant leaves its holder's application
      // blocked in the acquire forever; re-issue it. If the original did
      // arrive, the holder's epoch dedup drops this copy harmlessly.
      rt_->comm().send_control(
          coordinator(), grant_holder_,
          ControlMsg{ControlKind::kToken, coordinator(), grant_epoch_, 0});
    }
  }
  begin_round(epoch + 1);
}

void CoordinatedProtocol::note_round_abort(std::uint32_t epoch) {
  ++stats_.aborted_rounds;
  ring_abort_floor_ = std::max(ring_abort_floor_, epoch);
  if (auto* iobs = rt_->store().observer()) iobs->on_round_abort(epoch);
  if (auto* tracer = rt_->tracer()) {
    tracer->instant(obs::EventKind::kRoundAbort,
                    static_cast<std::uint16_t>(coordinator()),
                    rt_->sim().now().to_nanos(), 0, epoch);
  }
}

void CoordinatedProtocol::arm_token_watchdog() {
  token_watchdog_ = rt_->sim().schedule_after(
      cfg_.token_timeout,
      [this, epoch = round_epoch_] { on_token_timeout(epoch); });
  track_timer(token_watchdog_);
}

void CoordinatedProtocol::on_token_timeout(std::uint32_t epoch) {
  if (!round_in_progress_ || round_epoch_ != epoch || ring_done_) return;
  if (!token_progress_) {
    // A whole period with no beacon: assume the token (or its carrier's
    // beacon) died on the link and re-issue it toward the next expected
    // holder. A rank that did receive the original drops the duplicate.
    ++stats_.tokens_regenerated;
    if (auto* iobs = rt_->store().observer()) iobs->on_token_regenerated(epoch);
    CHK_DEBUG("coord", "stagger token regenerated toward rank {} (epoch {})",
              token_pos_, epoch);
    if (auto* tracer = rt_->tracer()) {
      tracer->instant(obs::EventKind::kTokenRegen,
                      static_cast<std::uint16_t>(coordinator()),
                      rt_->sim().now().to_nanos(), 0,
                      static_cast<std::uint32_t>(token_pos_));
    }
    rt_->comm().send_control(
        coordinator(), token_pos_,
        ControlMsg{ControlKind::kToken, coordinator(), epoch, 0});
  }
  token_progress_ = false;
  arm_token_watchdog();
}

void CoordinatedProtocol::on_send(Rank src, Envelope& env) {
  env.epoch = agents_[src]->epoch;
}

void CoordinatedProtocol::on_arrival(Rank dst, const Envelope& env) {
  // A message from the previous epoch arriving after our cut is in-transit
  // state of the consistent cut: log it for replay on recovery.
  Agent& agent = *agents_[dst];
  if (agent.logging && env.epoch < agent.epoch) agent.log.messages.push_back(env);
}

void CoordinatedProtocol::on_deliver(des::Process&, Rank, const Envelope&) {
  // Nothing to do: consuming a post-cut message before our own cut makes
  // it an orphan of the recovery line, which the restored channel sequence
  // state neutralizes by dropping the re-sent duplicate (see endpoint.hpp).
}

void CoordinatedProtocol::daemon_main(Rank r, des::Process& self) {
  for (;;) {
    const ControlMsg msg = rt_->comm().endpoint(r).recv_control(self);
    handle_control(r, self, msg);
  }
}

void CoordinatedProtocol::handle_control(Rank r, des::Process& self, const ControlMsg& msg) {
  Agent& agent = *agents_[r];
  switch (msg.kind) {
    case ControlKind::kCkptRequest:
      agent.pending_epoch = std::max(agent.pending_epoch, msg.epoch);
      // If the application already finished, any instant is a safe point;
      // the daemon captures the final state on its behalf.
      if (rt_->rank(r).app_process == nullptr && agent.pending_epoch > agent.epoch) {
        do_local_checkpoint(self, r, agent.pending_epoch);
      }
      break;
    case ControlKind::kChannelMarker:
      // A marker proves the peer checkpointed `epoch`; make sure we will
      // catch up at our next safe point even if the request is still in
      // flight.
      agent.pending_epoch = std::max(agent.pending_epoch, msg.epoch);
      if (rt_->rank(r).app_process == nullptr && agent.pending_epoch > agent.epoch) {
        do_local_checkpoint(self, r, agent.pending_epoch);
      }
      agent.markers[msg.epoch].insert(msg.src);
      try_finish(r, self);
      break;
    case ControlKind::kToken:
      // Duplicate suppression — a lossy link can replay a token, and the
      // watchdogs deliberately re-issue possibly-lost ones; honouring a
      // duplicate makes the stagger semaphore creep and staggering
      // silently degrade. Coord_NBS grants answer an explicit request
      // (exact test); Coord_NBMS ring tokens carry strictly increasing
      // epochs at any given rank (exact floor test).
      if (is_staggered(cfg_.scheme) && !is_buffered(cfg_.scheme)) {
        if (!agent.grant_outstanding) break;
        agent.grant_outstanding = false;
      } else {
        if (msg.epoch <= agent.last_token_epoch) break;
        // An aborted round's token may still be in transit when the
        // re-initiated round injects a fresh one at the ring head.
        // Honouring it would put two live tokens in the ring — and the
        // writer it admits would forward it relabelled with its own (live)
        // epoch. Dead rounds' tokens die at their next hop.
        if (msg.epoch <= ring_abort_floor_) break;
        agent.last_token_epoch = msg.epoch;
        agent.ring_tokens.push_back(msg.epoch);
      }
      if (auto* tracer = rt_->tracer()) {
        tracer->instant(obs::EventKind::kTokenPass, static_cast<std::uint16_t>(r),
                        rt_->sim().now().to_nanos(), 0, msg.epoch);
      }
      agent.token.release();
      break;
    case ControlKind::kTokenBeacon:
      // Coord_NBMS ring progress report for the token watchdog.
      if (r != coordinator()) break;
      if (!round_in_progress_ || msg.epoch != round_epoch_) break;
      token_progress_ = true;
      if (static_cast<std::size_t>(msg.src) + 1 >= rt_->num_ranks()) {
        ring_done_ = true;
      } else if (msg.src + 1 > token_pos_) {
        token_pos_ = msg.src + 1;
      }
      break;
    case ControlKind::kCkptAck: {
      if (r != coordinator()) break;
      if (!round_in_progress_ || msg.epoch != round_epoch_) break;
      // Membership fencing: an ack from outside the round's view (an old
      // round's straggler, or a rank evicted since the round began) must
      // never count toward this commit.
      if (membership_ != nullptr &&
          (msg.view != round_view_ || !membership_->is_member(msg.src))) {
        break;
      }
      if (!acked_.insert(msg.src).second) break;
      if (acked_.size() == rt_->num_ranks()) {
        round_watchdog_.cancel();
        token_watchdog_.cancel();
        fruitless_rounds_ = 0;
        stall_valid_ = false;
        // The view moved since this round began: its membership no longer
        // backs the commit. Abort — the established-view callback normally
        // gets here first, so this is the last line of defence.
        if (membership_ != nullptr && membership_->view() != round_view_) {
          note_round_abort(round_epoch_);
          round_in_progress_ = false;
          begin_round(round_epoch_ + 1);
          break;
        }
        // Phase 2: make the global checkpoint permanent, then tell everyone.
        if (rt_->store().write_commit_blocking(self, coordinator(), round_epoch_) !=
            xplorer::IoStatus::kOk) {
          // The commit record never achieved durability: epoch e stays
          // tentative (the committed epoch did not advance). Abort the
          // round and re-initiate at a higher epoch — the same path the
          // round watchdog takes.
          ++stats_.commit_write_failures;
          note_round_abort(round_epoch_);
          CHK_DEBUG("coord", "commit write for epoch {} failed terminally at {}; "
                    "re-initiating", round_epoch_, rt_->sim().now().str());
          round_in_progress_ = false;
          begin_round(round_epoch_ + 1);
          break;
        }
        ++stats_.committed_rounds;
        CHK_DEBUG("coord", "epoch {} committed at {}", round_epoch_, rt_->sim().now().str());
        if (auto* tracer = rt_->tracer()) {
          tracer->instant(obs::EventKind::kCommit, static_cast<std::uint16_t>(coordinator()),
                          rt_->sim().now().to_nanos(), 0, round_epoch_);
        }
        for (Rank q = 0; q < rt_->num_ranks(); ++q) {
          rt_->comm().send_control(coordinator(), q,
                                   ControlMsg{ControlKind::kCommit, coordinator(),
                                              round_epoch_, 0, round_view_});
        }
        round_in_progress_ = false;
        schedule_next_round(cfg_.interval);
      }
      break;
    }
    case ControlKind::kCommit:
      handle_commit(r, msg.epoch);
      break;
    case ControlKind::kTokenRequest:
      // Coord_NBS: FIFO write-grant arbitration at the coordinator. A
      // fixed ring order would deadlock here — a rank blocked in its
      // (staggered) write stops sending, which can prevent the ring head
      // from ever reaching its safe point.
      if (r != coordinator()) break;
      if (grant_held_) {
        grant_queue_.push_back(msg.src);
      } else {
        grant_held_ = true;
        grant_holder_ = msg.src;
        grant_epoch_ = msg.epoch;
        rt_->comm().send_control(r, msg.src, ControlMsg{ControlKind::kToken, r, msg.epoch, 0});
      }
      break;
    case ControlKind::kTokenRelease:
      if (r != coordinator()) break;
      if (grant_queue_.empty()) {
        grant_held_ = false;
      } else {
        const Rank next = grant_queue_.front();
        grant_queue_.pop_front();
        grant_holder_ = next;
        grant_epoch_ = msg.epoch;
        rt_->comm().send_control(r, next, ControlMsg{ControlKind::kToken, r, msg.epoch, 0});
      }
      break;
    default:
      // Membership kinds are routed to the membership sink by the comm
      // system and never reach a protocol daemon's mailbox.
      break;
  }
}

void CoordinatedProtocol::safe_point(Rank r, des::Process& self) {
  Agent& agent = *agents_[r];
  if (agent.pending_epoch > agent.epoch) do_local_checkpoint(self, r, agent.pending_epoch);
}

void CoordinatedProtocol::do_local_checkpoint(des::Process& carrier, Rank r,
                                              std::uint32_t epoch) {
  Agent& agent = *agents_[r];
  if (agent.epoch >= epoch) return;
  agent.epoch = epoch;  // from here on, sends are tagged `epoch`
  ++stats_.local_checkpoints;

  Endpoint& endpoint = rt_->comm().endpoint(r);
  RankRuntime& rank = rt_->rank(r);

  const des::TimePoint block_start = rt_->sim().now();
  CheckpointImage image;
  image.rank = r;
  image.index = epoch;
  image.captured_at_ns = rt_->sim().now().to_nanos();
  std::vector<std::byte> full_blob = (rank.ready && !cfg_.ablate_discard_state)
                                         ? rank.registry.capture()
                                         : std::vector<std::byte>{};
  // Incremental mode: epochs off the full-image schedule store only the
  // chunks dirtied since the previous checkpoint.
  bool is_delta = false;
  if (cfg_.incremental && !full_blob.empty() && !is_full_epoch(epoch) &&
      agent.tracker.has_baseline()) {
    if (auto delta = agent.tracker.capture_delta(full_blob)) {
      image.state = delta->serialize();
      image.delta_base = agent.last_ckpt_epoch;
      is_delta = true;
      ++stats_.delta_checkpoints;
    }
  }
  if (!is_delta) {
    agent.tracker.rebase(full_blob);
    image.state = std::move(full_blob);
    image.delta_base = 0;
  }
  agent.last_ckpt_epoch = epoch;
  stats_.image_log.push_back(ProtocolStats::ImageRecord{
      epoch, static_cast<std::uint32_t>(r), image.state.size(),
      image.captured_at_ns, is_delta});
  image.seq = endpoint.seq_snapshot();
  // Channel state, part 1: pre-cut messages that arrived but were not yet
  // consumed. Post-cut (epoch >= e) messages are excluded — their senders
  // regenerate them after a rollback. Part 2 (late messages) accumulates
  // via on_arrival until the markers close the channels.
  agent.log.messages = endpoint.pending_snapshot();
  std::erase_if(agent.log.messages,
                [epoch](const Envelope& env) { return env.epoch >= epoch; });
  agent.logging = true;
  agent.durable = false;
  agent.finishing = false;

  // Tell every peer that no more pre-`epoch` messages will come from us.
  for (Rank q = 0; q < rt_->num_ranks(); ++q) {
    if (q != r) {
      rt_->comm().send_control(r, q, ControlMsg{ControlKind::kChannelMarker, r, epoch, 0});
    }
  }

  if (!is_buffered(cfg_.scheme)) {
    // Direct write-through: the application carries the whole (contended)
    // stable-storage write. The staggered ablation (Coord_NBS) serializes
    // the *blocking* writes through a FIFO grant — which is why the paper
    // found staggering useless without memory buffering: the stalls simply
    // queue up instead of overlapping.
    if (is_staggered(cfg_.scheme)) {
      agent.grant_outstanding = true;
      rt_->comm().send_control(r, coordinator(),
                               ControlMsg{ControlKind::kTokenRequest, r, epoch, 0});
      agent.token.acquire(carrier);
    }
    const xplorer::IoStatus wstatus =
        rt_->store().write_image_blocking(carrier, r, image, WriteContext::kAppBlocking);
    if (is_staggered(cfg_.scheme)) {
      rt_->comm().send_control(r, coordinator(),
                               ControlMsg{ControlKind::kTokenRelease, r, epoch, 0});
    }
    if (wstatus == xplorer::IoStatus::kOk) {
      agent.durable = true;
      try_finish(r, carrier, WriteContext::kAppBlocking);
    } else {
      // Terminal write failure: this rank never becomes durable, never
      // acks, and the round watchdog aborts the round — the retry loop at
      // the next epoch re-captures everything.
      ++stats_.ckpt_write_failures;
      CHK_DEBUG("coord", "rank {} image write for epoch {} failed terminally", r, epoch);
    }
    stats_.app_blocked += rt_->sim().now() - block_start;
    if (auto* tracer = rt_->tracer()) {
      tracer->span(obs::EventKind::kCkptWindow, static_cast<std::uint16_t>(r),
                   block_start.to_nanos(), rt_->sim().now().to_nanos(), 0, epoch);
    }
    return;
  }

  // Main-memory checkpointing: block only for the local copy, then hand
  // the image to a checkpointer thread that streams it out.
  rt_->machine().node(r).mem_copy(carrier, image.state.size());
  stats_.app_blocked += rt_->sim().now() - block_start;
  if (auto* tracer = rt_->tracer()) {
    tracer->span(obs::EventKind::kCkptWindow, static_cast<std::uint16_t>(r),
                 block_start.to_nanos(), rt_->sim().now().to_nanos(), 0, epoch);
  }
  track(rt_->sim().spawn(
      util::format("ckwr-r{}-e{}", r, epoch),
      [this, r, image = std::move(image)](des::Process& self) mutable {
        Agent& a = *agents_[r];
        // The epoch of the token whose permit admits this writer. Usually
        // the writer's own image index, but a straggler from a coalesced
        // round may ride a newer token — the ring's identity belongs to
        // the token, so that is the epoch this writer must forward.
        std::uint32_t ring_epoch = image.index;
        if (is_staggered(cfg_.scheme)) {
          a.token.acquire(self);
          if (!a.ring_tokens.empty()) {
            ring_epoch = a.ring_tokens.front();
            a.ring_tokens.pop_front();
          }
        }
        xplorer::Node& node = rt_->machine().node(r);
        node.begin_background_io();
        const xplorer::IoStatus wstatus = rt_->store().write_image_blocking(self, r, image);
        node.end_background_io();
        // The stagger ring keeps moving even past a failed write — the
        // token arbitrates pipeline occupancy, not success.
        if (is_staggered(cfg_.scheme) && r + 1 < rt_->num_ranks()) {
          rt_->comm().send_control(r, r + 1,
                                   ControlMsg{ControlKind::kToken, r, ring_epoch, 0});
        }
        if (is_staggered(cfg_.scheme) && cfg_.token_timeout.to_nanos() > 0) {
          rt_->comm().send_control(
              r, coordinator(),
              ControlMsg{ControlKind::kTokenBeacon, r, ring_epoch, 0});
        }
        if (wstatus == xplorer::IoStatus::kOk) {
          a.durable = true;
          try_finish(r, self);
        } else {
          ++stats_.ckpt_write_failures;
          CHK_DEBUG("coord", "rank {} background image write for epoch {} failed terminally",
                    r, image.index);
        }
      }));
}

void CoordinatedProtocol::try_finish(Rank r, des::Process& proc, WriteContext log_ctx) {
  Agent& agent = *agents_[r];
  // A fenced/evicted rank never contributes an ack: its cut may predate
  // the view the round now runs under.
  if (membership_ != nullptr && !membership_->is_member(r)) return;
  if (!agent.logging || agent.finishing || !agent.durable) return;
  const std::size_t needed = rt_->num_ranks() - 1;
  std::size_t have = 0;
  if (const auto it = agent.markers.find(agent.epoch); it != agent.markers.end()) {
    have = it->second.size();
  }
  if (have != needed) return;
  agent.finishing = true;
  agent.logging = false;
  if (!agent.log.messages.empty()) {
    if (rt_->store().write_log_blocking(proc, r, agent.epoch, agent.log, log_ctx) !=
        xplorer::IoStatus::kOk) {
      // Without a durable channel log the cut is not consistent; withhold
      // the ack so the round watchdog aborts and re-initiates.
      ++stats_.ckpt_write_failures;
      agent.finishing = false;
      agent.logging = true;
      CHK_DEBUG("coord", "rank {} log write for epoch {} failed terminally", r, agent.epoch);
      return;
    }
  }
  rt_->comm().send_control(
      r, coordinator(),
      ControlMsg{ControlKind::kCkptAck, r, agent.epoch, 0, current_view()});
}

void CoordinatedProtocol::handle_commit(Rank r, std::uint32_t epoch) {
  // Bounded storage footprint: everything older than the delta chains of
  // the newest keep_depth committed generations is obsolete. Without
  // incremental mode a chain is the single image itself.
  Agent& agent = *agents_[r];
  if (!agent.commit_history.empty() && agent.commit_history.back() >= epoch) {
    return;  // duplicate commit broadcast (lossy raw links)
  }
  agent.commit_history.push_back(epoch);
  // Prune only when the just-committed generation verifies here: a rotted
  // newest image must not retire the older generation recovery would fall
  // back to. (The image may legitimately be a delta; verification checks
  // the blob checksum, not the chain.)
  if (!rt_->store().verify_image(r, epoch)) {
    CHK_DEBUG("coord", "rank {} epoch {} image fails verification; GC skipped", r, epoch);
    return;
  }
  const std::size_t keep = std::max<std::uint32_t>(1, cfg_.keep_depth);
  const std::size_t have = agent.commit_history.size();
  // Retain the newest `keep` committed generations with their delta
  // chains; everything else at or below the new commit goes — including
  // tentative images from aborted rounds, which must never masquerade as
  // a fallback generation (their channel logs may be incomplete).
  std::set<std::uint32_t> retained;
  for (std::size_t i = have - std::min(keep, have); i < have; ++i) {
    std::uint32_t link = agent.commit_history[i];
    retained.insert(link);
    if (cfg_.incremental) {
      while (link != 0 && rt_->store().has_image(r, link)) {
        const auto image = rt_->store().try_peek_image(r, link);
        if (!image) return;  // corrupt chain element: keep everything for now
        if (image->delta_base == 0) break;
        link = image->delta_base;
        retained.insert(link);
      }
    }
  }
  for (std::uint32_t index : rt_->store().saved_indices(r)) {
    if (index <= epoch && !retained.contains(index)) {
      rt_->store().erase(r, index);
      ++stats_.gc_reclaimed;
    }
  }
}

RecoveryLine CoordinatedProtocol::recovery_line() const {
  // The newest epoch <= the committed epoch at which EVERY rank still
  // holds an image. Fault-free that is the committed epoch itself;
  // verified recovery may have retired a rotted committed image, in which
  // case the previous retained generation (keep_depth >= 2) is the newest
  // cut that can still be restored. Every committed epoch is a consistent
  // cut (images + channel logs were all durable before its commit), so
  // restoring an older one is safe — just more rollback.
  RecoveryLine line;
  const std::uint32_t committed = rt_->store().committed_epoch();
  std::uint32_t epoch = 0;
  if (committed != 0) {
    std::vector<std::uint32_t> common;
    for (std::uint32_t index : rt_->store().saved_indices(0)) {
      if (index <= committed) common.push_back(index);
    }
    for (Rank r = 1; r < rt_->num_ranks() && !common.empty(); ++r) {
      const auto saved = rt_->store().saved_indices(r);
      std::erase_if(common, [&saved](std::uint32_t index) {
        return std::find(saved.begin(), saved.end(), index) == saved.end();
      });
    }
    if (!common.empty()) epoch = common.back();
  }
  line.index.assign(rt_->num_ranks(), epoch);
  return line;
}

void CoordinatedProtocol::prepare_recovery(const RecoveryLine& line) {
  for (Rank r = 0; r < rt_->num_ranks(); ++r) {
    // Drop tentative (uncommitted) images above the line.
    for (std::uint32_t index : rt_->store().saved_indices(r)) {
      if (index > line.index[r]) rt_->store().erase(r, index);
    }
    Agent& agent = *agents_[r];
    agent.epoch = line.index[r];
    agent.pending_epoch = line.index[r];
    agent.logging = false;
    agent.durable = false;
    agent.finishing = false;
    agent.log.messages.clear();
    agent.markers.clear();
    while (agent.token.try_acquire()) {}
    agent.ring_tokens.clear();  // permits drained, their identities with them
    agent.tracker.reset();  // next capture is forced full
    agent.last_ckpt_epoch = line.index[r];
    // Post-recovery rounds run at epochs above the line, so re-seeding the
    // dedup floor here keeps their tokens acceptable.
    agent.last_token_epoch = line.index[r];
    agent.grant_outstanding = false;
    // Commits above the line no longer exist on storage (a fallback line
    // means the newer generation was discarded as unrecoverable).
    std::erase_if(agent.commit_history,
                  [&line, r](std::uint32_t e) { return e > line.index[r]; });
  }
  acked_.clear();
  round_in_progress_ = false;
  grant_queue_.clear();
  grant_held_ = false;
  round_watchdog_.cancel();
  token_watchdog_.cancel();
  ring_done_ = true;
  // Post-recovery rounds restart just above the line — aborts of the dead
  // incarnation must not swallow their tokens (mirrors the monitor reset).
  ring_abort_floor_ = 0;
  fruitless_rounds_ = 0;
  stall_valid_ = false;
}

void CoordinatedProtocol::resume_after_recovery() {
  install_safe_points();
  spawn_daemons();
  schedule_next_round(cfg_.interval);
}

}  // namespace chk::chklib
