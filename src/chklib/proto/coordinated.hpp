// Coordinated checkpointing (the paper's [11]: Silva & Silva, "Global
// Checkpointing for Distributed Programs", SRDS'92 — a coordinator-driven
// two-phase, non-blocking protocol over reliable FIFO channels), adapted
// to CHK-LIB's user-defined checkpointing model: processes capture at the
// safe points the application declares (AppContext::checkpoint_here).
//
// Round structure for epoch e:
//   1. The coordinator broadcasts CkptRequest(e) to every node's daemon,
//      which marks the checkpoint pending; the application takes it at its
//      next safe point (at most one loop iteration later).
//   2. The local checkpoint bumps the epoch (subsequent sends are tagged
//      e), captures the registered state, the channel sequence counters
//      and the arrived-but-unconsumed pre-e messages, then sends a
//      ChannelMarker(e) to every peer. The application is blocked for the
//      scheme's window: the whole stable-storage write (Coord_NB), only a
//      memory copy (Coord_NBM/NBMS).
//   3. Pre-e messages arriving after the local cut are appended to the
//      channel log; markers bound that logging (FIFO channels). Post-e
//      messages may be consumed before the local cut (the receiver's cut
//      then simply lies after the consumption): on recovery the restored
//      sequence state suppresses the re-sent duplicates, so no induced
//      checkpoints or message holding are needed.
//   4. Once its state is durable and all markers have arrived, a node
//      writes its channel log and acks; all N acks make the coordinator
//      write the commit record and broadcast Commit(e); epoch e-1 is then
//      discarded (constant storage footprint).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "chklib/ckpt/image.hpp"
#include "chklib/ckpt/incremental.hpp"
#include "chklib/proto/protocol.hpp"
#include "chklib/proto/scheme.hpp"
#include "des/sync.hpp"

namespace chk::chklib::membership {
class MembershipService;
}  // namespace chk::chklib::membership

namespace chk::chklib {

class CoordinatedProtocol final : public Protocol {
 public:
  struct Config {
    Scheme scheme = Scheme::kCoordNB;
    des::Duration interval = des::Duration::secs(60);
    /// Total global checkpoints to take; 0 = keep going until the run ends.
    std::uint32_t rounds = 3;
    Rank coordinator = 0;
    /// Ablation knob: capture empty state images. The remaining overhead is
    /// pure protocol synchronization (requests, markers, acks, commit) —
    /// used to isolate the paper's "sync cost is negligible" claim.
    bool ablate_discard_state = false;
    /// Incremental checkpointing (the technique of the paper's related work
    /// [13]): checkpoints between full ones store only the dirty chunks of
    /// the registered state; recovery applies the delta chain. Commit-time
    /// garbage collection keeps the chain back to the last full image.
    bool incremental = false;
    /// With incremental on: take a full image every N checkpoints (epoch 1,
    /// 1+N, ... are full), bounding the recovery chain length.
    std::uint32_t full_every = 4;
    /// Round watchdog: if > 0, the coordinator aborts a round whose acks
    /// have not completed within this duration and re-initiates it at the
    /// next epoch (the lost messages' checkpoints become tentative and are
    /// superseded). Zero disables the watchdog entirely — arming the timer
    /// perturbs event sequencing, so fault-free runs keep it off.
    des::Duration round_timeout = des::Duration::zero();
    /// Stagger-token watchdog period (Coord_NBMS): if > 0, writers beacon
    /// each token pass to the coordinator, which regenerates the token
    /// toward the next expected holder when a whole period elapses with no
    /// progress. Zero disables (and suppresses the beacons).
    des::Duration token_timeout = des::Duration::zero();
    /// Retention depth: commit-time GC keeps the delta chains of the
    /// newest `keep_depth` committed generations (>= 1). With unreliable
    /// storage a depth of at least 2 lets recovery fall back to the
    /// previous generation when the newest image turns out to be rotted.
    std::uint32_t keep_depth = 1;
  };

  CoordinatedProtocol(Runtime& runtime, Config config);
  ~CoordinatedProtocol() override { halt(); }  // daemons reference *this

  void start() override;

  // ProtocolHooks
  void on_send(Rank src, Envelope& env) override;
  void on_arrival(Rank dst, const Envelope& env) override;
  void on_deliver(des::Process& self, Rank dst, const Envelope& env) override;

  // Recovery
  [[nodiscard]] RecoveryLine recovery_line() const override;
  void prepare_recovery(const RecoveryLine& line) override;
  void resume_after_recovery() override;

  // Introspection (tests)
  [[nodiscard]] std::uint32_t epoch_of(Rank r) const noexcept { return agents_[r]->epoch; }
  [[nodiscard]] std::uint32_t pending_epoch_of(Rank r) const noexcept {
    return agents_[r]->pending_epoch;
  }
  [[nodiscard]] std::uint32_t committed_epoch() const noexcept {
    return rt_->store().committed_epoch();
  }
  [[nodiscard]] bool round_in_progress() const noexcept { return round_in_progress_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Attach the cluster-membership service (call before start()): the
  /// coordinator becomes the *elected* one (cfg_.coordinator is only the
  /// initial holder via view 0), round messages are stamped with the view
  /// they run under, acks from evicted ranks stop counting, and fenced
  /// ranks discard their in-flight round state instead of corrupting a
  /// commit. Without it the protocol behaves exactly as before.
  void set_membership(membership::MembershipService* membership);
  /// The round-initiating coordinator: elected when membership is attached,
  /// cfg_.coordinator otherwise.
  [[nodiscard]] Rank coordinator() const noexcept;

 private:
  struct Agent {
    explicit Agent(des::Simulator& sim) : token(sim, 0) {}
    std::uint32_t epoch = 0;          ///< last locally captured epoch
    std::uint32_t pending_epoch = 0;  ///< requested epoch (capture at next safe point)
    bool logging = false;             ///< channel log open for `epoch`
    bool durable = false;             ///< state image on disk
    bool finishing = false;           ///< log write + ack underway/done
    ChannelLog log;
    /// Marker senders per epoch. A set (not a count): lossy raw links can
    /// duplicate a marker, and a duplicate must not complete the round.
    std::map<std::uint32_t, std::set<Rank>> markers;
    des::SimSemaphore token;          ///< stagger permission to write
    IncrementalTracker tracker;       ///< dirty-chunk baseline (incremental mode)
    std::uint32_t last_ckpt_epoch = 0;
    /// Highest ring-token epoch honoured (Coord_NBMS); duplicates
    /// (link-level or watchdog-regenerated) are dropped so the stagger
    /// semaphore never creeps. Ring tokens carry strictly increasing
    /// epochs at any given rank, so the floor test is exact.
    std::uint32_t last_token_epoch = 0;
    /// Epochs of accepted ring tokens whose permit is not yet consumed
    /// (Coord_NBMS). Releases and acquires are FIFO-matched, so the front
    /// entry is exactly the token that admits the next writer — the writer
    /// forwards *that* epoch, not its own image index, so a straggler
    /// admitted by a newer token cannot relabel (and thereby duplicate)
    /// the ring token.
    std::deque<std::uint32_t> ring_tokens;
    /// Coord_NBS: a write grant was requested and not yet received. Grants
    /// arriving without an outstanding request are duplicates (an abort
    /// regrant racing the original) and are dropped.
    bool grant_outstanding = false;
    /// Commit epochs this rank has observed, ascending — the retention
    /// floor for keep-depth GC.
    std::vector<std::uint32_t> commit_history;
  };

  /// Epochs 1, 1+full_every, ... carry full images in incremental mode.
  [[nodiscard]] bool is_full_epoch(std::uint32_t epoch) const noexcept {
    return ((epoch - 1) % cfg_.full_every) == 0;
  }

  void install_safe_points();
  void spawn_daemons();
  void schedule_next_round(des::Duration delay);
  void begin_round(std::uint32_t epoch);
  void daemon_main(Rank r, des::Process& self);
  void handle_control(Rank r, des::Process& self, const ControlMsg& msg);
  void safe_point(Rank r, des::Process& self);
  void do_local_checkpoint(des::Process& carrier, Rank r, std::uint32_t epoch);
  /// `log_ctx` says who pays for the channel-log write if this call
  /// completes the checkpoint: kAppBlocking only when the application
  /// process carries it inside its blocking window.
  void try_finish(Rank r, des::Process& proc,
                  WriteContext log_ctx = WriteContext::kBackground);
  void handle_commit(Rank r, std::uint32_t epoch);
  /// Round watchdog expiry: abort the stalled round, re-initiate at the
  /// next epoch (and re-issue a possibly-lost Coord_NBS write grant).
  void on_round_timeout(std::uint32_t epoch);
  /// Round-abort bookkeeping shared by every abort path: stats, the
  /// ring-token floor, the invariant-observer hook and the trace event.
  void note_round_abort(std::uint32_t epoch);
  void arm_token_watchdog();
  /// Token watchdog expiry: regenerate the stagger token toward the next
  /// expected holder if no ring progress was beaconed this period.
  void on_token_timeout(std::uint32_t epoch);
  /// The view this message was stamped under (0 with no membership).
  [[nodiscard]] std::uint64_t current_view() const noexcept;
  /// Membership callback: a new view gathered its quorum — abort an
  /// in-flight round (its acks are now unmatchable) and re-initiate it
  /// under the new coordinator at the next epoch; advance a write grant
  /// parked at a crashed holder.
  void on_view_established();
  /// Membership callback: rank `r` was fenced (true) or rejoined (false).
  /// Fencing discards the rank's in-flight round state; its token
  /// semaphore is deliberately left alone (an Indep_MS-style acquire may
  /// be blocked on it).
  void on_rank_fenced(Rank r, bool fenced);

  Config cfg_;
  membership::MembershipService* membership_ = nullptr;
  /// View the in-flight round was initiated under (0 with no membership).
  std::uint64_t round_view_ = 0;
  std::vector<std::unique_ptr<Agent>> agents_;
  /// Ranks that acked the in-progress round (a set, not a count: lossy raw
  /// links can duplicate an ack, and a duplicate must not commit early).
  std::set<Rank> acked_;
  std::uint32_t round_epoch_ = 0;
  bool round_in_progress_ = false;
  // Coord_NBS write-grant arbitration (held by the coordinator's daemon).
  std::deque<Rank> grant_queue_;
  bool grant_held_ = false;
  Rank grant_holder_ = 0;           ///< valid while grant_held_
  std::uint32_t grant_epoch_ = 0;   ///< epoch the held grant was issued for
  // Watchdog state (armed only when the corresponding timeout is > 0).
  des::EventHandle round_watchdog_;
  des::EventHandle token_watchdog_;
  Rank token_pos_ = 0;          ///< next expected stagger-token holder
  bool token_progress_ = false; ///< a beacon arrived this watchdog period
  bool ring_done_ = true;       ///< the stagger ring completed this round
  /// Highest aborted round epoch this incarnation. An aborted round's ring
  /// token may still be in transit when the re-initiated round injects a
  /// fresh one; honouring the stale token would put two tokens in the ring
  /// (and let its writer relabel it with a live epoch), so tokens at or
  /// below this floor are dropped on arrival instead.
  std::uint32_t ring_abort_floor_ = 0;
  // Coord_NBS fail-fast: consecutive fruitless aborts (zero acks) with the
  // write grant stuck at the same holder indicate a lost grant-release on
  // raw links, which this scheme cannot recover without the reliable
  // transport — abort the run with an actionable diagnostic instead of
  // live-locking through endless round aborts.
  static constexpr std::uint32_t kGrantStallLimit = 3;
  std::uint32_t fruitless_rounds_ = 0;
  bool stall_valid_ = false;
  Rank stall_holder_ = 0;       ///< valid while stall_valid_
};

}  // namespace chk::chklib
