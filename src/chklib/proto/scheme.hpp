// The checkpointing schemes compared by the paper (plus two ablation /
// extension variants marked *).
//
//   Coord_B    * blocking coordinated: application frozen until global commit
//   Coord_NB     non-blocking protocol, application blocked during its own
//                stable-storage write
//   Coord_NBM    non-blocking + main-memory checkpointing (blocked only for
//                the memory copy; checkpointer thread writes in background)
//   Coord_NBMS   Coord_NBM + checkpoint staggering (token-based ring orders
//                the background writes so one node accesses stable storage
//                at a time)
//   Indep        independent: each node checkpoints autonomously, blocked
//                during its stable-storage write
//   Indep_M      independent + main-memory checkpointing
//   Indep_MS   * Indep_M + stagger arbitration (extension: does staggering
//                help without coordination?)
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace chk::chklib {

// Note on the missing "blocking" coordinated variant: a scheme that parks
// the application from its local checkpoint until the global commit
// DEADLOCKS under user-defined checkpoint placement — a blocked process
// sends nothing, so a neighbour that needs one of its messages to finish
// the current iteration never reaches its own safe point, never captures,
// and the commit never completes. Non-blocking coordination is therefore
// *required* (not merely faster) for CHK-LIB-style libraries; see
// EXPERIMENTS.md.
enum class Scheme {
  kNone,       ///< no checkpointing (the NORMAL baseline column)
  kCoordNB,    ///< paper's Coord_NB
  kCoordNBS,   ///< * staggered WITHOUT memory buffering (ablation: the paper
               ///<   found staggering only pays off combined with buffering)
  kCoordNBM,   ///< paper's Coord_NBM
  kCoordNBMS,  ///< paper's Coord_NBMS
  kIndep,      ///< paper's Indep
  kIndepM,     ///< paper's Indep_M
  kIndepMS,    ///< * staggered independent (extension)
};

[[nodiscard]] constexpr bool is_coordinated(Scheme s) noexcept {
  return s == Scheme::kCoordNB || s == Scheme::kCoordNBS || s == Scheme::kCoordNBM ||
         s == Scheme::kCoordNBMS;
}
[[nodiscard]] constexpr bool is_independent(Scheme s) noexcept {
  return s == Scheme::kIndep || s == Scheme::kIndepM || s == Scheme::kIndepMS;
}
/// Main-memory checkpointing: the application blocks only for the memory
/// copy; a checkpointer thread streams the data to stable storage.
[[nodiscard]] constexpr bool is_buffered(Scheme s) noexcept {
  return s == Scheme::kCoordNBM || s == Scheme::kCoordNBMS || s == Scheme::kIndepM ||
         s == Scheme::kIndepMS;
}
/// Checkpoint staggering: stable-storage writes are serialized across nodes.
[[nodiscard]] constexpr bool is_staggered(Scheme s) noexcept {
  return s == Scheme::kCoordNBS || s == Scheme::kCoordNBMS || s == Scheme::kIndepMS;
}

[[nodiscard]] std::string_view to_string(Scheme s) noexcept;
[[nodiscard]] Scheme scheme_from_string(const std::string& name);

}  // namespace chk::chklib
