// Abstract checkpointing protocol.
//
// A protocol owns the per-node "checkpointer thread" daemons, interposes on
// application messages (ProtocolHooks), drives checkpoint triggers, and
// cooperates with the RecoveryManager after a failure.
#pragma once

#include <cstdint>
#include <vector>

#include "chklib/comm/hooks.hpp"
#include "chklib/runtime.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"

namespace chk::chklib {

/// Per-rank checkpoint index to restore; 0 = the initial state.
struct RecoveryLine {
  std::vector<std::uint32_t> index;
  [[nodiscard]] bool at_origin() const noexcept {
    for (auto i : index) {
      if (i != 0) return false;
    }
    return true;
  }
};

struct ProtocolStats {
  std::uint64_t local_checkpoints = 0;  ///< per-process checkpoint operations
  std::uint64_t delta_checkpoints = 0;  ///< of which incremental deltas
  std::uint32_t committed_rounds = 0;   ///< globally committed epochs (coordinated)
  std::uint32_t aborted_rounds = 0;     ///< rounds the watchdog timed out and re-initiated
  std::uint32_t tokens_regenerated = 0; ///< stagger tokens re-issued by the watchdog
  std::uint64_t gc_reclaimed = 0;       ///< checkpoints deleted by garbage collection
  /// Checkpoint image/log writes that failed terminally (retries
  /// exhausted); the round aborted or the interval was skipped.
  std::uint64_t ckpt_write_failures = 0;
  /// Commit-record writes that failed terminally; the coordinator aborted
  /// the round and re-initiated it at the next epoch.
  std::uint32_t commit_write_failures = 0;
  /// Stored checkpoints discarded because their checksum no longer
  /// verified (bit-rot found by GC or recovery planning).
  std::uint64_t corrupt_discarded = 0;
  /// Total time application processes spent blocked performing checkpoint
  /// work (the scheme's blocking window, summed over ranks and rounds).
  des::Duration app_blocked;
  /// One record per captured checkpoint image, in capture order: the
  /// measured image-size curve for applications whose registered state
  /// grows and shrinks over time (the svc shard). `index` is the epoch
  /// (coordinated) or the per-rank checkpoint index (independent).
  struct ImageRecord {
    std::uint32_t index = 0;
    std::uint32_t rank = 0;
    std::uint64_t bytes = 0;
    std::int64_t at_ns = 0;
    bool delta = false;  ///< incremental delta rather than a full image
  };
  std::vector<ImageRecord> image_log;
};

class Protocol : public ProtocolHooks {
 public:
  explicit Protocol(Runtime& runtime) : rt_(&runtime) {}
  ~Protocol() override = default;

  /// Install hooks and spawn daemons / trigger timers. Call once, before
  /// Runtime::start_apps.
  virtual void start() = 0;

  /// Compute the recovery line from stable-storage metadata (free).
  [[nodiscard]] virtual RecoveryLine recovery_line() const = 0;

  /// Recovery step 1 (all processes already dead, channels flushed):
  /// erase rolled-back (post-line) checkpoints and reset protocol state.
  virtual void prepare_recovery(const RecoveryLine& line) = 0;

  /// Recovery step 2 (state restored): respawn daemons, rearm triggers.
  virtual void resume_after_recovery() = 0;

  /// Kill all protocol processes and cancel pending trigger timers.
  virtual void halt();

  /// Completed checkpoints: committed global rounds (coordinated) or
  /// durable local checkpoints (independent).
  [[nodiscard]] const ProtocolStats& stats() const noexcept { return stats_; }

 protected:
  /// Track a protocol-owned process so halt() can kill it.
  des::Process& track(des::Process& proc) {
    procs_.push_back(&proc);
    return proc;
  }
  void track_timer(des::EventHandle handle) { timers_.push_back(std::move(handle)); }

  Runtime* rt_;
  ProtocolStats stats_;
  std::vector<des::Process*> procs_;
  std::vector<des::EventHandle> timers_;
};

}  // namespace chk::chklib
