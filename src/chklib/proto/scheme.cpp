#include "chklib/proto/scheme.hpp"

#include "util/format.hpp"

namespace chk::chklib {

std::string_view to_string(Scheme s) noexcept {
  switch (s) {
    case Scheme::kNone: return "NORMAL";
    case Scheme::kCoordNB: return "Coord_NB";
    case Scheme::kCoordNBS: return "Coord_NBS";
    case Scheme::kCoordNBM: return "Coord_NBM";
    case Scheme::kCoordNBMS: return "Coord_NBMS";
    case Scheme::kIndep: return "Indep";
    case Scheme::kIndepM: return "Indep_M";
    case Scheme::kIndepMS: return "Indep_MS";
  }
  return "?";
}

Scheme scheme_from_string(const std::string& name) {
  for (Scheme s : {Scheme::kNone, Scheme::kCoordNB, Scheme::kCoordNBS, Scheme::kCoordNBM,
                   Scheme::kCoordNBMS, Scheme::kIndep, Scheme::kIndepM, Scheme::kIndepMS}) {
    if (name == to_string(s)) return s;
  }
  throw std::invalid_argument(util::format("unknown scheme '{}'", name));
}

}  // namespace chk::chklib
