// Independent (uncoordinated) checkpointing.
//
// Every node checkpoints at its own pace — a jittered local timer, no
// synchronization messages at all. Each application message piggybacks the
// sender's checkpoint-interval index, and the endpoints record send /
// receive dependency records that are saved with the *next* checkpoint;
// the recovery-line algorithms (recovery/line.hpp) rebuild a consistent
// global state from those records after a failure, rolling processes back
// through the domino effect when necessary. Multiple checkpoints per
// process accumulate in stable storage; an optional garbage collector
// reclaims those below the current recovery line (cf. [12]).
//
// Indep   = application blocked during its own stable-storage write.
// Indep_M = main-memory checkpointing (blocked only for the memory copy).
// Indep_MS (extension) = Indep_M plus stagger arbitration: background
//          writes acquire a global FIFO grant so only one node streams to
//          stable storage at a time, without coordinating the checkpoints
//          themselves.
#pragma once

#include <deque>
#include <memory>

#include "chklib/ckpt/image.hpp"
#include "chklib/proto/protocol.hpp"
#include "chklib/proto/scheme.hpp"
#include "chklib/recovery/line.hpp"
#include "des/sync.hpp"
#include "util/rng.hpp"

namespace chk::chklib {

/// Build per-rank histories from everything currently in stable storage
/// (metadata scan; free). Shared by GC and recovery.
[[nodiscard]] std::vector<ProcessHistory> collect_histories(const CheckpointStore& store,
                                                            std::size_t num_ranks);

class IndependentProtocol final : public Protocol {
 public:
  struct Config {
    Scheme scheme = Scheme::kIndep;
    des::Duration interval = des::Duration::secs(60);
    /// Checkpoints per node; 0 = keep going until the run ends.
    std::uint32_t count = 3;
    /// Timer jitter as a fraction of the interval (desynchronizes nodes).
    double jitter = 0.15;
    bool gc = false;
    LineMode gc_mode = LineMode::kStrict;
    LineMode recovery_mode = LineMode::kStrict;
    Rank arbiter = 0;  ///< stagger-grant arbiter node (Indep_MS)
    /// Pessimistic sender-based message logging (the paper's §1 remedy):
    /// checkpoint images additionally carry the payloads of the interval's
    /// sends, so recovery can replay lost messages and the orphan-free
    /// line becomes executable — no domino effect, at the price of larger
    /// checkpoints. Set recovery_mode/gc_mode to kOrphanFree with this.
    bool message_logging = false;
    /// Retention depth: GC never prunes a rank below its newest
    /// `keep_depth` verified generations (>= 1), even when the recovery
    /// line says they are reclaimable. With unreliable storage a depth of
    /// at least 2 lets recovery fall back to an older cut when the newest
    /// image turns out to be rotted at restore time.
    std::uint32_t keep_depth = 1;
  };

  IndependentProtocol(Runtime& runtime, Config config);
  ~IndependentProtocol() override { halt(); }  // daemons reference *this

  void start() override;

  // ProtocolHooks
  void on_send(Rank src, Envelope& env) override;
  void on_arrival(Rank dst, const Envelope& env) override;
  void on_deliver(des::Process& self, Rank dst, const Envelope& env) override;

  // Recovery
  [[nodiscard]] RecoveryLine recovery_line() const override;
  void prepare_recovery(const RecoveryLine& line) override;
  void resume_after_recovery() override;

  // Introspection (tests)
  [[nodiscard]] std::uint32_t intervals_of(Rank r) const noexcept {
    return agents_[r]->intervals;
  }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  /// Run one garbage-collection pass now (also runs automatically after
  /// each durable checkpoint when cfg.gc is set). Returns reclaimed count.
  std::uint64_t run_gc();

 private:
  struct Agent {
    explicit Agent(des::Simulator& sim) : token(sim, 0), captured(sim, 0) {}
    std::uint32_t intervals = 0;  ///< checkpoints taken (current interval index)
    bool pending = false;         ///< timer fired; capture at next safe point
    std::vector<SendRecord> sends;  ///< current-interval records (volatile)
    std::vector<RecvRecord> recvs;
    ChannelLog sent_log;         ///< current-interval payloads (message logging)
    des::SimSemaphore token;     ///< stagger grant
    des::SimSemaphore captured;  ///< paces the timer daemon
  };

  void install_safe_points();
  void spawn_daemons();
  void timer_main(Rank r, des::Process& self);
  void dispatcher_main(Rank r, des::Process& self);
  void safe_point(Rank r, des::Process& self);
  void do_local_checkpoint(des::Process& carrier, Rank r);
  void on_durable(Rank r);
  /// Terminal stable-storage failure: the interval is skipped (no image at
  /// this index) and the failed image's dependency records migrate forward
  /// into the next checkpoint so later cuts stay fully characterized.
  void failed_checkpoint(Rank r, CheckpointImage image);

  Config cfg_;
  std::vector<std::unique_ptr<Agent>> agents_;
  // Stagger arbiter state (lives logically at cfg_.arbiter's dispatcher).
  std::deque<Rank> grant_queue_;
  bool grant_held_ = false;
};

}  // namespace chk::chklib
