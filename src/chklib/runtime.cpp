#include "chklib/runtime.hpp"

#include "util/format.hpp"
#include "util/logging.hpp"

namespace chk::chklib {

Runtime::Runtime(des::Simulator& sim, xplorer::MachineConfig machine_config,
                 std::uint64_t seed)
    : sim_(&sim),
      machine_(sim, std::move(machine_config)),
      comm_(machine_),
      store_(machine_.storage()),
      seed_(seed) {
  ranks_.reserve(machine_.num_nodes());
  for (Rank r = 0; r < machine_.num_nodes(); ++r) {
    auto rank = std::make_unique<RankRuntime>();
    rank->rank = r;
    ranks_.push_back(std::move(rank));
  }
}

void Runtime::set_app(std::string name, AppFn body) {
  app_name_ = std::move(name);
  app_body_ = std::move(body);
}

void Runtime::spawn_rank(Rank r) {
  RankRuntime& rank = *ranks_[r];
  auto& proc = sim_->spawn(util::format("{}-r{}", app_name_, r), [this, &rank](des::Process& self) {
    rank.app_process = &self;
    AppContext ctx(*this, rank, self);
    app_body_(ctx);
    // Final implicit safe point: a round in flight can still capture the
    // finished state, so protocols complete even near the end of a run.
    ctx.checkpoint_here();
    rank.app_process = nullptr;
    ++finished_;
    if (finished_ == num_ranks()) {
      finished_at_ = sim_->now();
      sim_->stop();
    }
  });
  rank.app_process = &proc;  // valid immediately for kill purposes
}

void Runtime::start_apps() {
  if (!app_body_) throw des::SimError("start_apps: no application installed");
  apps_started_ = true;
  finished_ = 0;
  for (Rank r = 0; r < num_ranks(); ++r) spawn_rank(r);
}

void Runtime::restart_apps() {
  finished_ = 0;
  for (Rank r = 0; r < num_ranks(); ++r) {
    RankRuntime& rank = *ranks_[r];
    rank.registry.clear();
    rank.ready = false;
    ++rank.restarts;
    spawn_rank(r);
  }
}

void Runtime::kill_apps() {
  for (auto& rank : ranks_) {
    if (rank->app_process != nullptr) {
      sim_->kill(*rank->app_process);
      rank->app_process = nullptr;
    }
    rank->ready = false;
  }
}

void Runtime::kill_app(Rank r) {
  RankRuntime& rank = *ranks_[r];
  if (rank.app_process != nullptr) {
    sim_->kill(*rank.app_process);
    rank.app_process = nullptr;
  }
  rank.ready = false;
}

des::RunResult Runtime::run_to_completion(std::uint64_t max_events) {
  for (;;) {
    const auto result = sim_->run(des::TimePoint::max(), max_events);
    if (result.reason == des::StopReason::kStopped && apps_done()) return result;
    if (result.reason == des::StopReason::kStopped) continue;  // stop from elsewhere; resume
    throw des::SimError(util::format("run_to_completion: simulation ended ({}) at {} before apps finished",
                                     to_string(result.reason), sim_->now().str()));
  }
}

void AppContext::ready() {
  rank_->ready = true;
  if (rank_->pending_restore.has_value()) {
    rank_->registry.restore(*rank_->pending_restore);
    rank_->pending_restore.reset();
  }
}

}  // namespace chk::chklib
