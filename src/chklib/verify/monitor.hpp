// Runtime protocol-invariant monitor.
//
// A Monitor is an InvariantObserver installed on a Runtime's CommSystem and
// CheckpointStore. It re-derives, independently of the endpoint/protocol
// bookkeeping it is checking, what a correct CHK-LIB execution must look
// like, and reports any divergence through an InvariantSink:
//
//   fifo        per-(src,dst) channel delivery is FIFO, loss-free and
//               duplication-free within an incarnation: transmissions are
//               dense and monotone, the arrival stream is exactly the
//               transmission stream replayed in order;
//   epoch       the checkpoint epoch stamped on outgoing messages never
//               decreases at a sender (within an incarnation);
//   quiescence  coordinated rounds: once rank q received p's channel
//               marker for epoch e, no pre-e application message from p
//               may arrive at q, and nothing is consumed through a frozen
//               gate — a global checkpoint never swallows or reorders
//               application traffic;
//   consume     no message is consumed twice (mirrors the restored
//               ChannelSeqState across rollbacks);
//   stagger     staggered schemes: at most one rank is writing a
//               checkpoint image to stable storage at any instant;
//   membership  with the cluster-membership service attached: a view id
//               always identifies its proposer (view % N == src, so there
//               is at most one live coordinator per membership epoch), the
//               same view id never announces two different member sets,
//               rounds are initiated and committed by their view's
//               coordinator under the *same* view (no committed round
//               spans two membership epochs), and no rank outside a view's
//               member set contributes an ack toward its commits (fenced
//               ranks never corrupt a commit).
//
// The monitor is passive: it allocates only host memory and never touches
// simulated time, so an instrumented run is bit-identical to a bare one.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "chklib/comm/observer.hpp"
#include "chklib/proto/scheme.hpp"
#include "chklib/runtime.hpp"
#include "chklib/verify/invariants.hpp"

namespace chk::chklib::verify {

class Monitor final : public InvariantObserver {
 public:
  struct Options {
    Scheme scheme = Scheme::kNone;
    Policy policy = default_policy();
    bool check_fifo = true;
    bool check_epoch = true;
    bool check_consume = true;
    /// Default: armed automatically for coordinated schemes.
    bool check_quiescence = false;
    /// Default: armed automatically for staggered schemes.
    bool check_stagger = false;
    /// finalize(): require zero in-flight messages (off by default — the
    /// simulation stops the instant the last rank finishes, which can
    /// legitimately leave regenerated duplicates in flight).
    bool strict_final_inflight = false;
    /// Membership-safety checks (see header comment). Off by default; the
    /// harness arms it when the membership service is attached.
    bool check_membership = false;
    /// The raw links below the monitor drop / duplicate / reorder frames
    /// and no reliable transport repairs them (link faults on, transport
    /// off). Arrival-replay, quiescence, consume and stagger checks assume
    /// loss-free FIFO channels and are disabled; the transmit-side dense
    /// check and the "arrived but never transmitted" check remain.
    bool lossy_raw_links = false;
  };

  /// Builds scheme-appropriate options (quiescence for Coord_*, stagger
  /// for the *S variants).
  [[nodiscard]] static Options options_for(Scheme scheme, Policy policy = default_policy());

  Monitor(Runtime& runtime, Options options);
  ~Monitor() override;

  /// Hook into the runtime's comm system and checkpoint store. The monitor
  /// unhooks itself on destruction.
  void install();
  void uninstall();

  /// End-of-run checks (conservation) — call after the simulation stops.
  void finalize();

  [[nodiscard]] const InvariantSink& sink() const noexcept { return sink_; }
  [[nodiscard]] std::uint64_t checks() const noexcept { return sink_.checks(); }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return sink_.violations().size();
  }
  /// Messages transmitted but not yet arrived in the current incarnation.
  [[nodiscard]] std::uint64_t in_flight() const noexcept;

  // ---- InvariantObserver ---------------------------------------------------
  void on_transmit(const Envelope& env) override;
  void on_endpoint_arrival(const Envelope& env) override;
  void on_consume(Rank dst, const Envelope& env) override;
  void on_control_delivered(Rank dst, const ControlMsg& msg) override;
  void on_incarnation_bump(std::uint32_t incarnation) override;
  void on_flush(Rank rank) override;
  void on_restore_seq(Rank rank, const ChannelSeqState& state) override;
  void on_round_abort(std::uint32_t epoch) override;
  void on_token_regenerated(std::uint32_t epoch) override;
  void on_image_write_begin(Rank rank, std::uint32_t index) override;
  void on_image_write_end(Rank rank, std::uint32_t index) override;

 private:
  using ChannelKey = std::pair<Rank, Rank>;  // (src, dst)

  /// Everything the monitor believes about one directed channel in the
  /// current incarnation.
  struct ChannelState {
    bool tx_seen = false;
    std::uint64_t tx_base = 0;  ///< first transmitted seq since baseline
    std::uint64_t tx_next = 0;  ///< next expected outgoing seq
    bool rx_seen = false;
    std::uint64_t rx_next = 0;      ///< next expected arriving seq
    std::uint64_t tx_count = 0;     ///< transmissions since baseline
    std::uint64_t rx_count = 0;     ///< arrivals since baseline
    std::uint32_t marker_epoch = 0; ///< quiescence: latest channel marker
  };

  /// Receiver-side consumption state (mirror of the endpoint's dedup
  /// bookkeeping, maintained independently).
  struct ConsumeState {
    std::uint64_t upto = 0;
    std::set<std::uint64_t> extra;
  };

  ChannelState& channel(Rank src, Rank dst) { return channels_[{src, dst}]; }

  Runtime* rt_;
  Options opt_;
  InvariantSink sink_;
  bool installed_ = false;
  std::map<ChannelKey, ChannelState> channels_;
  std::map<ChannelKey, ConsumeState> consumed_;   // (dst, src) keyed
  std::map<Rank, std::uint32_t> last_tx_epoch_;   // epoch monotonicity per sender
  std::map<Rank, std::uint32_t> active_writes_;   // rank -> image index being written
  std::uint32_t aborted_epoch_ = 0;  // stagger: stragglers at/below this are exempt
  std::set<std::uint32_t> regen_epochs_;  // epochs whose ring token was re-issued
  // Membership checks: what each announced view claimed, and the view each
  // round (epoch) was last initiated under.
  std::map<std::uint64_t, std::uint64_t> view_members_;
  std::map<std::uint32_t, std::uint64_t> round_view_;
};

}  // namespace chk::chklib::verify
