// Brute-force recovery-line oracle.
//
// recovery/line.cpp computes the maximal consistent line with a rollback
// propagation fixpoint. This oracle re-derives the same answer from first
// principles: enumerate every candidate line (one restorable checkpoint
// index per rank), test each against a direct statement of the consistency
// predicate, and take the componentwise maximum of the consistent ones.
// Consistent lines are closed under join in both modes (a violation in the
// join projects to a violation in one operand), so that maximum is itself
// the unique maximal consistent line — the oracle verifies this lattice
// property explicitly rather than assuming it.
//
// Exponential in the number of ranks, so this is a test-time tool for
// small histories, not a production path.
#pragma once

#include <cstdint>
#include <vector>

#include "chklib/recovery/line.hpp"

namespace chk::chklib::verify {

struct OracleResult {
  RecoveryLine line;                        ///< componentwise max of consistent lines
  std::uint64_t lines_tested = 0;
  std::uint64_t consistent_lines = 0;       ///< always >= 1 (the all-zero line)
  bool max_is_consistent = false;           ///< lattice-closure sanity check
  /// Lost work per rank: newest saved checkpoint minus the line (the
  /// domino-effect depth the paper's independent schemes suffer).
  std::vector<std::uint32_t> domino_depth;
};

/// Direct consistency predicate: no orphan message, and in kStrict mode no
/// lost message either (identical semantics to recovery/line.cpp).
[[nodiscard]] bool line_consistent(const std::vector<ProcessHistory>& histories,
                                   const std::vector<std::uint32_t>& line, LineMode mode);

/// Enumerate all candidate lines and return the maximal consistent one.
/// Throws std::invalid_argument if the candidate space exceeds `max_lines`
/// (guards against accidental exponential blowup in tests).
[[nodiscard]] OracleResult brute_force_line(const std::vector<ProcessHistory>& histories,
                                            LineMode mode,
                                            std::uint64_t max_lines = std::uint64_t{1} << 22);

/// Domino depth of a line against the newest saved checkpoints.
[[nodiscard]] std::vector<std::uint32_t> domino_depths(
    const std::vector<ProcessHistory>& histories, const RecoveryLine& line);

}  // namespace chk::chklib::verify
