#include "chklib/verify/monitor.hpp"

#include <algorithm>
#include <utility>

#include "util/format.hpp"

namespace chk::chklib::verify {

Monitor::Options Monitor::options_for(Scheme scheme, Policy policy) {
  Options options;
  options.scheme = scheme;
  options.policy = policy;
  options.check_quiescence = is_coordinated(scheme);
  options.check_stagger = is_staggered(scheme);
  return options;
}

Monitor::Monitor(Runtime& runtime, Options options)
    : rt_(&runtime), opt_(options), sink_(runtime.sim(), options.policy) {
  if (opt_.lossy_raw_links) {
    // These invariants genuinely do not hold over unrepaired lossy links.
    opt_.check_quiescence = false;
    opt_.check_consume = false;
    opt_.check_stagger = false;
  }
}

Monitor::~Monitor() { uninstall(); }

void Monitor::install() {
  rt_->comm().set_observer(this);
  rt_->store().set_observer(this);
  installed_ = true;
}

void Monitor::uninstall() {
  if (!installed_) return;
  if (rt_->comm().observer() == this) rt_->comm().set_observer(nullptr);
  if (rt_->store().observer() == this) rt_->store().set_observer(nullptr);
  installed_ = false;
}

void Monitor::on_transmit(const Envelope& env) {
  if (opt_.check_fifo) {
    sink_.note_check();
    ChannelState& ch = channel(env.src, env.dst);
    if (!ch.tx_seen) {
      ch.tx_seen = true;
      ch.tx_base = env.seq;
      ch.tx_next = env.seq;
    }
    if (env.seq != ch.tx_next) {
      sink_.report("fifo", env.src,
                   util::format("channel {}->{}: transmitted seq {} but expected {} "
                                "(sends must be dense and monotone)",
                                env.src, env.dst, env.seq, ch.tx_next));
    }
    ch.tx_next = env.seq + 1;
    ++ch.tx_count;
  }
  if (opt_.check_epoch) {
    sink_.note_check();
    auto [it, inserted] = last_tx_epoch_.try_emplace(env.src, env.epoch);
    if (!inserted) {
      if (env.epoch < it->second) {
        sink_.report("epoch", env.src,
                     util::format("sender {} stamped epoch {} after already sending epoch {}",
                                  env.src, env.epoch, it->second));
      }
      it->second = std::max(it->second, env.epoch);
    }
  }
}

void Monitor::on_endpoint_arrival(const Envelope& env) {
  ChannelState& ch = channel(env.src, env.dst);
  if (opt_.check_fifo) {
    sink_.note_check();
    if (ch.tx_seen && env.seq >= ch.tx_next) {
      sink_.report("fifo", env.dst,
                   util::format("channel {}->{}: seq {} arrived but only seqs below {} "
                                "were ever transmitted",
                                env.src, env.dst, env.seq, ch.tx_next));
    }
    // Within an incarnation nothing is dropped and FIFO order holds, so
    // the arrival stream must replay the transmission stream exactly.
    // (Not so over unrepaired lossy links — skip the replay equality.)
    if (!opt_.lossy_raw_links && (ch.rx_seen || ch.tx_seen)) {
      const std::uint64_t expected = ch.rx_seen ? ch.rx_next : ch.tx_base;
      if (env.seq != expected) {
        sink_.report(
            "fifo", env.dst,
            util::format("channel {}->{}: seq {} arrived but expected {} ({})", env.src,
                         env.dst, env.seq, expected,
                         env.seq > expected ? "message lost" : "duplicated or reordered"));
      }
    }
    ch.rx_seen = true;
    ch.rx_next = env.seq + 1;
    ++ch.rx_count;
  }
  if (opt_.check_quiescence) {
    sink_.note_check();
    if (ch.marker_epoch > 0 && env.epoch < ch.marker_epoch) {
      sink_.report("quiescence", env.dst,
                   util::format("channel {}->{}: pre-epoch message (epoch {}, seq {}) "
                                "arrived after the channel marker for epoch {} — "
                                "a message leaked across the global checkpoint",
                                env.src, env.dst, env.epoch, env.seq, ch.marker_epoch));
    }
  }
}

void Monitor::on_consume(Rank dst, const Envelope& env) {
  if (opt_.check_consume) {
    sink_.note_check();
    ConsumeState& cs = consumed_[{dst, env.src}];
    if (env.seq < cs.upto || cs.extra.contains(env.seq)) {
      sink_.report("consume", dst,
                   util::format("channel {}->{}: seq {} consumed twice", env.src, dst,
                                env.seq));
    } else if (env.seq == cs.upto) {
      ++cs.upto;
      while (cs.extra.erase(cs.upto) > 0) ++cs.upto;
    } else {
      cs.extra.insert(env.seq);
    }
  }
  if (opt_.check_quiescence) {
    sink_.note_check();
    if (rt_->comm().endpoint(dst).gate().frozen()) {
      sink_.report("quiescence", dst,
                   util::format("rank {} consumed seq {} from {} through a frozen gate",
                                dst, env.seq, env.src));
    }
  }
}

void Monitor::on_control_delivered(Rank dst, const ControlMsg& msg) {
  if (opt_.check_quiescence && msg.kind == ControlKind::kChannelMarker) {
    ChannelState& ch = channel(msg.src, dst);
    ch.marker_epoch = std::max(ch.marker_epoch, msg.epoch);
  }
  if (!opt_.check_membership) return;
  const auto n = static_cast<std::uint64_t>(rt_->num_ranks());
  switch (msg.kind) {
    case ControlKind::kViewChange: {
      sink_.note_check();
      if (msg.view % n != msg.src) {
        sink_.report("membership", msg.src,
                     util::format("view {} proposed by rank {} but encodes "
                                  "coordinator {} — a view must elect its proposer",
                                  msg.view, msg.src, msg.view % n));
      }
      const auto [it, inserted] = view_members_.try_emplace(msg.view, msg.members);
      if (!inserted && it->second != msg.members) {
        sink_.report("membership", msg.src,
                     util::format("view {} announced with member set {:#x} after "
                                  "{:#x} — one view id, two member sets",
                                  msg.view, msg.members, it->second));
      }
      break;
    }
    case ControlKind::kCkptRequest: {
      sink_.note_check();
      if (msg.view % n != msg.src) {
        sink_.report("membership", msg.src,
                     util::format("round {} initiated by rank {} under view {} whose "
                                  "coordinator is {} — two live coordinators in one "
                                  "membership epoch",
                                  msg.epoch, msg.src, msg.view, msg.view % n));
      }
      round_view_[msg.epoch] = msg.view;  // the latest (re-)initiation owns the epoch
      break;
    }
    case ControlKind::kCommit: {
      sink_.note_check();
      if (msg.view % n != msg.src) {
        sink_.report("membership", msg.src,
                     util::format("epoch {} committed by rank {} under view {} whose "
                                  "coordinator is {}",
                                  msg.epoch, msg.src, msg.view, msg.view % n));
      }
      if (const auto it = round_view_.find(msg.epoch);
          it != round_view_.end() && it->second != msg.view) {
        sink_.report("membership", msg.src,
                     util::format("epoch {} initiated under view {} but committed "
                                  "under view {} — a committed round must not span "
                                  "two membership epochs",
                                  msg.epoch, it->second, msg.view));
      }
      break;
    }
    case ControlKind::kCkptAck: {
      sink_.note_check();
      // View 0 (and any view whose announcement the monitor never saw —
      // impossible for adopted views, which are broadcast) means full
      // membership: nothing to reject.
      if (const auto it = view_members_.find(msg.view);
          it != view_members_.end() && ((it->second >> msg.src) & 1u) == 0) {
        sink_.report("membership", msg.src,
                     util::format("rank {} acked epoch {} under view {} it is not a "
                                  "member of — fenced ranks must not contribute to "
                                  "a commit",
                                  msg.src, msg.epoch, msg.view));
      }
      break;
    }
    default:
      break;
  }
}

void Monitor::on_incarnation_bump(std::uint32_t incarnation) {
  (void)incarnation;
  // Everything in flight from the old incarnation is dead; sequence
  // counters rewind to the recovery line. All channel expectations reset
  // (on_restore_seq re-seeds the survivors' counters).
  channels_.clear();
  consumed_.clear();
  last_tx_epoch_.clear();
  // Writer processes killed mid-write never report completion.
  active_writes_.clear();
  // Post-recovery rounds restart below the pre-crash epoch numbers; the
  // stale-straggler and regenerated-token exemptions must not leak onto them.
  aborted_epoch_ = 0;
  regen_epochs_.clear();
  // Rounds of the dead incarnation never commit; epoch numbers above the
  // recovery line may be re-initiated (under a newer view) after restart.
  round_view_.clear();
}

void Monitor::on_flush(Rank rank) {
  for (auto it = channels_.begin(); it != channels_.end();) {
    if (it->first.first == rank || it->first.second == rank) {
      it = channels_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = consumed_.begin(); it != consumed_.end();) {
    if (it->first.first == rank) {
      it = consumed_.erase(it);
    } else {
      ++it;
    }
  }
  last_tx_epoch_.erase(rank);
}

void Monitor::on_restore_seq(Rank rank, const ChannelSeqState& state) {
  for (const auto& [dst, seq] : state.send_next) {
    ChannelState& ch = channel(rank, static_cast<Rank>(dst));
    ch.tx_seen = true;
    ch.tx_base = seq;
    ch.tx_next = seq;
    ch.tx_count = 0;
  }
  for (const auto& [src, seq] : state.consumed_upto) {
    consumed_[{rank, static_cast<Rank>(src)}].upto = seq;
  }
  for (const auto& [src, seq] : state.consumed_extra) {
    consumed_[{rank, static_cast<Rank>(src)}].extra.insert(seq);
  }
}

void Monitor::on_round_abort(std::uint32_t epoch) {
  // Writes of the aborted round keep draining at the disk — and its stale
  // stagger token may still start one on a rank the abort hasn't reached
  // yet. Such stragglers legitimately overlap the re-initiated round's
  // first writer; only serialization *within* a round is an invariant.
  aborted_epoch_ = std::max(aborted_epoch_, epoch);
  std::erase_if(active_writes_,
                [epoch](const auto& kv) { return kv.second <= epoch; });
}

void Monitor::on_token_regenerated(std::uint32_t epoch) { regen_epochs_.insert(epoch); }

void Monitor::on_image_write_begin(Rank rank, std::uint32_t index) {
  const bool stale = index <= aborted_epoch_;  // a dead round's straggler
  if (opt_.check_stagger) {
    sink_.note_check();
    // The stagger token admits one writer per ring epoch at a time. A
    // *previous* round's ring may still be draining when the next round
    // starts (buffered schemes commit on capture, not on durability), so
    // only a same-epoch concurrent writer is a protocol violation.
    // ... unless this epoch's token was regenerated: a merely-delayed
    // original means two tokens briefly share the ring, by design.
    if (!stale && !regen_epochs_.contains(index)) {
      for (const auto& [other_rank, other_index] : active_writes_) {
        if (other_index != index) continue;
        sink_.report("stagger", rank,
                     util::format("rank {} started writing checkpoint image {} while "
                                  "rank {} is still writing the same image — the "
                                  "stagger token admits one writer per round",
                                  rank, index, other_rank));
        break;
      }
    }
  }
  if (!stale) active_writes_[rank] = index;
}

void Monitor::on_image_write_end(Rank rank, std::uint32_t index) {
  (void)index;
  active_writes_.erase(rank);
}

std::uint64_t Monitor::in_flight() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, ch] : channels_) {
    if (ch.tx_count > ch.rx_count) total += ch.tx_count - ch.rx_count;
  }
  return total;
}

void Monitor::finalize() {
  if (!opt_.strict_final_inflight) return;
  for (const auto& [key, ch] : channels_) {
    sink_.note_check();
    if (ch.tx_count != ch.rx_count) {
      sink_.report("conservation", key.second,
                   util::format("channel {}->{}: {} transmitted but {} arrived at the "
                                "end of the run",
                                key.first, key.second, ch.tx_count, ch.rx_count));
    }
  }
}

}  // namespace chk::chklib::verify
