// Invariant-violation reporting for the protocol checkers.
//
// Checkers funnel every failed invariant through an InvariantSink, which
// produces a structured diagnostic (util/logging) and then acts per policy:
//
//   kThrowDeferred  schedule an immediate kernel event that throws
//                   InvariantViolation, so the error unwinds out of
//                   Simulator::run() on the driving thread regardless of
//                   whether the violation was detected in kernel or
//                   process context (throwing from a simulated process
//                   would be swallowed at the process boundary);
//   kAbort          log and std::abort() — the hard-stop mode used when
//                   CHK_INVARIANTS builds run real experiments;
//   kRecord         collect only (used by tests that assert on the
//                   violation list).
//
// The sink always records the violation before acting, so post-mortem
// inspection works in every mode.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chklib/comm/envelope.hpp"
#include "des/simulator.hpp"
#include "des/time.hpp"

namespace chk::chklib::verify {

/// Thrown (deferred, from kernel context) when an invariant fails under
/// Policy::kThrowDeferred. Derives from SimError so existing catch sites
/// treat it as a fatal structural error, never a simulation outcome.
class InvariantViolation : public des::SimError {
 public:
  using SimError::SimError;
};

enum class Policy : std::uint8_t { kThrowDeferred, kAbort, kRecord };

/// Build-level default: hard abort in CHK_INVARIANTS builds, deferred
/// throw otherwise (tests can always override per sink).
[[nodiscard]] constexpr Policy default_policy() noexcept {
#ifdef CHK_INVARIANTS
  return Policy::kAbort;
#else
  return Policy::kThrowDeferred;
#endif
}

struct Violation {
  std::string checker;  ///< "fifo", "quiescence", "stagger", "integrity", ...
  Rank rank = 0;        ///< rank the violation was observed at
  std::string message;
  des::TimePoint when;
};

class InvariantSink {
 public:
  explicit InvariantSink(des::Simulator& sim, Policy policy = default_policy())
      : sim_(&sim), policy_(policy) {}
  InvariantSink(const InvariantSink&) = delete;
  InvariantSink& operator=(const InvariantSink&) = delete;

  /// Report a failed invariant; acts according to the sink's policy.
  void report(std::string_view checker, Rank rank, std::string message);

  /// Checkers call this once per evaluated invariant (cheap counter that
  /// lets callers prove the checks actually ran).
  void note_check() noexcept { ++checks_; }

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
  [[nodiscard]] Policy policy() const noexcept { return policy_; }

 private:
  des::Simulator* sim_;
  Policy policy_;
  std::vector<Violation> violations_;
  std::uint64_t checks_ = 0;
  bool throw_scheduled_ = false;
};

}  // namespace chk::chklib::verify
