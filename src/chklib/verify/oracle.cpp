#include "chklib/verify/oracle.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

namespace chk::chklib::verify {

bool line_consistent(const std::vector<ProcessHistory>& histories,
                     const std::vector<std::uint32_t>& line, LineMode mode) {
  const std::size_t n = histories.size();
  // Orphan rule: a receive remembered by the receiver whose send the
  // sender has forgotten.
  for (std::size_t q = 0; q < n; ++q) {
    for (const RecvRecord& rec : histories[q].recvs) {
      if (rec.recv_interval < line[q] && rec.send_interval >= line[rec.src]) return false;
    }
  }
  if (mode == LineMode::kStrict) {
    // Lost-message rule: a send remembered by the sender whose receive the
    // receiver has forgotten (or that was never received at all).
    std::vector<std::map<std::pair<Rank, std::uint64_t>, std::uint32_t>> recv_at(n);
    for (std::size_t q = 0; q < n; ++q) {
      for (const RecvRecord& rec : histories[q].recvs) {
        recv_at[q][{rec.src, rec.seq}] = rec.recv_interval;
      }
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (const SendRecord& rec : histories[p].sends) {
        if (rec.interval >= line[p]) continue;
        const auto it = recv_at[rec.dst].find({static_cast<Rank>(p), rec.seq});
        const std::uint32_t recv_interval =
            it == recv_at[rec.dst].end() ? std::numeric_limits<std::uint32_t>::max()
                                         : it->second;
        if (recv_interval >= line[rec.dst]) return false;
      }
    }
  }
  return true;
}

OracleResult brute_force_line(const std::vector<ProcessHistory>& histories, LineMode mode,
                              std::uint64_t max_lines) {
  const std::size_t n = histories.size();
  // Candidate indices per rank: the initial state plus every saved checkpoint.
  std::vector<std::vector<std::uint32_t>> candidates(n);
  std::uint64_t total = 1;
  for (std::size_t p = 0; p < n; ++p) {
    candidates[p].push_back(0);
    for (std::uint32_t index : histories[p].saved) {
      if (index != 0) candidates[p].push_back(index);
    }
    total *= candidates[p].size();
    if (total > max_lines) {
      throw std::invalid_argument("brute_force_line: candidate space too large");
    }
  }

  OracleResult result;
  result.line.index.assign(n, 0);
  std::vector<std::uint32_t> line(n, 0);
  for (std::uint64_t i = 0; i < total; ++i) {
    std::uint64_t rest = i;
    for (std::size_t p = 0; p < n; ++p) {
      line[p] = candidates[p][rest % candidates[p].size()];
      rest /= candidates[p].size();
    }
    ++result.lines_tested;
    if (line_consistent(histories, line, mode)) {
      ++result.consistent_lines;
      for (std::size_t p = 0; p < n; ++p) {
        result.line.index[p] = std::max(result.line.index[p], line[p]);
      }
    }
  }
  result.max_is_consistent = line_consistent(histories, result.line.index, mode);
  result.domino_depth = domino_depths(histories, result.line);
  return result;
}

std::vector<std::uint32_t> domino_depths(const std::vector<ProcessHistory>& histories,
                                         const RecoveryLine& line) {
  std::vector<std::uint32_t> depths(histories.size(), 0);
  for (std::size_t p = 0; p < histories.size(); ++p) {
    const std::uint32_t newest = histories[p].saved.empty() ? 0 : histories[p].saved.back();
    depths[p] = newest > line.index[p] ? newest - line.index[p] : 0;
  }
  return depths;
}

}  // namespace chk::chklib::verify
