#include "chklib/verify/invariants.hpp"

#include <cstdlib>
#include <utility>

#include "util/format.hpp"
#include "util/logging.hpp"

namespace chk::chklib::verify {

void InvariantSink::report(std::string_view checker, Rank rank, std::string message) {
  Violation violation;
  violation.checker = std::string(checker);
  violation.rank = rank;
  violation.message = std::move(message);
  violation.when = sim_->now();
  CHK_ERROR("verify", "invariant violated [{}] rank {} at {}: {}", violation.checker,
            violation.rank, violation.when.str(), violation.message);
  violations_.push_back(std::move(violation));

  switch (policy_) {
    case Policy::kRecord:
      return;
    case Policy::kAbort:
      std::abort();
    case Policy::kThrowDeferred: {
      if (throw_scheduled_) return;
      throw_scheduled_ = true;
      // Throwing here would be swallowed if we are inside a simulated
      // process (Process::thread_main catches everything); a zero-delay
      // kernel event always unwinds out of Simulator::run instead.
      const Violation& first = violations_.back();
      sim_->schedule_now([first] {
        throw InvariantViolation(util::format("invariant violated [{}] rank {}: {}",
                                              first.checker, first.rank, first.message));
      });
      return;
    }
  }
}

}  // namespace chk::chklib::verify
