// CHK-LIB runtime: one experiment's machine, communication fabric,
// checkpoint store and per-rank application state.
//
// An application is an AppFn executed by one simulated process per rank.
// The body is written restartable: persistent state lives in the rank's
// RankRuntime (so the checkpointer can capture it while the app runs and
// recovery can restore it between runs), and the body's structure is
//
//   auto& st = ctx.state<MyState>();       // persists across restarts
//   if (ctx.fresh()) { ...initialize st...}
//   ctx.register_vector("grid", st.grid);  // declare recoverable state
//   ctx.ready();                           // restore applied here if rolling back
//   for (; st.iter < n; ++st.iter) {
//     ctx.checkpoint_here();               // safe point: state == resumption point
//     ...compute/communicate...
//   }
//
// checkpoint_here() marks the *safe points* at which pending checkpoint
// requests are honoured (CHK-LIB is a user-defined checkpointing library:
// the application declares where its registered state is consistent). A
// final implicit safe point runs after the body returns.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chklib/ckpt/registry.hpp"
#include "chklib/ckpt/store.hpp"
#include "chklib/comm/comm_system.hpp"
#include "chklib/comm/typed.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"
#include "util/rng.hpp"
#include "xplorer/machine.hpp"

namespace chk::chklib {

class AppContext;
using AppFn = std::function<void(AppContext&)>;

/// Per-rank persistent runtime: survives application restarts (recovery).
struct RankRuntime {
  Rank rank = 0;
  CheckpointRegistry registry;
  std::shared_ptr<void> app_state;  ///< application's persistent state object
  /// State blob to apply at the next AppContext::ready() (set by recovery).
  std::optional<std::vector<std::byte>> pending_restore;
  bool fresh = true;   ///< true on first start and when rolled back to the initial state
  bool ready = false;  ///< registration complete; checkpoints may capture
  des::Process* app_process = nullptr;
  std::uint32_t restarts = 0;
  /// Installed by the active protocol; invoked (in the application process
  /// context) at every declared safe point to honour pending checkpoints.
  std::function<void(des::Process&)> on_safe_point;
};

class Runtime {
 public:
  Runtime(des::Simulator& sim, xplorer::MachineConfig machine_config, std::uint64_t seed);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  /// Ends the simulation: every live simulated process is killed and
  /// joined while the communication fabric is still alive (process stacks
  /// hold references into it).
  ~Runtime() { sim_->shutdown(); }

  [[nodiscard]] des::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] xplorer::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] CommSystem& comm() noexcept { return comm_; }
  [[nodiscard]] CheckpointStore& store() noexcept { return store_; }
  [[nodiscard]] std::size_t num_ranks() const noexcept { return ranks_.size(); }
  [[nodiscard]] RankRuntime& rank(Rank r) noexcept { return *ranks_[r]; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Deterministic child RNG for a subsystem.
  [[nodiscard]] util::Rng fork_rng(std::uint64_t tag) const { return util::Rng(seed_).fork(tag); }

  /// Attach an event tracer to every instrumented seam (kernel, nodes,
  /// comm fabric, checkpoint store); nullptr detaches. Pure observation —
  /// the simulated schedule is unchanged.
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    sim_->set_tracer(tracer);
    machine_.set_tracer(tracer);
    comm_.set_tracer(tracer);
    store_.set_tracer(tracer);
  }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Install the application (same body on every rank, SPMD style).
  void set_app(std::string name, AppFn body);

  /// Spawn the application processes (fresh start).
  void start_apps();
  /// Recovery path: respawn all application processes; pending_restore /
  /// fresh flags must already be staged by the recovery manager.
  void restart_apps();
  /// Kill all live application processes (failure handling).
  void kill_apps();
  /// Kill one rank's application process (membership crash model: the rank
  /// is down but the cluster has not yet detected it).
  void kill_app(Rank r);

  [[nodiscard]] bool apps_done() const noexcept { return apps_started_ && finished_ == num_ranks(); }
  [[nodiscard]] des::TimePoint apps_finished_at() const noexcept { return finished_at_; }

  /// Rank 0 reports the application's final result digest (verification).
  void report_result(double digest) noexcept { result_digest_ = digest; }
  [[nodiscard]] std::optional<double> result_digest() const noexcept { return result_digest_; }

  /// Run the simulation until every application process finished. Throws
  /// SimError if the simulation idles or deadlocks first.
  des::RunResult run_to_completion(std::uint64_t max_events = std::uint64_t{1} << 40);

 private:
  void spawn_rank(Rank r);

  des::Simulator* sim_;
  xplorer::Machine machine_;
  CommSystem comm_;
  CheckpointStore store_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t seed_;
  std::string app_name_ = "app";
  AppFn app_body_;
  std::vector<std::unique_ptr<RankRuntime>> ranks_;
  bool apps_started_ = false;
  std::size_t finished_ = 0;
  des::TimePoint finished_at_;
  std::optional<double> result_digest_;
};

/// The API surface an application body programs against (per invocation).
class AppContext {
 public:
  AppContext(Runtime& runtime, RankRuntime& rank, des::Process& self)
      : runtime_(&runtime),
        rank_(&rank),
        self_(&self),
        endpoint_(&runtime.comm().endpoint(rank.rank)),
        node_(&runtime.machine().node(rank.rank)) {}

  [[nodiscard]] Rank rank() const noexcept { return rank_->rank; }
  [[nodiscard]] std::size_t nprocs() const noexcept { return runtime_->num_ranks(); }
  [[nodiscard]] des::Process& self() noexcept { return *self_; }
  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }

  /// True on first start or after a rollback to the initial state: the
  /// application must (re)initialize its persistent state.
  [[nodiscard]] bool fresh() const noexcept { return rank_->fresh; }
  [[nodiscard]] std::uint32_t restarts() const noexcept { return rank_->restarts; }

  /// Persistent state object (survives restarts).
  template <typename T>
  T& state() {
    if (!rank_->app_state) rank_->app_state = std::make_shared<T>();
    return *std::static_pointer_cast<T>(rank_->app_state);
  }

  void register_region(std::string name, std::span<std::byte> bytes) {
    rank_->registry.register_region(std::move(name), bytes);
  }
  template <typename T>
  void register_value(std::string name, T& value) {
    rank_->registry.register_value(std::move(name), value);
  }
  template <typename T>
  void register_vector(std::string name, std::vector<T>& v) {
    rank_->registry.register_vector(std::move(name), v);
  }
  /// Variable-size vector region: checkpoint images track the vector's
  /// current size (see CheckpointRegistry::register_dynamic_vector).
  template <typename T>
  void register_dynamic_vector(std::string name, std::vector<T>& v) {
    rank_->registry.register_dynamic_vector(std::move(name), v);
  }

  /// Registration complete: apply any pending rollback restore and allow
  /// checkpoints to capture from here on.
  void ready();

  /// Safe point: the registered state exactly describes a resumption point
  /// (typically the top of the main loop). Pending checkpoint requests are
  /// executed here, in this process's context — the calling application is
  /// blocked for exactly the scheme's blocking window.
  void checkpoint_here() {
    if (rank_->on_safe_point) rank_->on_safe_point(*self_);
  }

  /// Deterministic per-rank RNG stream. Applications that must replay
  /// identically across rollbacks keep a util::Rng inside their registered
  /// state instead.
  [[nodiscard]] util::Rng fork_rng(std::uint64_t tag) const {
    return runtime_->fork_rng(0x1000 + rank_->rank).fork(tag);
  }

  // ---- modelled work -------------------------------------------------------
  void compute(double flops) {
    endpoint_->gate().enter(*self_);
    node_->compute(*self_, flops);
  }

  // ---- communication (forwarders to the endpoint) ---------------------------
  void send(Rank dst, int tag, std::vector<std::byte> payload) {
    endpoint_->send(*self_, dst, tag, std::move(payload));
  }
  [[nodiscard]] Envelope recv(int src = kAnySource, int tag = kAnyTag) {
    return endpoint_->recv(*self_, src, tag);
  }
  /// recv bounded by the simulation clock: nullopt once `deadline` passes
  /// with no matching message (see Endpoint::recv_until).
  [[nodiscard]] std::optional<Envelope> recv_until(des::TimePoint deadline,
                                                   int src = kAnySource,
                                                   int tag = kAnyTag) {
    return endpoint_->recv_until(*self_, deadline, src, tag);
  }
  /// Non-blocking check for a consumable matching message.
  [[nodiscard]] bool probe(int src = kAnySource, int tag = kAnyTag) const {
    return endpoint_->probe(src, tag);
  }
  /// Current simulated time (for scheduled-arrival bookkeeping).
  [[nodiscard]] des::TimePoint now() const noexcept { return runtime_->sim().now(); }
  template <typename T>
  void send_value(Rank dst, int tag, const T& value) {
    chklib::send_value(*endpoint_, *self_, dst, tag, value);
  }
  template <typename T>
  T recv_value(int src = kAnySource, int tag = kAnyTag) {
    return chklib::recv_value<T>(*endpoint_, *self_, src, tag);
  }
  template <typename T>
  void send_span(Rank dst, int tag, std::span<const T> values) {
    chklib::send_span(*endpoint_, *self_, dst, tag, values);
  }
  template <typename T>
  std::vector<T> recv_vector(int src = kAnySource, int tag = kAnyTag) {
    return chklib::recv_vector<T>(*endpoint_, *self_, src, tag);
  }
  void barrier() { endpoint_->barrier(*self_); }
  std::vector<std::byte> broadcast(Rank root, std::vector<std::byte> data) {
    return endpoint_->broadcast(*self_, root, std::move(data));
  }
  double reduce_sum(Rank root, double value) { return endpoint_->reduce_sum(*self_, root, value); }
  double allreduce_sum(double value) { return endpoint_->allreduce_sum(*self_, value); }
  double reduce_min(Rank root, double value) { return endpoint_->reduce_min(*self_, root, value); }
  double allreduce_min(double value) { return endpoint_->allreduce_min(*self_, value); }
  std::vector<double> reduce_sum_vec(Rank root, std::vector<double> values) {
    return endpoint_->reduce_sum_vec(*self_, root, std::move(values));
  }

  /// Rank 0 reports the verified result digest.
  void report_result(double digest) { runtime_->report_result(digest); }

 private:
  Runtime* runtime_;
  RankRuntime* rank_;
  des::Process* self_;
  Endpoint* endpoint_;
  xplorer::Node* node_;
};

}  // namespace chk::chklib
