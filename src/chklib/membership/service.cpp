#include "chklib/membership/service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/tracer.hpp"
#include "util/logging.hpp"

namespace chk::chklib::membership {

namespace {

[[nodiscard]] constexpr std::uint64_t full_bitmap(std::size_t n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

}  // namespace

Detector parse_detector(const std::string& text) {
  if (text == "binary") return Detector::kBinaryTimeout;
  if (text == "phi") return Detector::kPhiAccrual;
  throw std::invalid_argument("--detector: expected \"binary\" or \"phi\", got \"" +
                              text + "\"");
}

const char* to_string(Detector d) noexcept {
  return d == Detector::kPhiAccrual ? "phi" : "binary";
}

void MembershipConfig::validate(std::size_t num_ranks) const {
  if (num_ranks == 0 || num_ranks > 64) {
    throw std::invalid_argument("membership: member bitmaps support 1..64 ranks");
  }
  if (hb_period <= des::Duration::zero()) {
    throw std::invalid_argument("membership: hb_period must be positive");
  }
  if (detect_timeout <= hb_period) {
    throw std::invalid_argument("membership: detect_timeout must exceed hb_period");
  }
  if (rejoin_grace < des::Duration::zero()) {
    throw std::invalid_argument("membership: rejoin_grace must be non-negative");
  }
  if (suspect_quorum == 0) {
    throw std::invalid_argument("membership: suspect_quorum must be at least 1");
  }
  if (detector == Detector::kPhiAccrual) accrual.validate();
}

MembershipService::MembershipService(Runtime& runtime, RecoveryManager& recovery,
                                     MembershipConfig config, util::Rng rng)
    : rt_(&runtime),
      recovery_(&recovery),
      cfg_(config),
      num_ranks_(runtime.num_ranks()),
      rng_(rng) {
  cfg_.validate(num_ranks_);
  members_ = full_bitmap(num_ranks_);
}

MembershipService::~MembershipService() {
  // Detach every seam: the runtime and recovery manager may outlive us.
  rt_->comm().set_membership_sink(nullptr);
  rt_->comm().set_down_gate(nullptr);
  recovery_->set_failure_interceptor(nullptr);
  recovery_->remove_observer(this);
}

void MembershipService::start() {
  if (started_) return;
  started_ = true;

  rt_->comm().set_membership_sink(
      [this](Rank dst, const ControlMsg& msg) { on_control(dst, msg); });
  rt_->comm().set_down_gate([this](Rank r) { return down_.contains(r); });
  recovery_->set_failure_interceptor([this](Rank r) { return crash(r); });
  recovery_->add_observer(this);

  const des::TimePoint now = rt_->sim().now();
  last_heard_.assign(num_ranks_, std::vector<des::TimePoint>(num_ranks_, now));
  suspects_.assign(num_ranks_, std::vector<bool>(num_ranks_, false));
  excluded_since_.assign(num_ranks_, now);
  episode_open_.assign(num_ranks_, false);
  beacon_epoch_.assign(num_ranks_, 0);
  rejoin_seq_.assign(num_ranks_, 0);
  crash_at_.assign(num_ranks_, now);

  // Resolve the accrual autos against the service's own knobs and prime
  // the per-pair silence clocks so even a rank that dies before its first
  // beacon accrues suspicion.
  acc_ = cfg_.accrual;
  if (acc_.min_stddev == des::Duration::zero()) acc_.min_stddev = cfg_.hb_period / 4;
  if (acc_.bootstrap == des::Duration::zero()) acc_.bootstrap = cfg_.detect_timeout;
  if (cfg_.detector == Detector::kPhiAccrual) {
    accrual_.assign(num_ranks_, std::vector<AccrualWindow>(num_ranks_));
    for (auto& row : accrual_) {
      for (auto& w : row) w.restart_gap(now);
    }
  }

  // The stream's only draws: one heartbeat phase per rank, in rank order, so
  // the membership RNG consumption is schedule-independent by construction.
  phase_ns_.resize(num_ranks_);
  const auto period_ns = static_cast<std::uint64_t>(cfg_.hb_period.to_nanos());
  for (Rank r = 0; r < num_ranks_; ++r) {
    phase_ns_[r] = static_cast<std::int64_t>(rng_.uniform_u64(period_ns));
  }
  // Sweeps run on the same period, offset half a beat from the rank's own
  // beacon so a sweep never races its own just-sent heartbeat.
  for (Rank r = 0; r < num_ranks_; ++r) {
    rt_->sim().schedule_after(des::Duration::nanos(phase_ns_[r]),
                              [this, r] { heartbeat_tick(r, 0); });
    rt_->sim().schedule_after(des::Duration::nanos(phase_ns_[r]) + cfg_.hb_period / 2,
                              [this, r] { sweep_tick(r); });
  }
}

void MembershipService::finalize() {
  const std::int64_t now_ns = rt_->sim().now().to_nanos();
  for (Rank r = 0; r < num_ranks_; ++r) {
    if (!episode_open_[r]) continue;
    episode_open_[r] = false;
    if (obs::Tracer* tracer = rt_->tracer()) {
      tracer->span(obs::EventKind::kMembershipWait, static_cast<std::uint16_t>(r),
                   excluded_since_[r].to_nanos(), now_ns, 0,
                   down_.contains(r) ? 1u : 2u);
    }
  }
}

des::Duration MembershipService::grace() const noexcept {
  return cfg_.rejoin_grace > des::Duration::zero() ? cfg_.rejoin_grace
                                                   : cfg_.detect_timeout * 2;
}

std::uint32_t MembershipService::effective_quorum() const noexcept {
  const auto live = static_cast<std::uint32_t>(std::popcount(members_));
  return std::min(cfg_.suspect_quorum, std::max(1u, live - 1));
}

Rank MembershipService::candidate_of(Rank r) const {
  for (Rank m = 0; m < num_ranks_; ++m) {
    if (is_member(m) && (m == r || !suspects_[r][m])) return m;
  }
  return r;
}

void MembershipService::begin_exclusion(Rank r) {
  if (episode_open_[r]) return;
  episode_open_[r] = true;
  excluded_since_[r] = rt_->sim().now();
}

void MembershipService::end_exclusion(Rank r) {
  if (!episode_open_[r]) return;
  if (down_.contains(r) || fenced_.contains(r)) return;  // still excluded
  episode_open_[r] = false;
  if (obs::Tracer* tracer = rt_->tracer()) {
    tracer->span(obs::EventKind::kMembershipWait, static_cast<std::uint16_t>(r),
                 excluded_since_[r].to_nanos(), rt_->sim().now().to_nanos());
  }
}

void MembershipService::heartbeat_tick(Rank r, std::uint32_t epoch) {
  // A stale epoch means this chain was orphaned by a rejoin re-phase.
  if (epoch != beacon_epoch_[r]) return;
  if (!down_.contains(r)) {
    for (Rank q = 0; q < num_ranks_; ++q) {
      if (q == r) continue;
      ++stats_.heartbeats_sent;
      // Beacons are datagrams: a stale heartbeat is worthless (the next is
      // one period away), and the FIFO stream would head-of-line-block it
      // behind any stalled data frame — manufacturing multi-second false
      // silences out of ordinary loss.
      rt_->comm().send_control_datagram(
          r, q, ControlMsg{.kind = ControlKind::kHeartbeat, .src = r, .view = view_});
    }
  }
  rt_->sim().schedule_after(cfg_.hb_period, [this, r, epoch] { heartbeat_tick(r, epoch); });
}

void MembershipService::rephase_beacon(Rank r) {
  // Deterministic but decorrelated from the pre-eviction schedule: hash
  // the start()-drawn phase with the rejoin ordinal (no RNG draws — the
  // membership stream must stay schedule-independent).
  const std::uint32_t epoch = ++beacon_epoch_[r];
  std::uint64_t state = static_cast<std::uint64_t>(phase_ns_[r]) +
                        0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(++rejoin_seq_[r]);
  const auto period_ns = static_cast<std::uint64_t>(cfg_.hb_period.to_nanos());
  const auto offset_ns = static_cast<std::int64_t>(util::splitmix64(state) % period_ns);
  rt_->sim().schedule_after(des::Duration::nanos(offset_ns),
                            [this, r, epoch] { heartbeat_tick(r, epoch); });
}

bool MembershipService::suspicious(Rank r, Rank m, des::TimePoint now) const {
  if (cfg_.detector == Detector::kPhiAccrual) {
    return accrual_[r][m].phi_milli(acc_, now) >= acc_.threshold_milli;
  }
  return now - last_heard_[r][m] > cfg_.detect_timeout;
}

des::Duration MembershipService::sweep_period(Rank r) const {
  if (cfg_.detector != Detector::kPhiAccrual) return cfg_.hb_period;
  // Track the tightest implied timeout among the ranks this observer
  // watches: scanning at a quarter of it keeps detection latency dominated
  // by the detector, not the scan, while clean links relax the cadence.
  des::Duration tightest = des::Duration::max();
  for (Rank m = 0; m < num_ranks_; ++m) {
    if (m == r || !is_member(m)) continue;
    tightest = std::min(tightest, accrual_[r][m].implied_timeout(acc_));
  }
  if (tightest == des::Duration::max()) return cfg_.hb_period;
  return std::clamp(tightest / 4, cfg_.hb_period / 2, cfg_.hb_period * 2);
}

void MembershipService::sweep_tick(Rank r) {
  if (!detection_paused_ && !down_.contains(r)) {
    if (fenced_.contains(r)) {
      // Fenced but alive: petition the coordinator for re-admission.
      rt_->comm().send_control(
          r, coordinator(),
          ControlMsg{.kind = ControlKind::kJoinRequest, .src = r, .view = view_});
    } else if (is_member(r)) {
      const des::TimePoint now = rt_->sim().now();
      for (Rank m = 0; m < num_ranks_; ++m) {
        if (m == r || !is_member(m)) continue;
        if (suspicious(r, m, now)) {
          if (!suspects_[r][m]) {
            suspects_[r][m] = true;
            ++stats_.suspicions;
          }
        } else if (suspects_[r][m]) {
          // Hysteresis: the evidence receded before a quorum assembled —
          // retract quietly instead of paying fence + rejoin.
          suspects_[r][m] = false;
          ++stats_.suspicions_cleared;
        }
      }
      const Rank c = candidate_of(r);
      if (c == r) {
        maybe_propose(r);
      } else {
        // Re-report every sweep while suspected: the candidate may have
        // changed, and lost reports must not stall the election.
        for (Rank m = 0; m < num_ranks_; ++m) {
          if (!suspects_[r][m]) continue;
          rt_->comm().send_control(r, c,
                                   ControlMsg{.kind = ControlKind::kSuspect,
                                              .src = r,
                                              .view = view_,
                                              .members = std::uint64_t{1} << m});
        }
      }
    }
  }
  rt_->sim().schedule_after(sweep_period(r), [this, r] { sweep_tick(r); });
}

void MembershipService::on_control(Rank dst, const ControlMsg& msg) {
  if (!started_ || detection_paused_) return;
  switch (msg.kind) {
    case ControlKind::kHeartbeat: {
      const des::TimePoint now = rt_->sim().now();
      last_heard_[dst][msg.src] = now;
      if (cfg_.detector == Detector::kPhiAccrual) {
        accrual_[dst][msg.src].heard(acc_, now);
      }
      if (suspects_[dst][msg.src]) {
        suspects_[dst][msg.src] = false;
        ++stats_.suspicions_cleared;
      }
      break;
    }
    case ControlKind::kSuspect:
      // Quorum state is the (globally shared) suspicion matrix; the report's
      // arrival is what gives the candidate an event to evaluate it on.
      maybe_propose(dst);
      break;
    case ControlKind::kViewChange:
      if (msg.view > view_) {
        // A competing proposal won; drop ours if it superseded it.
        if (msg.view >= proposed_view_) {
          proposed_view_ = 0;
          proposed_members_ = 0;
          view_acks_.clear();
        }
        adopt(msg);
      }
      if (msg.view == view_ && is_member(dst)) {
        rt_->comm().send_control(
            dst, msg.src,
            ControlMsg{.kind = ControlKind::kViewAck, .src = dst, .view = msg.view});
      }
      break;
    case ControlKind::kViewAck:
      if (proposed_view_ != 0 && msg.view == proposed_view_) {
        view_acks_.insert(msg.src);
        const std::size_t majority =
            static_cast<std::size_t>(std::popcount(proposed_members_)) / 2 + 1;
        if (view_acks_.size() >= majority) establish();
      }
      break;
    case ControlKind::kJoinRequest: {
      if (dst != coordinator() || is_member(msg.src)) break;
      const std::uint64_t readmitted = members_ | (std::uint64_t{1} << msg.src);
      if (proposed_view_ != 0 && proposed_members_ == readmitted) break;
      propose(dst, readmitted);
      break;
    }
    default:
      break;
  }
}

void MembershipService::maybe_propose(Rank at) {
  if (detection_paused_ || !is_member(at)) return;
  const std::uint32_t quorum = effective_quorum();
  std::uint64_t suspected = 0;
  for (Rank m = 0; m < num_ranks_; ++m) {
    if (!is_member(m)) continue;
    std::uint32_t reporters = 0;
    for (Rank r = 0; r < num_ranks_; ++r) {
      if (r != m && is_member(r) && suspects_[r][m]) ++reporters;
    }
    if (reporters >= quorum) suspected |= std::uint64_t{1} << m;
  }
  if (suspected == 0) return;
  // The candidate proposing the eviction is the lowest surviving member —
  // which makes it the new view's coordinator by the view-id encoding.
  Rank proposer = num_ranks_;
  for (Rank m = 0; m < num_ranks_; ++m) {
    if (is_member(m) && ((suspected >> m) & 1u) == 0) {
      proposer = m;
      break;
    }
  }
  if (proposer != at) return;
  const std::uint64_t survivors = members_ & ~suspected;
  if (proposed_view_ != 0 && proposed_members_ == survivors) return;
  propose(proposer, survivors);
}

void MembershipService::propose(Rank proposer, std::uint64_t new_members) {
  const std::uint64_t base = std::max(view_, proposed_view_);
  const std::uint64_t next = (base / num_ranks_ + 1) * num_ranks_ + proposer;
  ++stats_.proposals;
  CHK_INFO("membership", "rank {} proposes view {} members {:#x}", proposer, next,
           new_members);
  for (Rank q = 0; q < num_ranks_; ++q) {
    if (q == proposer) continue;
    rt_->comm().send_control(proposer, q,
                             ControlMsg{.kind = ControlKind::kViewChange,
                                        .src = proposer,
                                        .view = next,
                                        .members = new_members});
  }
  proposed_view_ = next;
  proposed_members_ = new_members;
  view_acks_.clear();
  view_acks_.insert(proposer);
  // Global-state model: the proposer adopts its own proposal at once; the
  // broadcast above carries it to everyone else (and collects the acks that
  // establish it). Note apply-side effects may start a rollback recovery,
  // which clears the proposal bookkeeping set just above — that is correct:
  // the restart, not the ack quorum, confirms such views.
  apply_view(next, new_members);
}

void MembershipService::adopt(const ControlMsg& msg) { apply_view(msg.view, msg.members); }

void MembershipService::apply_view(std::uint64_t view, std::uint64_t members) {
  const std::uint64_t previous = members_;
  view_ = view;
  members_ = members;
  // Fresh detector slate for the new view: no suspicion carries across.
  const des::TimePoint now = rt_->sim().now();
  for (auto& row : suspects_) std::fill(row.begin(), row.end(), false);
  for (auto& row : last_heard_) std::fill(row.begin(), row.end(), now);

  const std::uint64_t removed = previous & ~members;
  const std::uint64_t added = members & ~previous;
  if (cfg_.detector == Detector::kPhiAccrual) {
    // Ranks whose membership changed get a full accrual reset (pre-fence
    // samples must not poison a rejoined subject's phi); everyone else
    // keeps the learned distribution and merely restarts the silence gap
    // to match the last_heard slate above.
    const std::uint64_t changed = removed | added;
    for (auto& row : accrual_) {
      for (Rank m = 0; m < num_ranks_; ++m) {
        if ((changed >> m) & 1u) row[m].reset();
        row[m].restart_gap(now);
      }
    }
  }
  Rank dead = num_ranks_;
  for (Rank r = 0; r < num_ranks_; ++r) {
    if ((removed >> r) & 1u) {
      ++stats_.evictions;
      if (down_.contains(r)) {
        ++stats_.detections;
        stats_.detection_latency_ns.push_back((now - crash_at_[r]).to_nanos());
        if (dead == num_ranks_) dead = r;
      } else {
        ++stats_.wrongful_evictions;
        fenced_.insert(r);
        begin_exclusion(r);
        CHK_INFO("membership", "rank {} fenced by view {} (wrongful eviction)", r, view);
        if (on_fence_) on_fence_(r, true);
      }
    } else if ((added >> r) & 1u) {
      if (fenced_.erase(r) > 0) {
        ++stats_.rejoins;
        end_exclusion(r);
        // Decorrelate the rejoined rank's beacon from its pre-eviction
        // schedule; observers' accrual windows for it were reset above.
        rephase_beacon(r);
        CHK_INFO("membership", "rank {} rejoins in view {}", r, view);
        if (on_fence_) on_fence_(r, false);
      }
    }
  }
  if (dead < num_ranks_) {
    // A confirmed-dead member was evicted: hand over to rollback recovery.
    // The whole-application restart is the strongest establishment this
    // view can get, so count it here (its acks die with the incarnation).
    ++stats_.views_established;
    CHK_INFO("membership", "view {} evicts crashed rank {}; starting recovery", view,
             dead);
    recovery_->recover_now(dead);
  }
}

void MembershipService::establish() {
  ++stats_.views_established;
  proposed_view_ = 0;
  proposed_members_ = 0;
  view_acks_.clear();
  CHK_INFO("membership", "view {} established (coordinator {})", view_, coordinator());
  if (on_view_established_) on_view_established_(view_);
}

des::Duration MembershipService::deadman_delay(Rank r) const {
  if (cfg_.detector != Detector::kPhiAccrual) {
    return cfg_.detect_timeout * 2 + grace();
  }
  // Give the slowest observer's current phi envelope twice over before
  // forcing recovery: the widest implied timeout is the honest bound on
  // how long legitimate detection can take. Warm-up windows report the
  // bootstrap interval, so the pre-warm-up deadman matches binary's.
  des::Duration widest = des::Duration::zero();
  for (Rank obs = 0; obs < num_ranks_; ++obs) {
    if (obs == r || down_.contains(obs)) continue;
    widest = std::max(widest, accrual_[obs][r].implied_timeout(acc_));
  }
  if (widest == des::Duration::zero()) widest = cfg_.detect_timeout;
  return widest * 2 + grace();
}

bool MembershipService::crash(Rank r) {
  if (!started_) return false;
  // A strike landing while a rollback restore is in flight stays with the
  // oracle path: overlapping-failure semantics (abort + re-plan) predate the
  // membership layer and must not change under it.
  if (recovery_->recovering()) return false;
  if (down_.contains(r)) return true;  // already silent — nothing new to model
  ++stats_.crashes;
  down_.insert(r);
  crash_at_[r] = rt_->sim().now();
  begin_exclusion(r);
  // A fenced rank that now really dies stays in one continuous exclusion
  // episode; it just changes character.
  fenced_.erase(r);
  rt_->kill_app(r);
  if (obs::Tracer* tracer = rt_->tracer()) {
    tracer->instant(obs::EventKind::kFailure, static_cast<std::uint16_t>(r),
                    rt_->sim().now().to_nanos(), 0, 1);
  }
  CHK_INFO("membership", "rank {} crashed silently; cluster must detect it", r);
  // Deadman fallback: if the eviction quorum never assembles (e.g. the
  // detector is configured far too lax for the workload's lifetime), force
  // the rollback rather than hang the application forever.
  rt_->sim().schedule_after(deadman_delay(r), [this, r] {
    if (down_.contains(r) && !recovery_->recovering()) {
      ++stats_.forced_recoveries;
      CHK_INFO("membership", "deadman: rank {} still undetected; forcing recovery", r);
      recovery_->recover_now(r);
    }
  });
  return true;
}

void MembershipService::on_recovery_begin(Rank /*failed*/) {
  if (!started_) return;
  detection_paused_ = true;
  proposed_view_ = 0;
  proposed_members_ = 0;
  view_acks_.clear();
  for (auto& row : suspects_) std::fill(row.begin(), row.end(), false);
  // The rollback restarts every rank: exclusions end here, membership goes
  // back to the full set. The view id stays monotone — the elected
  // coordinator survives the recovery.
  down_.clear();
  fenced_.clear();
  for (Rank r = 0; r < num_ranks_; ++r) end_exclusion(r);
  members_ = full_bitmap(num_ranks_);
}

void MembershipService::on_recovery_end(const RecoveryReport& report) {
  if (!started_) return;
  if (report.interrupted) return;  // a newer recovery owns the resume
  // Runs in the last loader's process context — defer to kernel context.
  rt_->sim().schedule_now([this] {
    detection_paused_ = false;
    const des::TimePoint now = rt_->sim().now();
    for (auto& row : last_heard_) std::fill(row.begin(), row.end(), now);
    if (cfg_.detector == Detector::kPhiAccrual) {
      // The restart created an artificial silence on every link; the
      // learned inter-arrival distributions are still valid, so only the
      // gaps restart.
      for (auto& row : accrual_) {
        for (auto& w : row) w.restart_gap(now);
      }
    }
  });
}

}  // namespace chk::chklib::membership
