#include "chklib/membership/service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/tracer.hpp"
#include "util/logging.hpp"

namespace chk::chklib::membership {

namespace {

[[nodiscard]] constexpr std::uint64_t full_bitmap(std::size_t n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

}  // namespace

void MembershipConfig::validate(std::size_t num_ranks) const {
  if (num_ranks == 0 || num_ranks > 64) {
    throw std::invalid_argument("membership: member bitmaps support 1..64 ranks");
  }
  if (hb_period <= des::Duration::zero()) {
    throw std::invalid_argument("membership: hb_period must be positive");
  }
  if (detect_timeout <= hb_period) {
    throw std::invalid_argument("membership: detect_timeout must exceed hb_period");
  }
  if (rejoin_grace < des::Duration::zero()) {
    throw std::invalid_argument("membership: rejoin_grace must be non-negative");
  }
  if (suspect_quorum == 0) {
    throw std::invalid_argument("membership: suspect_quorum must be at least 1");
  }
}

MembershipService::MembershipService(Runtime& runtime, RecoveryManager& recovery,
                                     MembershipConfig config, util::Rng rng)
    : rt_(&runtime),
      recovery_(&recovery),
      cfg_(config),
      num_ranks_(runtime.num_ranks()),
      rng_(rng) {
  cfg_.validate(num_ranks_);
  members_ = full_bitmap(num_ranks_);
}

MembershipService::~MembershipService() {
  // Detach every seam: the runtime and recovery manager may outlive us.
  rt_->comm().set_membership_sink(nullptr);
  rt_->comm().set_down_gate(nullptr);
  recovery_->set_failure_interceptor(nullptr);
  recovery_->remove_observer(this);
}

void MembershipService::start() {
  if (started_) return;
  started_ = true;

  rt_->comm().set_membership_sink(
      [this](Rank dst, const ControlMsg& msg) { on_control(dst, msg); });
  rt_->comm().set_down_gate([this](Rank r) { return down_.contains(r); });
  recovery_->set_failure_interceptor([this](Rank r) { return crash(r); });
  recovery_->add_observer(this);

  const des::TimePoint now = rt_->sim().now();
  last_heard_.assign(num_ranks_, std::vector<des::TimePoint>(num_ranks_, now));
  suspects_.assign(num_ranks_, std::vector<bool>(num_ranks_, false));
  excluded_since_.assign(num_ranks_, now);
  episode_open_.assign(num_ranks_, false);

  // The stream's only draws: one heartbeat phase per rank, in rank order, so
  // the membership RNG consumption is schedule-independent by construction.
  phase_ns_.resize(num_ranks_);
  const auto period_ns = static_cast<std::uint64_t>(cfg_.hb_period.to_nanos());
  for (Rank r = 0; r < num_ranks_; ++r) {
    phase_ns_[r] = static_cast<std::int64_t>(rng_.uniform_u64(period_ns));
  }
  // Sweeps run on the same period, offset half a beat from the rank's own
  // beacon so a sweep never races its own just-sent heartbeat.
  for (Rank r = 0; r < num_ranks_; ++r) {
    rt_->sim().schedule_after(des::Duration::nanos(phase_ns_[r]),
                              [this, r] { heartbeat_tick(r); });
    rt_->sim().schedule_after(des::Duration::nanos(phase_ns_[r]) + cfg_.hb_period / 2,
                              [this, r] { sweep_tick(r); });
  }
}

void MembershipService::finalize() {
  const std::int64_t now_ns = rt_->sim().now().to_nanos();
  for (Rank r = 0; r < num_ranks_; ++r) {
    if (!episode_open_[r]) continue;
    episode_open_[r] = false;
    if (obs::Tracer* tracer = rt_->tracer()) {
      tracer->span(obs::EventKind::kMembershipWait, static_cast<std::uint16_t>(r),
                   excluded_since_[r].to_nanos(), now_ns, 0,
                   down_.contains(r) ? 1u : 2u);
    }
  }
}

des::Duration MembershipService::grace() const noexcept {
  return cfg_.rejoin_grace > des::Duration::zero() ? cfg_.rejoin_grace
                                                   : cfg_.detect_timeout * 2;
}

std::uint32_t MembershipService::effective_quorum() const noexcept {
  const auto live = static_cast<std::uint32_t>(std::popcount(members_));
  return std::min(cfg_.suspect_quorum, std::max(1u, live - 1));
}

Rank MembershipService::candidate_of(Rank r) const {
  for (Rank m = 0; m < num_ranks_; ++m) {
    if (is_member(m) && (m == r || !suspects_[r][m])) return m;
  }
  return r;
}

void MembershipService::begin_exclusion(Rank r) {
  if (episode_open_[r]) return;
  episode_open_[r] = true;
  excluded_since_[r] = rt_->sim().now();
}

void MembershipService::end_exclusion(Rank r) {
  if (!episode_open_[r]) return;
  if (down_.contains(r) || fenced_.contains(r)) return;  // still excluded
  episode_open_[r] = false;
  if (obs::Tracer* tracer = rt_->tracer()) {
    tracer->span(obs::EventKind::kMembershipWait, static_cast<std::uint16_t>(r),
                 excluded_since_[r].to_nanos(), rt_->sim().now().to_nanos());
  }
}

void MembershipService::heartbeat_tick(Rank r) {
  if (!down_.contains(r)) {
    for (Rank q = 0; q < num_ranks_; ++q) {
      if (q == r) continue;
      ++stats_.heartbeats_sent;
      rt_->comm().send_control(
          r, q, ControlMsg{.kind = ControlKind::kHeartbeat, .src = r, .view = view_});
    }
  }
  rt_->sim().schedule_after(cfg_.hb_period, [this, r] { heartbeat_tick(r); });
}

void MembershipService::sweep_tick(Rank r) {
  if (!detection_paused_ && !down_.contains(r)) {
    if (fenced_.contains(r)) {
      // Fenced but alive: petition the coordinator for re-admission.
      rt_->comm().send_control(
          r, coordinator(),
          ControlMsg{.kind = ControlKind::kJoinRequest, .src = r, .view = view_});
    } else if (is_member(r)) {
      const des::TimePoint now = rt_->sim().now();
      for (Rank m = 0; m < num_ranks_; ++m) {
        if (m == r || !is_member(m)) continue;
        if (now - last_heard_[r][m] > cfg_.detect_timeout) {
          if (!suspects_[r][m]) {
            suspects_[r][m] = true;
            ++stats_.suspicions;
          }
        } else {
          suspects_[r][m] = false;
        }
      }
      const Rank c = candidate_of(r);
      if (c == r) {
        maybe_propose(r);
      } else {
        // Re-report every sweep while suspected: the candidate may have
        // changed, and lost reports must not stall the election.
        for (Rank m = 0; m < num_ranks_; ++m) {
          if (!suspects_[r][m]) continue;
          rt_->comm().send_control(r, c,
                                   ControlMsg{.kind = ControlKind::kSuspect,
                                              .src = r,
                                              .view = view_,
                                              .members = std::uint64_t{1} << m});
        }
      }
    }
  }
  rt_->sim().schedule_after(cfg_.hb_period, [this, r] { sweep_tick(r); });
}

void MembershipService::on_control(Rank dst, const ControlMsg& msg) {
  if (!started_ || detection_paused_) return;
  switch (msg.kind) {
    case ControlKind::kHeartbeat:
      last_heard_[dst][msg.src] = rt_->sim().now();
      suspects_[dst][msg.src] = false;
      break;
    case ControlKind::kSuspect:
      // Quorum state is the (globally shared) suspicion matrix; the report's
      // arrival is what gives the candidate an event to evaluate it on.
      maybe_propose(dst);
      break;
    case ControlKind::kViewChange:
      if (msg.view > view_) {
        // A competing proposal won; drop ours if it superseded it.
        if (msg.view >= proposed_view_) {
          proposed_view_ = 0;
          proposed_members_ = 0;
          view_acks_.clear();
        }
        adopt(msg);
      }
      if (msg.view == view_ && is_member(dst)) {
        rt_->comm().send_control(
            dst, msg.src,
            ControlMsg{.kind = ControlKind::kViewAck, .src = dst, .view = msg.view});
      }
      break;
    case ControlKind::kViewAck:
      if (proposed_view_ != 0 && msg.view == proposed_view_) {
        view_acks_.insert(msg.src);
        const std::size_t majority =
            static_cast<std::size_t>(std::popcount(proposed_members_)) / 2 + 1;
        if (view_acks_.size() >= majority) establish();
      }
      break;
    case ControlKind::kJoinRequest: {
      if (dst != coordinator() || is_member(msg.src)) break;
      const std::uint64_t readmitted = members_ | (std::uint64_t{1} << msg.src);
      if (proposed_view_ != 0 && proposed_members_ == readmitted) break;
      propose(dst, readmitted);
      break;
    }
    default:
      break;
  }
}

void MembershipService::maybe_propose(Rank at) {
  if (detection_paused_ || !is_member(at)) return;
  const std::uint32_t quorum = effective_quorum();
  std::uint64_t suspected = 0;
  for (Rank m = 0; m < num_ranks_; ++m) {
    if (!is_member(m)) continue;
    std::uint32_t reporters = 0;
    for (Rank r = 0; r < num_ranks_; ++r) {
      if (r != m && is_member(r) && suspects_[r][m]) ++reporters;
    }
    if (reporters >= quorum) suspected |= std::uint64_t{1} << m;
  }
  if (suspected == 0) return;
  // The candidate proposing the eviction is the lowest surviving member —
  // which makes it the new view's coordinator by the view-id encoding.
  Rank proposer = num_ranks_;
  for (Rank m = 0; m < num_ranks_; ++m) {
    if (is_member(m) && ((suspected >> m) & 1u) == 0) {
      proposer = m;
      break;
    }
  }
  if (proposer != at) return;
  const std::uint64_t survivors = members_ & ~suspected;
  if (proposed_view_ != 0 && proposed_members_ == survivors) return;
  propose(proposer, survivors);
}

void MembershipService::propose(Rank proposer, std::uint64_t new_members) {
  const std::uint64_t base = std::max(view_, proposed_view_);
  const std::uint64_t next = (base / num_ranks_ + 1) * num_ranks_ + proposer;
  ++stats_.proposals;
  CHK_INFO("membership", "rank {} proposes view {} members {:#x}", proposer, next,
           new_members);
  for (Rank q = 0; q < num_ranks_; ++q) {
    if (q == proposer) continue;
    rt_->comm().send_control(proposer, q,
                             ControlMsg{.kind = ControlKind::kViewChange,
                                        .src = proposer,
                                        .view = next,
                                        .members = new_members});
  }
  proposed_view_ = next;
  proposed_members_ = new_members;
  view_acks_.clear();
  view_acks_.insert(proposer);
  // Global-state model: the proposer adopts its own proposal at once; the
  // broadcast above carries it to everyone else (and collects the acks that
  // establish it). Note apply-side effects may start a rollback recovery,
  // which clears the proposal bookkeeping set just above — that is correct:
  // the restart, not the ack quorum, confirms such views.
  apply_view(next, new_members);
}

void MembershipService::adopt(const ControlMsg& msg) { apply_view(msg.view, msg.members); }

void MembershipService::apply_view(std::uint64_t view, std::uint64_t members) {
  const std::uint64_t previous = members_;
  view_ = view;
  members_ = members;
  // Fresh detector slate for the new view: no suspicion carries across.
  const des::TimePoint now = rt_->sim().now();
  for (auto& row : suspects_) std::fill(row.begin(), row.end(), false);
  for (auto& row : last_heard_) std::fill(row.begin(), row.end(), now);

  const std::uint64_t removed = previous & ~members;
  const std::uint64_t added = members & ~previous;
  Rank dead = num_ranks_;
  for (Rank r = 0; r < num_ranks_; ++r) {
    if ((removed >> r) & 1u) {
      ++stats_.evictions;
      if (down_.contains(r)) {
        if (dead == num_ranks_) dead = r;
      } else {
        ++stats_.wrongful_evictions;
        fenced_.insert(r);
        begin_exclusion(r);
        CHK_INFO("membership", "rank {} fenced by view {} (wrongful eviction)", r, view);
        if (on_fence_) on_fence_(r, true);
      }
    } else if ((added >> r) & 1u) {
      if (fenced_.erase(r) > 0) {
        ++stats_.rejoins;
        end_exclusion(r);
        CHK_INFO("membership", "rank {} rejoins in view {}", r, view);
        if (on_fence_) on_fence_(r, false);
      }
    }
  }
  if (dead < num_ranks_) {
    // A confirmed-dead member was evicted: hand over to rollback recovery.
    // The whole-application restart is the strongest establishment this
    // view can get, so count it here (its acks die with the incarnation).
    ++stats_.views_established;
    CHK_INFO("membership", "view {} evicts crashed rank {}; starting recovery", view,
             dead);
    recovery_->recover_now(dead);
  }
}

void MembershipService::establish() {
  ++stats_.views_established;
  proposed_view_ = 0;
  proposed_members_ = 0;
  view_acks_.clear();
  CHK_INFO("membership", "view {} established (coordinator {})", view_, coordinator());
  if (on_view_established_) on_view_established_(view_);
}

bool MembershipService::crash(Rank r) {
  if (!started_) return false;
  // A strike landing while a rollback restore is in flight stays with the
  // oracle path: overlapping-failure semantics (abort + re-plan) predate the
  // membership layer and must not change under it.
  if (recovery_->recovering()) return false;
  if (down_.contains(r)) return true;  // already silent — nothing new to model
  ++stats_.crashes;
  down_.insert(r);
  begin_exclusion(r);
  // A fenced rank that now really dies stays in one continuous exclusion
  // episode; it just changes character.
  fenced_.erase(r);
  rt_->kill_app(r);
  if (obs::Tracer* tracer = rt_->tracer()) {
    tracer->instant(obs::EventKind::kFailure, static_cast<std::uint16_t>(r),
                    rt_->sim().now().to_nanos(), 0, 1);
  }
  CHK_INFO("membership", "rank {} crashed silently; cluster must detect it", r);
  // Deadman fallback: if the eviction quorum never assembles (e.g. the
  // detector is configured far too lax for the workload's lifetime), force
  // the rollback rather than hang the application forever.
  const des::Duration deadman = cfg_.detect_timeout * 2 + grace();
  rt_->sim().schedule_after(deadman, [this, r] {
    if (down_.contains(r) && !recovery_->recovering()) {
      ++stats_.forced_recoveries;
      CHK_INFO("membership", "deadman: rank {} still undetected; forcing recovery", r);
      recovery_->recover_now(r);
    }
  });
  return true;
}

void MembershipService::on_recovery_begin(Rank /*failed*/) {
  if (!started_) return;
  detection_paused_ = true;
  proposed_view_ = 0;
  proposed_members_ = 0;
  view_acks_.clear();
  for (auto& row : suspects_) std::fill(row.begin(), row.end(), false);
  // The rollback restarts every rank: exclusions end here, membership goes
  // back to the full set. The view id stays monotone — the elected
  // coordinator survives the recovery.
  down_.clear();
  fenced_.clear();
  for (Rank r = 0; r < num_ranks_; ++r) end_exclusion(r);
  members_ = full_bitmap(num_ranks_);
}

void MembershipService::on_recovery_end(const RecoveryReport& report) {
  if (!started_) return;
  if (report.interrupted) return;  // a newer recovery owns the resume
  // Runs in the last loader's process context — defer to kernel context.
  rt_->sim().schedule_now([this] {
    detection_paused_ = false;
    const des::TimePoint now = rt_->sim().now();
    for (auto& row : last_heard_) std::fill(row.begin(), row.end(), now);
  });
}

}  // namespace chk::chklib::membership
