// Phi-accrual failure detection (Hayashibara-style), integer-exact.
//
// The binary detector (service.hpp) suspects any member silent for longer
// than a fixed detect_timeout. That knob cannot be tuned per-link: under
// the lossy-link model a retransmission burst can silence a perfectly live
// rank for seconds, and an aggressive timeout turns every burst into a
// wrongful eviction (the false-suspicion storm the membership bench
// measures). The accrual detector replaces the binary verdict with a
// *suspicion level* phi derived from the observed heartbeat inter-arrival
// distribution: each (observer, subject) pair keeps a fixed-size ring of
// inter-arrival samples, and phi grows with how improbable the current
// silence is under that history. Links that are slow or jittery earn wide
// windows automatically; quiet links keep tight ones — detection adapts
// where a hand-tuned timeout cannot (Hayashibara et al., "The phi accrual
// failure detector", SRDS 2004).
//
// Determinism discipline: everything is integer math. Samples are stored
// in microseconds, mean/variance come from running sums, the standard
// deviation is an integer square root, and phi is computed in milli-phi
// fixed point from the Gaussian Chernoff tail bound
//
//   P(silence >= t) <= exp(-z^2 / 2),  z = (t - mean) / stddev
//   phi(t) = -log10 P  =>  phi = z^2 * log10(e) / 2 = 0.21714724 * z^2
//
// so phi_milli = z_milli^2 * 217147 / 1e9 with z in milli units. The bound
// is monotone in z, needs only the sample mean and variance, and involves
// no floating point — the chklint duration-arithmetic rule applies to this
// file like any other (Duration values only ever meet integers).
//
// Warm-up: with fewer than min_samples inter-arrivals the distribution is
// meaningless, so the window falls back to a plain bootstrap interval
// (binary semantics) until it has learned one. A minimum-stddev floor
// keeps near-perfect links (variance ~ 0 in a deterministic simulator)
// from hair-triggering on the first scheduling wobble.
#pragma once

#include <cstdint>
#include <vector>

#include "des/time.hpp"

namespace chk::chklib::membership {

struct AccrualConfig {
  /// Ring capacity: how many recent inter-arrival samples shape the
  /// distribution. Bigger = steadier estimates, slower adaptation.
  std::uint32_t window = 32;
  /// Warm-up: below this many samples phi falls back to bootstrap_timeout
  /// (binary semantics) instead of a meaningless two-sample distribution.
  std::uint32_t min_samples = 8;
  /// Suspicion threshold in milli-phi (8000 = phi 8, the classic default:
  /// the current silence is less than 1e-8 probable under the history).
  std::int64_t threshold_milli = 8000;
  /// Floor on the estimated stddev. Zero = auto (hb_period / 4 when the
  /// membership service owns the config). Quiet links in a deterministic
  /// simulator can measure variance ~ 0; without a floor the first
  /// contention wobble would cross any threshold.
  des::Duration min_stddev = des::Duration::zero();
  /// Binary timeout used while a window is still warming up. Zero = auto
  /// (the service substitutes its detect_timeout).
  des::Duration bootstrap = des::Duration::zero();

  /// Throws std::invalid_argument on nonsense values (window outside
  /// [min_samples, 1024], min_samples < 2, threshold <= 0, negative
  /// durations).
  void validate() const;
};

/// Integer square root: floor(sqrt(v)), exact for 0 <= v <= 2^62 (every
/// caller clamps its radicand well below that; negative v returns 0).
[[nodiscard]] std::int64_t isqrt64(std::int64_t v) noexcept;

/// One (observer, subject) inter-arrival estimator. The window owns its
/// own "last arrival" clock so a caller can restart the silence gap (view
/// changes, recovery restarts) without forging a sample.
class AccrualWindow {
 public:
  /// Samples are clamped to this bound (microseconds) so the running
  /// sum-of-squares stays inside int64 for any permitted window size.
  static constexpr std::int64_t kMaxSampleUs = 60'000'000;  // 60 s
  /// Gaps below this (microseconds) are duplicate-delivery noise — the
  /// beacon rides an unsequenced datagram plane, so link-level duplicates
  /// arrive microseconds apart — and are not recorded as samples.
  static constexpr std::int64_t kMinSampleUs = 1'000;  // 1 ms

  /// A heartbeat arrived: record now - last_arrival as an inter-arrival
  /// sample (evicting the oldest once the ring is full) and restart the
  /// silence gap. The first arrival after a reset only starts the clock.
  void heard(const AccrualConfig& cfg, des::TimePoint now);

  /// Forget every sample and the arrival clock (subject evicted/rejoined:
  /// stale pre-fence samples must not poison phi). The next heartbeat
  /// starts a fresh history.
  void reset() noexcept;

  /// Restart only the silence gap (e.g. after a rollback restart every
  /// rank resumes at once): keeps the learned distribution, forgets the
  /// artificial gap the restart created. Also (re)starts the arrival clock
  /// so silence accrues even against a subject never heard from.
  void restart_gap(des::TimePoint now) noexcept;

  /// Suspicion level in milli-phi at time `now`. Warm-up: 0 at/below the
  /// bootstrap interval, exactly `threshold_milli` above it.
  [[nodiscard]] std::int64_t phi_milli(const AccrualConfig& cfg,
                                       des::TimePoint now) const noexcept;

  /// The silence at which phi crosses the threshold: mean + z* stddev,
  /// where z* solves z^2 * 0.21714724 = threshold. This is the detector's
  /// current effective timeout — the deadman fallback and sweep cadence
  /// derive from it. During warm-up it is the bootstrap interval.
  [[nodiscard]] des::Duration implied_timeout(const AccrualConfig& cfg) const noexcept;

  [[nodiscard]] std::size_t samples() const noexcept { return ring_.size(); }
  [[nodiscard]] bool warmed_up(const AccrualConfig& cfg) const noexcept {
    return ring_.size() >= cfg.min_samples;
  }
  /// Sample mean / stddev / max in microseconds (integer-floored; stddev
  /// before the envelope floors). Exposed for tests and bench reporting.
  [[nodiscard]] std::int64_t mean_us() const noexcept;
  [[nodiscard]] std::int64_t stddev_us() const noexcept;
  [[nodiscard]] std::int64_t max_sample_us() const noexcept;

 private:
  /// The deviation scale phi divides by: the sample stddev floored by
  /// cfg.min_stddev AND by twice the window's worst observed deviation
  /// (max sample - mean). The latter is the heavy-tail guard: beacon gaps
  /// under loss are geometric, not Gaussian, and a naive z-score wildly
  /// overstates how improbable a gap slightly beyond a quiet window's
  /// history is. Clean links (max == mean) are unaffected.
  [[nodiscard]] std::int64_t floored_stddev_us(const AccrualConfig& cfg) const noexcept;

  std::vector<std::int64_t> ring_;  ///< inter-arrival samples, microseconds
  std::size_t head_ = 0;            ///< next slot to overwrite once full
  std::uint32_t capacity_ = 0;      ///< cfg.window at first use
  std::int64_t sum_us_ = 0;
  std::int64_t sum_sq_us_ = 0;
  des::TimePoint last_arrival_;
  bool clock_running_ = false;
};

/// Effective milli-phi z* for a threshold: isqrt(threshold * 1e9 / 217147)
/// in milli units. Exposed so benches can report the implied z.
[[nodiscard]] std::int64_t phi_threshold_z_milli(std::int64_t threshold_milli) noexcept;

}  // namespace chk::chklib::membership
