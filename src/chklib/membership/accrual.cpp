#include "chklib/membership/accrual.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace chk::chklib::membership {
namespace {

// phi = z^2 * log10(e) / 2; log10(e)/2 = 0.21714724... With z in milli
// units, phi_milli = z_milli^2 * kPhiNum / kPhiDen. z_milli is clamped to
// 1e6 (z = 1000 sigma), so z_milli^2 <= 1e12 and the product stays well
// inside int64.
constexpr std::int64_t kPhiNum = 217'147;
constexpr std::int64_t kPhiDen = 1'000'000'000;
constexpr std::int64_t kZMilliMax = 1'000'000;

}  // namespace

void AccrualConfig::validate() const {
  if (min_samples < 2) {
    throw std::invalid_argument("accrual min_samples must be >= 2, got " +
                                std::to_string(min_samples));
  }
  if (window < min_samples || window > 1024) {
    throw std::invalid_argument("accrual window must be in [min_samples, 1024], got " +
                                std::to_string(window));
  }
  if (threshold_milli <= 0) {
    throw std::invalid_argument("accrual threshold must be positive, got " +
                                std::to_string(threshold_milli) + " milli-phi");
  }
  if (min_stddev < des::Duration::zero()) {
    throw std::invalid_argument("accrual min_stddev must be non-negative");
  }
  if (bootstrap < des::Duration::zero()) {
    throw std::invalid_argument("accrual bootstrap timeout must be non-negative");
  }
}

std::int64_t isqrt64(std::int64_t v) noexcept {
  if (v <= 0) return 0;
  // Newton's method from a power-of-two overestimate. From x >= sqrt(v)
  // the iteration decreases monotonically until it would tick back up, at
  // which point x == floor(sqrt(v)) — the y < x guard terminates there (a
  // plain x != prev loop would livelock on the period-2 oscillation around
  // near-squares like v = 3). Never overflows: x <= 2^31, x^2 <= 2^62.
  std::int64_t x = 1;
  while (x * x < v && x < (std::int64_t{1} << 31)) x <<= 1;
  std::int64_t y = (x + v / x) / 2;
  while (y < x) {
    x = y;
    y = (x + v / x) / 2;
  }
  return x;
}

std::int64_t phi_threshold_z_milli(std::int64_t threshold_milli) noexcept {
  // z*^2 = threshold / (log10(e)/2)  =>  z*_milli^2 = threshold_milli * kPhiDen / kPhiNum.
  // threshold_milli is bounded by validate() callers to sane values, but
  // clamp defensively so the multiply cannot overflow.
  const std::int64_t t = std::clamp<std::int64_t>(threshold_milli, 1, 1'000'000);
  return isqrt64(t * kPhiDen / kPhiNum);
}

void AccrualWindow::heard(const AccrualConfig& cfg, des::TimePoint now) {
  if (capacity_ == 0) {
    capacity_ = cfg.window;
    ring_.reserve(capacity_);
  }
  if (clock_running_) {
    const des::Duration gap = now - last_arrival_;
    std::int64_t sample_us = gap.to_nanos() / 1000;
    sample_us = std::clamp<std::int64_t>(sample_us, 0, kMaxSampleUs);
    if (sample_us < kMinSampleUs) {
      // A link-level duplicate of the datagram beacon (or two copies
      // racing through different delays) lands microseconds apart; a
      // near-zero "inter-arrival" is delivery noise, not a beacon period —
      // recording it would drag the mean toward zero and hair-trigger phi.
      last_arrival_ = now;
      return;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(sample_us);
    } else {
      const std::int64_t old = ring_[head_];
      sum_us_ -= old;
      sum_sq_us_ -= old * old;
      ring_[head_] = sample_us;
      head_ = (head_ + 1) % capacity_;
    }
    sum_us_ += sample_us;
    sum_sq_us_ += sample_us * sample_us;
  }
  last_arrival_ = now;
  clock_running_ = true;
}

void AccrualWindow::reset() noexcept {
  ring_.clear();
  head_ = 0;
  sum_us_ = 0;
  sum_sq_us_ = 0;
  clock_running_ = false;
}

void AccrualWindow::restart_gap(des::TimePoint now) noexcept {
  last_arrival_ = now;
  clock_running_ = true;
}

std::int64_t AccrualWindow::mean_us() const noexcept {
  if (ring_.empty()) return 0;
  return sum_us_ / static_cast<std::int64_t>(ring_.size());
}

std::int64_t AccrualWindow::stddev_us() const noexcept {
  const auto n = static_cast<std::int64_t>(ring_.size());
  if (n < 2) return 0;
  // var * n = sum_sq - mean * sum is non-negative because mean is the
  // floored integer mean (mean*sum <= (sum/n)*sum <= sum_sq by Cauchy-
  // Schwarz on the integer samples).
  const std::int64_t m = sum_us_ / n;
  const std::int64_t var_num = sum_sq_us_ - m * sum_us_;
  if (var_num <= 0) return 0;
  return isqrt64(var_num / n);
}

std::int64_t AccrualWindow::max_sample_us() const noexcept {
  std::int64_t max_us = 0;
  for (const std::int64_t s : ring_) max_us = std::max(max_us, s);
  return max_us;
}

std::int64_t AccrualWindow::floored_stddev_us(const AccrualConfig& cfg) const noexcept {
  const std::int64_t floor_us = cfg.min_stddev.to_nanos() / 1000;
  // Heavy-tail guard: beacon inter-arrivals under loss are geometric
  // (multiples of the period), and a Gaussian z on such a tail is
  // overconfident — a window that happens to hold few delayed samples
  // measures a small sigma and then flags the next ordinary 2-3 beat gap
  // as thousandfold-improbable. The window's worst observed deviation is
  // the empirical tail scale, so the envelope never sits closer to the
  // threshold than an order of magnitude past the worst gap already seen.
  // Clean links never see a delayed beacon (max == mean), so this term
  // vanishes and detection stays floor-driven and fast.
  const std::int64_t tail_us = 2 * (max_sample_us() - mean_us());
  return std::max({stddev_us(), tail_us, floor_us, std::int64_t{1}});
}

std::int64_t AccrualWindow::phi_milli(const AccrualConfig& cfg,
                                      des::TimePoint now) const noexcept {
  if (!clock_running_) return 0;  // never heard: nothing to accrue against
  const des::Duration silence = now - last_arrival_;
  if (!warmed_up(cfg)) {
    // Bootstrap: binary semantics against the warm-up timeout.
    return silence > cfg.bootstrap ? cfg.threshold_milli : 0;
  }
  const std::int64_t silence_us =
      std::clamp<std::int64_t>(silence.to_nanos() / 1000, 0, 2 * kMaxSampleUs);
  const std::int64_t m = mean_us();
  if (silence_us <= m) return 0;
  const std::int64_t sd = floored_stddev_us(cfg);
  const std::int64_t z_milli =
      std::min<std::int64_t>((silence_us - m) * 1000 / sd, kZMilliMax);
  return z_milli * z_milli * kPhiNum / kPhiDen;
}

des::Duration AccrualWindow::implied_timeout(const AccrualConfig& cfg) const noexcept {
  if (!warmed_up(cfg)) return cfg.bootstrap;
  const std::int64_t z_milli = phi_threshold_z_milli(cfg.threshold_milli);
  const std::int64_t sd = floored_stddev_us(cfg);
  const std::int64_t timeout_us = mean_us() + sd * z_milli / 1000;
  return des::Duration::nanos(timeout_us * 1000);
}

}  // namespace chk::chklib::membership
