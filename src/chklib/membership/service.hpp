// Cluster membership: heartbeat failure detection, quorum-tracked views,
// deterministic coordinator election, and fencing.
//
// Until now every failure in the simulator was oracle-driven: the faultsim
// injector *told* the runtime a rank died and recovery started instantly,
// and the coordinator was immortal by construction. This service closes
// that gap with the architecture of pacemaker's heartbeat/crmd/fencing
// split, scaled to the simulator:
//
//   detector   every rank broadcasts a periodic kHeartbeat beacon over the
//              normal control plane (reliable transport underneath, so the
//              lossy-link model can starve it); a per-rank sweep timer
//              suspects any member silent for longer than detect_timeout.
//   election   suspicion reports flow to the current *candidate* (the
//              lowest member the reporter does not suspect). Once
//              suspect_quorum distinct members suspect the same rank, the
//              candidate proposes a new view excluding it: a kViewChange
//              broadcast carrying a strictly increasing view id and the
//              member bitmap. View ids encode their proposer
//              (view % num_ranks == proposer), so the elected coordinator
//              of a view is a pure function of its id — at most one live
//              coordinator per membership epoch, by construction. Members
//              ack; a majority of the proposed membership establishes the
//              view (quorum tracking).
//   fencing    a live rank excluded from an adopted view is *fenced*: the
//              protocol layer discards its in-flight round state (via the
//              fence callback) and its acks stop counting toward commits.
//              A fenced rank petitions the coordinator with kJoinRequest
//              每 sweep until a re-adding view is established.
//   crash      RecoveryManager::fail_now strikes are intercepted: instead
//              of the oracle rollback, the victim merely goes silent (its
//              application process dies and the comm down-gate swallows
//              its traffic). The cluster must *detect* the death; rollback
//              recovery starts only when the crashed rank is evicted from
//              the view (with a deadman fallback in case the eviction
//              quorum never assembles).
//
// Determinism: the only RNG draws are the per-rank timer phases, taken
// once at start() in rank order from a dedicated schedule-independent
// stream (tag 0xBEA7 in the harness), so the membership machinery never
// perturbs any other fault domain. With no service constructed the
// simulation is bit-identical to pre-membership builds.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "chklib/recovery/manager.hpp"
#include "chklib/runtime.hpp"
#include "util/rng.hpp"

namespace chk::chklib::membership {

struct MembershipConfig {
  /// Heartbeat broadcast period per rank (phase-jittered at start).
  des::Duration hb_period = des::Duration::millis(250);
  /// A member silent for longer than this is suspected. The central
  /// tradeoff knob: aggressive values detect real crashes fast but evict
  /// live ranks under link loss (the false-suspicion storm regime).
  des::Duration detect_timeout = des::Duration::seconds(2);
  /// Extra slack the deadman recovery fallback grants a crashed rank's
  /// eviction before forcing the rollback. Zero = auto (2x detect_timeout).
  des::Duration rejoin_grace = des::Duration::zero();
  /// Distinct members (including the candidate itself) that must suspect a
  /// rank before its eviction is proposed. Clamped to the member count - 1.
  std::uint32_t suspect_quorum = 2;
  /// Stream selector forked off the experiment seed (campaign runs differ
  /// only in membership timer phases).
  std::uint64_t stream = 0;

  /// Throws std::invalid_argument on nonsense values (num_ranks > 64,
  /// non-positive periods, detect_timeout <= hb_period, quorum == 0).
  void validate(std::size_t num_ranks) const;
};

struct MembershipStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t suspicions = 0;        ///< fresh (observer, subject) suspicions
  std::uint64_t proposals = 0;         ///< kViewChange broadcasts (elections initiated)
  std::uint64_t views_established = 0; ///< proposals that gathered their ack majority
  std::uint64_t evictions = 0;         ///< members removed by an adopted view
  std::uint64_t wrongful_evictions = 0;///< ... of which were actually alive (fenced)
  std::uint64_t rejoins = 0;           ///< fenced ranks re-admitted by a view
  std::uint64_t crashes = 0;           ///< fail_now strikes absorbed as silent crashes
  std::uint64_t forced_recoveries = 0; ///< deadman fallback fired (eviction stalled)
};

class MembershipService final : public RecoveryObserver {
 public:
  MembershipService(Runtime& runtime, RecoveryManager& recovery,
                    MembershipConfig config, util::Rng rng);
  MembershipService(const MembershipService&) = delete;
  MembershipService& operator=(const MembershipService&) = delete;
  ~MembershipService() override;

  /// Install the comm sink/gate and the recovery interceptor, draw the
  /// timer phases (the stream's only draws, in rank order), and arm the
  /// heartbeat + sweep timers. Call once, before traffic starts.
  void start();

  /// Close any membership-exclusion episode still open (emits the final
  /// kMembershipWait spans). Call after the simulation stops.
  void finalize();

  // ---- view / protocol integration -----------------------------------------
  [[nodiscard]] std::uint64_t view() const noexcept { return view_; }
  /// The elected coordinator: a pure function of the current view id.
  [[nodiscard]] Rank coordinator() const noexcept {
    return static_cast<Rank>(view_ % num_ranks_);
  }
  [[nodiscard]] bool is_member(Rank r) const noexcept {
    return ((members_ >> r) & 1u) != 0;
  }
  /// Ground truth (simulator-side) — the cluster itself only sees views.
  [[nodiscard]] bool is_down(Rank r) const noexcept { return down_.contains(r); }
  [[nodiscard]] bool is_fenced(Rank r) const noexcept { return fenced_.contains(r); }

  /// Invoked in kernel context when a proposed view gathered its ack
  /// majority — the protocol aborts an in-flight round and re-initiates it
  /// under the new coordinator at a higher epoch.
  void set_view_established_callback(std::function<void(std::uint64_t)> cb) {
    on_view_established_ = std::move(cb);
  }
  /// Invoked in kernel context when a live rank is fenced (true) or
  /// rejoins (false) — the protocol discards the rank's in-flight round
  /// state so a wrongly-evicted rank cannot corrupt a commit.
  void set_fence_callback(std::function<void(Rank, bool)> cb) {
    on_fence_ = std::move(cb);
  }

  [[nodiscard]] const MembershipStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MembershipConfig& config() const noexcept { return cfg_; }

  /// RecoveryManager failure-interceptor target: absorb a strike as a
  /// silent crash the cluster must detect. Returns false (declining the
  /// interception, so the oracle overlap path runs) while a rollback
  /// restore is already in flight.
  bool crash(Rank r);

  // ---- RecoveryObserver ------------------------------------------------------
  void on_recovery_begin(Rank failed) override;
  void on_recovery_end(const RecoveryReport& report) override;

 private:
  void on_control(Rank dst, const ControlMsg& msg);
  void heartbeat_tick(Rank r);
  void sweep_tick(Rank r);
  /// Quorum scan triggered at `at` (a suspicion report arrived there, or
  /// its own sweep found one); proposes iff `at` is the current candidate.
  void maybe_propose(Rank at);
  void propose(Rank proposer, std::uint64_t new_members);
  void adopt(const ControlMsg& msg);
  /// Flip the shared view state and run the transition side effects
  /// (fencing, rejoin, crash-eviction recovery hand-off).
  void apply_view(std::uint64_t view, std::uint64_t members);
  void establish();
  /// The election candidate from `r`'s point of view: the lowest member
  /// `r` does not currently suspect.
  [[nodiscard]] Rank candidate_of(Rank r) const;
  [[nodiscard]] std::uint32_t effective_quorum() const noexcept;
  [[nodiscard]] des::Duration grace() const noexcept;
  void begin_exclusion(Rank r);
  void end_exclusion(Rank r);

  Runtime* rt_;
  RecoveryManager* recovery_;
  MembershipConfig cfg_;
  std::size_t num_ranks_;
  util::Rng rng_;
  MembershipStats stats_;
  std::function<void(std::uint64_t)> on_view_established_;
  std::function<void(Rank, bool)> on_fence_;
  bool started_ = false;

  // View state. view 0 = the initial full-membership view (coordinator 0).
  std::uint64_t view_ = 0;
  std::uint64_t members_ = 0;  ///< rank bitmap of the current view
  std::uint64_t proposed_view_ = 0;     ///< 0 = no proposal in flight
  std::uint64_t proposed_members_ = 0;
  std::set<Rank> view_acks_;

  // Detector state.
  std::vector<std::int64_t> phase_ns_;  ///< per-rank timer phase (the init draws)
  std::vector<std::vector<des::TimePoint>> last_heard_;  ///< [observer][subject]
  std::vector<std::vector<bool>> suspects_;              ///< [observer][subject]
  bool detection_paused_ = false;  ///< while a rollback restore is in flight

  // Ground truth + attribution episodes.
  std::set<Rank> down_;
  std::set<Rank> fenced_;
  std::vector<des::TimePoint> excluded_since_;
  std::vector<bool> episode_open_;
};

}  // namespace chk::chklib::membership
