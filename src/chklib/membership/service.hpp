// Cluster membership: heartbeat failure detection, quorum-tracked views,
// deterministic coordinator election, and fencing.
//
// Until now every failure in the simulator was oracle-driven: the faultsim
// injector *told* the runtime a rank died and recovery started instantly,
// and the coordinator was immortal by construction. This service closes
// that gap with the architecture of pacemaker's heartbeat/crmd/fencing
// split, scaled to the simulator:
//
//   detector   every rank broadcasts a periodic kHeartbeat beacon as an
//              unsequenced datagram (fire-and-forget — the lossy-link model
//              can starve it, but a stalled FIFO stream cannot head-of-line
//              block it); a per-rank sweep timer suspects any member whose
//              silence the configured detector (binary timeout or
//              phi-accrual) deems improbable.
//   election   suspicion reports flow to the current *candidate* (the
//              lowest member the reporter does not suspect). Once
//              suspect_quorum distinct members suspect the same rank, the
//              candidate proposes a new view excluding it: a kViewChange
//              broadcast carrying a strictly increasing view id and the
//              member bitmap. View ids encode their proposer
//              (view % num_ranks == proposer), so the elected coordinator
//              of a view is a pure function of its id — at most one live
//              coordinator per membership epoch, by construction. Members
//              ack; a majority of the proposed membership establishes the
//              view (quorum tracking).
//   fencing    a live rank excluded from an adopted view is *fenced*: the
//              protocol layer discards its in-flight round state (via the
//              fence callback) and its acks stop counting toward commits.
//              A fenced rank petitions the coordinator with kJoinRequest
//              每 sweep until a re-adding view is established.
//   crash      RecoveryManager::fail_now strikes are intercepted: instead
//              of the oracle rollback, the victim merely goes silent (its
//              application process dies and the comm down-gate swallows
//              its traffic). The cluster must *detect* the death; rollback
//              recovery starts only when the crashed rank is evicted from
//              the view (with a deadman fallback in case the eviction
//              quorum never assembles).
//
// Determinism: the only RNG draws are the per-rank timer phases, taken
// once at start() in rank order from a dedicated schedule-independent
// stream (tag 0xBEA7 in the harness), so the membership machinery never
// perturbs any other fault domain. With no service constructed the
// simulation is bit-identical to pre-membership builds.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "chklib/membership/accrual.hpp"
#include "chklib/recovery/manager.hpp"
#include "chklib/runtime.hpp"
#include "util/rng.hpp"

namespace chk::chklib::membership {

/// How an observer decides a member is suspect.
///
///   kBinaryTimeout  silent longer than detect_timeout => suspect. Simple
///                   and fast on clean links, but the knob is global: under
///                   the lossy-link model (see BENCH_membership.json) a
///                   0.6 s timeout at 20% loss wrongly evicts 12-17 *live*
///                   ranks per run, each one a fence + discarded round +
///                   rejoin.
///   kPhiAccrual     suspicion accrues from the observed heartbeat
///                   inter-arrival distribution (accrual.hpp): suspect when
///                   phi crosses accrual.threshold_milli. Links slowed by
///                   retransmission storms widen their own windows, so loss
///                   stops looking like death. Suspicion is also
///                   *hysteretic* in both modes: a suspect whose evidence
///                   recedes (heartbeat arrives / phi drops back below
///                   threshold) before the eviction quorum assembles is
///                   quietly un-suspected — no fence, no view change
///                   (counted in stats.suspicions_cleared).
enum class Detector : std::uint8_t { kBinaryTimeout, kPhiAccrual };

/// Parse a CLI detector name ("binary" | "phi"). Throws
/// std::invalid_argument naming the accepted spellings otherwise.
[[nodiscard]] Detector parse_detector(const std::string& text);
[[nodiscard]] const char* to_string(Detector d) noexcept;

struct MembershipConfig {
  /// Heartbeat broadcast period per rank (phase-jittered at start).
  des::Duration hb_period = des::Duration::millis(250);
  /// kBinaryTimeout: a member silent for longer than this is suspected.
  /// The default (2 s) is deliberately lax — BENCH_membership.json measures
  /// the storm regime starting around 0.6 s at 20% link loss, where the
  /// binary detector evicts live ranks every run. kPhiAccrual uses this
  /// only as the warm-up bootstrap timeout (accrual.bootstrap = 0) and as
  /// the base of the pre-warm-up deadman.
  des::Duration detect_timeout = des::Duration::seconds(2);
  /// Extra slack the deadman recovery fallback grants a crashed rank's
  /// eviction before forcing the rollback. Zero = auto (2x detect_timeout).
  des::Duration rejoin_grace = des::Duration::zero();
  /// Distinct members (including the candidate itself) that must suspect a
  /// rank before its eviction is proposed. Clamped to the member count - 1.
  std::uint32_t suspect_quorum = 2;
  /// Stream selector forked off the experiment seed (campaign runs differ
  /// only in membership timer phases).
  std::uint64_t stream = 0;
  /// Which failure detector drives suspicion. Binary is the default so
  /// every pre-accrual baseline stays bit-identical.
  Detector detector = Detector::kBinaryTimeout;
  /// Phi-accrual tuning; consulted only when detector == kPhiAccrual.
  /// Zero-valued min_stddev / bootstrap resolve to hb_period / 4 and
  /// detect_timeout at start().
  AccrualConfig accrual;

  /// Throws std::invalid_argument on nonsense values (num_ranks > 64,
  /// non-positive periods, detect_timeout <= hb_period, quorum == 0,
  /// malformed accrual config in phi mode).
  void validate(std::size_t num_ranks) const;
};

struct MembershipStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t suspicions = 0;        ///< fresh (observer, subject) suspicions
  std::uint64_t proposals = 0;         ///< kViewChange broadcasts (elections initiated)
  std::uint64_t views_established = 0; ///< proposals that gathered their ack majority
  std::uint64_t evictions = 0;         ///< members removed by an adopted view
  std::uint64_t wrongful_evictions = 0;///< ... of which were actually alive (fenced)
  std::uint64_t rejoins = 0;           ///< fenced ranks re-admitted by a view
  std::uint64_t crashes = 0;           ///< fail_now strikes absorbed as silent crashes
  std::uint64_t forced_recoveries = 0; ///< deadman fallback fired (eviction stalled)
  std::uint64_t suspicions_cleared = 0;///< suspicions retracted without a view change
  std::uint64_t detections = 0;        ///< real crashes evicted by a quorum view
  /// Per-detection latency (crash strike -> evicting view), in order.
  std::vector<std::int64_t> detection_latency_ns;
};

class MembershipService final : public RecoveryObserver {
 public:
  MembershipService(Runtime& runtime, RecoveryManager& recovery,
                    MembershipConfig config, util::Rng rng);
  MembershipService(const MembershipService&) = delete;
  MembershipService& operator=(const MembershipService&) = delete;
  ~MembershipService() override;

  /// Install the comm sink/gate and the recovery interceptor, draw the
  /// timer phases (the stream's only draws, in rank order), and arm the
  /// heartbeat + sweep timers. Call once, before traffic starts.
  void start();

  /// Close any membership-exclusion episode still open (emits the final
  /// kMembershipWait spans). Call after the simulation stops.
  void finalize();

  // ---- view / protocol integration -----------------------------------------
  [[nodiscard]] std::uint64_t view() const noexcept { return view_; }
  /// The elected coordinator: a pure function of the current view id.
  [[nodiscard]] Rank coordinator() const noexcept {
    return static_cast<Rank>(view_ % num_ranks_);
  }
  [[nodiscard]] bool is_member(Rank r) const noexcept {
    return ((members_ >> r) & 1u) != 0;
  }
  /// Ground truth (simulator-side) — the cluster itself only sees views.
  [[nodiscard]] bool is_down(Rank r) const noexcept { return down_.contains(r); }
  [[nodiscard]] bool is_fenced(Rank r) const noexcept { return fenced_.contains(r); }

  /// Invoked in kernel context when a proposed view gathered its ack
  /// majority — the protocol aborts an in-flight round and re-initiates it
  /// under the new coordinator at a higher epoch.
  void set_view_established_callback(std::function<void(std::uint64_t)> cb) {
    on_view_established_ = std::move(cb);
  }
  /// Invoked in kernel context when a live rank is fenced (true) or
  /// rejoins (false) — the protocol discards the rank's in-flight round
  /// state so a wrongly-evicted rank cannot corrupt a commit.
  void set_fence_callback(std::function<void(Rank, bool)> cb) {
    on_fence_ = std::move(cb);
  }

  [[nodiscard]] const MembershipStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MembershipConfig& config() const noexcept { return cfg_; }

  /// RecoveryManager failure-interceptor target: absorb a strike as a
  /// silent crash the cluster must detect. Returns false (declining the
  /// interception, so the oracle overlap path runs) while a rollback
  /// restore is already in flight.
  bool crash(Rank r);

  // ---- RecoveryObserver ------------------------------------------------------
  void on_recovery_begin(Rank failed) override;
  void on_recovery_end(const RecoveryReport& report) override;

 private:
  void on_control(Rank dst, const ControlMsg& msg);
  /// Beacon chains are epoch-guarded: a rejoin re-phases the rank's beacon
  /// by bumping its epoch (orphaning the old chain) and scheduling a fresh
  /// one, so post-rejoin heartbeats never alias the pre-eviction schedule.
  void heartbeat_tick(Rank r, std::uint32_t epoch);
  void sweep_tick(Rank r);
  /// Re-phase `r`'s beacon after a rejoin. Deterministic and draw-free:
  /// the new phase is a splitmix64 hash of the start()-drawn phase and the
  /// rank's rejoin ordinal, so the RNG stream stays schedule-independent.
  void rephase_beacon(Rank r);
  /// True iff observer `r` should currently suspect member `m`.
  [[nodiscard]] bool suspicious(Rank r, Rank m, des::TimePoint now) const;
  /// Sweep re-arm period: hb_period for binary; for phi, tracks the
  /// tightest implied timeout so the scan keeps pace with the detector.
  [[nodiscard]] des::Duration sweep_period(Rank r) const;
  /// Deadman delay for a crash of `r`: binary uses the fixed
  /// 2 x detect_timeout + grace; phi derives it from the widest observer's
  /// phi-implied timeout so a lax learned distribution still has a floor.
  [[nodiscard]] des::Duration deadman_delay(Rank r) const;
  /// Quorum scan triggered at `at` (a suspicion report arrived there, or
  /// its own sweep found one); proposes iff `at` is the current candidate.
  void maybe_propose(Rank at);
  void propose(Rank proposer, std::uint64_t new_members);
  void adopt(const ControlMsg& msg);
  /// Flip the shared view state and run the transition side effects
  /// (fencing, rejoin, crash-eviction recovery hand-off).
  void apply_view(std::uint64_t view, std::uint64_t members);
  void establish();
  /// The election candidate from `r`'s point of view: the lowest member
  /// `r` does not currently suspect.
  [[nodiscard]] Rank candidate_of(Rank r) const;
  [[nodiscard]] std::uint32_t effective_quorum() const noexcept;
  [[nodiscard]] des::Duration grace() const noexcept;
  void begin_exclusion(Rank r);
  void end_exclusion(Rank r);

  Runtime* rt_;
  RecoveryManager* recovery_;
  MembershipConfig cfg_;
  std::size_t num_ranks_;
  util::Rng rng_;
  MembershipStats stats_;
  std::function<void(std::uint64_t)> on_view_established_;
  std::function<void(Rank, bool)> on_fence_;
  bool started_ = false;

  // View state. view 0 = the initial full-membership view (coordinator 0).
  std::uint64_t view_ = 0;
  std::uint64_t members_ = 0;  ///< rank bitmap of the current view
  std::uint64_t proposed_view_ = 0;     ///< 0 = no proposal in flight
  std::uint64_t proposed_members_ = 0;
  std::set<Rank> view_acks_;

  // Detector state.
  std::vector<std::int64_t> phase_ns_;  ///< per-rank timer phase (the init draws)
  std::vector<std::vector<des::TimePoint>> last_heard_;  ///< [observer][subject]
  std::vector<std::vector<bool>> suspects_;              ///< [observer][subject]
  bool detection_paused_ = false;  ///< while a rollback restore is in flight
  AccrualConfig acc_;              ///< cfg_.accrual with autos resolved
  std::vector<std::vector<AccrualWindow>> accrual_;      ///< [observer][subject]
  std::vector<std::uint32_t> beacon_epoch_;  ///< guards heartbeat timer chains
  std::vector<std::uint32_t> rejoin_seq_;    ///< re-phase ordinal per rank
  std::vector<des::TimePoint> crash_at_;     ///< strike time (valid while down)

  // Ground truth + attribution episodes.
  std::set<Rank> down_;
  std::set<Rank> fenced_;
  std::vector<des::TimePoint> excluded_since_;
  std::vector<bool> episode_open_;
};

}  // namespace chk::chklib::membership
