#include "lexer.hpp"

#include <array>
#include <cctype>

namespace chk::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character punctuators the rules care about (longest first).
constexpr std::array<std::string_view, 21> kPuncts = {
    "->*", "...", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=",
};

/// Pull rule names out of one `chklint:allow(...)` argument list starting
/// at the character after '('. Returns the parsed names.
std::set<std::string> parse_allow_args(std::string_view text, std::size_t pos) {
  std::set<std::string> rules;
  std::string current;
  for (; pos < text.size() && text[pos] != ')'; ++pos) {
    const char c = text[pos];
    if (ident_char(c) || c == '-' || c == '*') {
      current.push_back(c);
    } else if (!current.empty()) {
      rules.insert(current);
      current.clear();
    }
  }
  if (!current.empty()) rules.insert(current);
  return rules;
}

/// Scan a comment's text for allow directives and record them.
void scan_comment(SourceFile& file, std::string_view text, std::uint32_t line) {
  static constexpr std::string_view kFileTag = "chklint:allow-file(";
  static constexpr std::string_view kLineTag = "chklint:allow(";
  for (std::size_t pos = 0; (pos = text.find(kFileTag, pos)) != std::string_view::npos;
       ++pos) {
    for (auto& rule : parse_allow_args(text, pos + kFileTag.size()))
      file.file_allows.insert(rule);
  }
  for (std::size_t pos = 0; (pos = text.find(kLineTag, pos)) != std::string_view::npos;
       ++pos) {
    for (auto& rule : parse_allow_args(text, pos + kLineTag.size()))
      file.line_allows[line].insert(rule);
  }
}

}  // namespace

bool SourceFile::allows(const std::string& rule, std::uint32_t line) const {
  if (file_allows.contains(rule) || file_allows.contains("*")) return true;
  const auto covers = [&](std::uint32_t l) {
    const auto it = line_allows.find(l);
    return it != line_allows.end() &&
           (it->second.contains(rule) || it->second.contains("*"));
  };
  if (covers(line)) return true;
  // A directive on a comment-only line applies to the next code line; walk
  // up through any run of comment/blank lines above the finding.
  for (std::uint32_t l = line; l > 1;) {
    --l;
    if (code_lines.contains(l)) break;
    if (covers(l)) return true;
  }
  return false;
}

void lex(SourceFile& file) {
  const std::string_view src = file.content;
  std::size_t i = 0;
  std::uint32_t line = 1;
  std::uint32_t col = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line

  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
        at_line_start = true;
      } else {
        ++col;
      }
    }
  };
  const auto push = [&](Tok kind, std::size_t begin, std::uint32_t tline,
                        std::uint32_t tcol) {
    file.tokens.push_back(Token{kind, src.substr(begin, i - begin), tline, tcol});
    file.code_lines.insert(tline);
    at_line_start = false;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v') {
      advance(1);
      continue;
    }
    const std::uint32_t tline = line;
    const std::uint32_t tcol = col;

    // Preprocessor directive: skip the full (possibly continued) line.
    if (c == '#' && at_line_start) {
      while (i < src.size()) {
        if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        advance(1);
      }
      continue;
    }

    // Comments (scanned for suppression directives, then dropped).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const std::size_t begin = i;
      while (i < src.size() && src[i] != '\n') advance(1);
      scan_comment(file, src.substr(begin, i - begin), tline);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t begin = i;
      advance(2);
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      advance(2);
      scan_comment(file, src.substr(begin, i - begin), tline);
      continue;
    }

    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      const std::size_t begin = i;
      advance(2);
      std::string delim;
      while (i < src.size() && src[i] != '(') {
        delim.push_back(src[i]);
        advance(1);
      }
      const std::string close = ")" + delim + "\"";
      while (i < src.size() && src.substr(i, close.size()) != close) advance(1);
      advance(close.size());
      push(Tok::kString, begin, tline, tcol);
      continue;
    }

    // String / char literals with escapes.
    if (c == '"' || c == '\'') {
      const std::size_t begin = i;
      advance(1);
      while (i < src.size() && src[i] != c) {
        if (src[i] == '\\' && i + 1 < src.size()) advance(1);
        advance(1);
      }
      advance(1);
      push(c == '"' ? Tok::kString : Tok::kChar, begin, tline, tcol);
      continue;
    }

    if (ident_start(c)) {
      const std::size_t begin = i;
      while (i < src.size() && ident_char(src[i])) advance(1);
      push(Tok::kIdent, begin, tline, tcol);
      continue;
    }

    if (digit(c) || (c == '.' && i + 1 < src.size() && digit(src[i + 1]))) {
      const std::size_t begin = i;
      while (i < src.size()) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          advance(1);
        } else if ((d == '+' || d == '-') && i > begin &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                    src[i - 1] == 'P')) {
          advance(1);  // exponent sign
        } else {
          break;
        }
      }
      push(Tok::kNumber, begin, tline, tcol);
      continue;
    }

    // Punctuation, longest match first.
    std::size_t len = 1;
    for (const std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        len = p.size();
        break;
      }
    }
    {
      const std::size_t begin = i;
      advance(len);
      push(Tok::kPunct, begin, tline, tcol);
    }
  }
}

}  // namespace chk::lint
