// chklint token stream.
//
// A deliberately small C++ lexer: enough structure for the determinism
// rules (identifiers, literals, punctuation, suppression comments), none
// of the cost of a real frontend. Preprocessor directives are skipped
// whole-line, comments are scanned for `chklint:allow(...)` directives and
// then dropped, and every surviving token keeps its 1-based line/column so
// findings are clickable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace chk::lint {

enum class Tok : std::uint8_t { kIdent, kNumber, kString, kChar, kPunct, kEof };

struct Token {
  Tok kind = Tok::kEof;
  std::string_view text;  ///< view into SourceFile::content
  std::uint32_t line = 0;
  std::uint32_t col = 0;
};

struct SourceFile {
  std::string path;     ///< root-relative, '/'-separated
  std::string content;  ///< owns the bytes every Token::text points into
  std::vector<Token> tokens;

  /// `// chklint:allow(rule-a, rule-b)` — rules allowed on that line. A
  /// directive on a comment-only line also covers the next code line.
  std::map<std::uint32_t, std::set<std::string>> line_allows;
  /// `// chklint:allow-file(rule)` — rules allowed anywhere in the file.
  std::set<std::string> file_allows;
  /// Lines that hold at least one token (to tell comment-only lines apart).
  std::set<std::uint32_t> code_lines;

  /// True if `rule` is suppressed at `line` by an allow directive on the
  /// same line, on a run of comment-only lines directly above it, or
  /// file-wide. "*" allows every rule.
  [[nodiscard]] bool allows(const std::string& rule, std::uint32_t line) const;
};

/// Tokenize `file.content` into `file.tokens` and the suppression maps.
void lex(SourceFile& file);

}  // namespace chk::lint
