// The six determinism-discipline rules.
//
// All rules are token-level heuristics tuned to this codebase's
// conventions. They prefer false negatives over false positives, and every
// deliberate exception is expected to carry a `// chklint:allow(<rule>)`
// comment with a justification — the analyzer is a discipline gate, not a
// type checker.
#include "rules.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <set>

namespace chk::lint {

namespace {

using Tokens = std::vector<Token>;

bool is(const Token& t, std::string_view text) { return t.text == text; }

/// True when `path` (root-relative) lives under directory `dir` at any depth.
bool under(const std::string& path, std::string_view dir) {
  const std::string needle = std::string(dir) + "/";
  if (path.rfind(needle, 0) == 0) return true;
  return path.find("/" + needle) != std::string::npos;
}

/// Matching ')' for the '(' at `open`; tokens.size() if unbalanced.
std::size_t match_forward(const Tokens& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is(toks[i], "(")) ++depth;
    if (is(toks[i], ")") && --depth == 0) return i;
  }
  return toks.size();
}

/// Matching '(' for the ')' at `close`; tokens.size() if unbalanced.
std::size_t match_backward(const Tokens& toks, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is(toks[i], ")")) ++depth;
    if (is(toks[i], "(") && --depth == 0) return i;
  }
  return toks.size();
}

/// Parse a C++ integer literal (hex/dec/oct/bin, digit separators, u/l
/// suffixes). nullopt for floats or anything else.
std::optional<std::uint64_t> parse_int_literal(std::string_view text) {
  std::string digits;
  for (const char c : text)
    if (c != '\'') digits.push_back(c);
  while (!digits.empty()) {
    const char back = digits.back();
    if (back == 'u' || back == 'U' || back == 'l' || back == 'L' || back == 'z' ||
        back == 'Z') {
      digits.pop_back();
    } else {
      break;
    }
  }
  if (digits.empty()) return std::nullopt;
  int base = 10;
  std::size_t pos = 0;
  if (digits.size() > 2 && digits[0] == '0' && (digits[1] == 'x' || digits[1] == 'X')) {
    base = 16;
    pos = 2;
  } else if (digits.size() > 2 && digits[0] == '0' &&
             (digits[1] == 'b' || digits[1] == 'B')) {
    base = 2;
    pos = 2;
  } else if (digits.size() > 1 && digits[0] == '0') {
    base = 8;
    pos = 1;
  }
  std::uint64_t value = 0;
  if (pos >= digits.size()) return digits == "0" ? std::optional<std::uint64_t>(0)
                                                 : std::nullopt;
  for (; pos < digits.size(); ++pos) {
    const char c = digits[pos];
    int d = 0;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = 10 + (c - 'a');
    else if (c >= 'A' && c <= 'F') d = 10 + (c - 'A');
    else return std::nullopt;
    if (d >= base) return std::nullopt;
    value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(d);
  }
  return value;
}

bool is_float_literal(std::string_view text) {
  if (text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X'))
    return text.find('p') != std::string_view::npos ||
           text.find('P') != std::string_view::npos;
  if (text.find('.') != std::string_view::npos) return true;
  if (text.find('e') != std::string_view::npos ||
      text.find('E') != std::string_view::npos)
    return true;
  return !text.empty() && (text.back() == 'f' || text.back() == 'F');
}

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llX", static_cast<unsigned long long>(v));
  return buf;
}

// ---------------------------------------------------------------------------
// Rule 1: no-ambient-nondeterminism
// ---------------------------------------------------------------------------

void rule_no_ambient_nondeterminism(const Context& ctx, std::vector<Finding>& out) {
  static const std::set<std::string_view> kBannedAnywhere = {
      "random_device", "mt19937",       "mt19937_64",   "minstd_rand",
      "minstd_rand0",  "knuth_b",       "ranlux24",     "ranlux48",
      "ranlux24_base", "ranlux48_base", "srand",        "gettimeofday",
      "localtime",     "gmtime",        "system_clock", "steady_clock",
      "high_resolution_clock", "default_random_engine"};
  static const std::set<std::string_view> kBannedCalls = {"rand", "time", "clock"};

  for (const SourceFile& file : *ctx.files) {
    // util::Rng is the one place allowed to own raw generator machinery.
    if (file.path.find("util/rng.") != std::string::npos) continue;
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      const std::string_view name = toks[i].text;
      const bool clock_like = name.find("clock") != std::string_view::npos ||
                              name == "time" || name == "gettimeofday" ||
                              name == "localtime" || name == "gmtime";
      if (kBannedAnywhere.contains(name)) {
        std::string msg = "'";
        msg.append(name);
        msg += "' is ambient nondeterminism; ";
        msg += clock_like ? "use the simulator clock (des::Simulator::now)"
                          : "route randomness through util::Rng::fork with a "
                            "unique stream tag";
        out.push_back({"no-ambient-nondeterminism", file.path, toks[i].line,
                       toks[i].col, std::move(msg)});
        continue;
      }
      if (!kBannedCalls.contains(name)) continue;
      if (i + 1 >= toks.size() || !is(toks[i + 1], "(")) continue;
      if (i > 0) {
        const Token& prev = toks[i - 1];
        if (is(prev, ".") || is(prev, "->")) continue;  // member of another type
        if (is(prev, "::")) {
          // std::rand / ::time are still the libc functions; Foo::time is not.
          if (i >= 2 && toks[i - 2].kind == Tok::kIdent && !is(toks[i - 2], "std"))
            continue;
        }
      }
      out.push_back({"no-ambient-nondeterminism", file.path, toks[i].line,
                     toks[i].col,
                     "call to '" + std::string(name) +
                         "()' is ambient nondeterminism; " +
                         (name == "rand"
                              ? "route randomness through util::Rng::fork with a "
                                "unique stream tag"
                              : "use the simulator clock (des::Simulator::now)")});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: unique-fork-tags
// ---------------------------------------------------------------------------

bool is_fault_domain(const std::string& path) {
  return under(path, "faultsim") ||
         path.find("storage_fault.") != std::string::npos ||
         path.find("link_fault.") != std::string::npos;
}

/// The fault-domain stream tags this codebase has already assigned, each
/// owned by the one file allowed to fork it. Re-using a reserved tag
/// anywhere else silently correlates a new stream with an existing fault
/// domain — that is a finding even without a literal collision in the
/// scanned set (the owner may be outside the scan paths).
struct ReservedTag {
  std::uint64_t tag;
  std::string_view owner;  ///< path substring of the owning file
  std::string_view domain;
};
constexpr ReservedTag kReservedTags[] = {
    {0x11F0, "harness/experiment.cpp", "link weather"},
    {0x510F, "harness/experiment.cpp", "storage weather"},
    {0x57C0, "svc/kvstore", "request-serving workload"},
    {0xBEA7, "harness/experiment.cpp", "membership detector phases"},
    {0xFA11, "faultsim/injector.cpp", "failure injector"},
};

const ReservedTag* reserved_tag(std::uint64_t value) {
  for (const ReservedTag& r : kReservedTags)
    if (r.tag == value) return &r;
  return nullptr;
}

void rule_unique_fork_tags(const Context& ctx, std::vector<Finding>& out) {
  struct Site {
    const SourceFile* file;
    std::uint32_t line;
    std::uint32_t col;
    std::uint64_t value;
  };
  std::map<std::uint64_t, std::vector<Site>> by_value;

  for (const SourceFile& file : *ctx.files) {
    const Tokens& toks = file.tokens;

    // Same-file `constexpr ... kName = <int literal>;` constants resolve as
    // literal tags (the named-constant idiom is encouraged, not penalized).
    std::map<std::string_view, std::uint64_t> constants;
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
      if (!is(toks[i], "constexpr")) continue;
      for (std::size_t j = i + 1; j + 3 < toks.size() && j < i + 10; ++j) {
        if (is(toks[j], ";")) break;
        if (toks[j].kind == Tok::kIdent && is(toks[j + 1], "=") &&
            toks[j + 2].kind == Tok::kNumber && is(toks[j + 3], ";")) {
          if (const auto v = parse_int_literal(toks[j + 2].text))
            constants[toks[j].text] = *v;
          break;
        }
      }
    }

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      if (!is(toks[i], "fork") && !is(toks[i], "fork_rng")) continue;
      if (!is(toks[i + 1], "(")) continue;
      const std::size_t close = match_forward(toks, i + 1);
      if (close >= toks.size()) continue;
      const std::size_t argc = close - (i + 2);  // tokens inside the parens
      std::optional<std::uint64_t> tag;
      if (argc == 1 && toks[i + 2].kind == Tok::kNumber) {
        tag = parse_int_literal(toks[i + 2].text);
      } else if (argc == 1 && toks[i + 2].kind == Tok::kIdent) {
        if (const auto it = constants.find(toks[i + 2].text); it != constants.end())
          tag = it->second;
      } else if (argc >= 2 && toks[i + 2].kind == Tok::kNumber &&
                 is(toks[i + 3], "+")) {
        // `fork_rng(0x6000 + rank)` — a literal-based tag family; the base
        // literal is the family's identity in the global namespace.
        tag = parse_int_literal(toks[i + 2].text);
      }
      if (tag) {
        by_value[*tag].push_back({&file, toks[i].line, toks[i].col, *tag});
        if (const ReservedTag* r = reserved_tag(*tag);
            r != nullptr && file.path.find(r->owner) == std::string::npos) {
          out.push_back({"unique-fork-tags", file.path, toks[i].line, toks[i].col,
                         "Rng::fork tag " + hex(*tag) +
                             " is the reserved " + std::string(r->domain) +
                             " stream, owned by " + std::string(r->owner) +
                             "; pick a fresh tag so the streams cannot "
                             "correlate"});
        }
      } else if (argc >= 1 && is_fault_domain(file.path)) {
        out.push_back({"unique-fork-tags", file.path, toks[i].line, toks[i].col,
                       "non-literal Rng::fork tag in fault-domain code; use a "
                       "globally unique hex literal (or same-file constexpr "
                       "constant) so fault streams cannot silently correlate"});
      }
    }
  }

  for (auto& [value, sites] : by_value) {
    if (sites.size() < 2) continue;
    // The first site in report order owns the tag; every other site collides.
    std::sort(sites.begin(), sites.end(), [](const Site& a, const Site& b) {
      if (a.file->path != b.file->path) return a.file->path < b.file->path;
      if (a.line != b.line) return a.line < b.line;
      return a.col < b.col;
    });
    const Site& canon = sites.front();
    char loc[64];
    std::snprintf(loc, sizeof loc, ":%u", canon.line);
    for (std::size_t s = 1; s < sites.size(); ++s) {
      out.push_back({"unique-fork-tags", sites[s].file->path, sites[s].line,
                     sites[s].col,
                     "Rng::fork tag " + hex(value) + " collides with " +
                         canon.file->path + loc +
                         "; stream tags must be globally unique or the two "
                         "streams correlate"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: one-door-storage
// ---------------------------------------------------------------------------

void rule_one_door_storage(const Context& ctx, std::vector<Finding>& out) {
  static const std::set<std::string_view> kIoCalls = {"write", "read",
                                                      "write_blocking",
                                                      "read_blocking"};
  for (const SourceFile& file : *ctx.files) {
    if (!under(file.path, "src/chklib") && file.path.find("chklib/") == std::string::npos)
      continue;
    if (file.path.find("storage_client.") != std::string::npos) continue;
    const Tokens& toks = file.tokens;
    for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || !kIoCalls.contains(toks[i].text)) continue;
      if (!is(toks[i + 1], "(")) continue;
      if (!is(toks[i - 1], ".") && !is(toks[i - 1], "->")) continue;
      bool on_storage = false;
      const Token& recv = toks[i - 2];
      if (recv.kind == Tok::kIdent) {
        on_storage = is(recv, "storage_") || is(recv, "storage");
      } else if (is(recv, ")")) {
        const std::size_t open = match_backward(toks, i - 2);
        on_storage = open < toks.size() && open > 0 &&
                     toks[open - 1].kind == Tok::kIdent &&
                     is(toks[open - 1], "storage");
      }
      if (!on_storage) continue;
      out.push_back({"one-door-storage", file.path, toks[i].line, toks[i].col,
                     "direct StableStorage::" + std::string(toks[i].text) +
                         " from chklib; all blocking storage I/O goes through "
                         "the one StorageClient door so retry policy and "
                         "attribution stay centralized"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: duration-arithmetic
// ---------------------------------------------------------------------------

void rule_duration_arithmetic(const Context& ctx, std::vector<Finding>& out) {
  static const std::set<std::string_view> kFactories = {
      "nanos", "micros", "millis", "secs", "seconds", "zero", "max"};
  for (const SourceFile& file : *ctx.files) {
    const Tokens& toks = file.tokens;

    // Names introduced as `Duration x` / `des::Duration& x` (this also
    // sweeps up Duration-returning function names — which is exactly the
    // set we want to treat as Duration-valued expressions).
    std::set<std::string_view> duration_names;
    std::set<std::string_view> float_names;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      const bool dur = is(toks[i], "Duration");
      const bool flt = is(toks[i], "double") || is(toks[i], "float");
      if (!dur && !flt) continue;
      std::size_t j = i + 1;
      while (j < toks.size() && (is(toks[j], "&") || is(toks[j], "&&") ||
                                 is(toks[j], "const")))
        ++j;
      if (j >= toks.size() || toks[j].kind != Tok::kIdent) continue;
      if (is(toks[j], "operator")) continue;
      (dur ? duration_names : float_names).insert(toks[j].text);
    }

    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (!is(toks[i], "*") && !is(toks[i], "/")) continue;

      bool lhs_duration = false;
      const Token& prev = toks[i - 1];
      if (prev.kind == Tok::kIdent) {
        lhs_duration = duration_names.contains(prev.text) && !float_names.contains(prev.text);
      } else if (is(prev, ")")) {
        const std::size_t open = match_backward(toks, i - 1);
        if (open < toks.size() && open > 0 && toks[open - 1].kind == Tok::kIdent) {
          const std::string_view callee = toks[open - 1].text;
          const std::size_t c = open - 1;
          if (callee.size() > 5 && callee.substr(callee.size() - 5) == "_time") {
            lhs_duration = true;
          } else if (callee == "retry_wait" || callee == "blocked_time") {
            lhs_duration = true;
          } else if (callee == "scaled" && c >= 1 &&
                     (is(toks[c - 1], ".") || is(toks[c - 1], "->"))) {
            lhs_duration = true;
          } else if (kFactories.contains(callee) && c >= 2 &&
                     is(toks[c - 1], "::") && is(toks[c - 2], "Duration")) {
            lhs_duration = true;
          }
        }
      }
      if (!lhs_duration) continue;

      const Token& next = toks[i + 1];
      bool rhs_float = false;
      if (next.kind == Tok::kNumber) {
        rhs_float = is_float_literal(next.text);
      } else if (next.kind == Tok::kIdent) {
        rhs_float = float_names.contains(next.text) ||
                    (is(next, "static_cast") && i + 3 < toks.size() &&
                     is(toks[i + 2], "<") &&
                     (is(toks[i + 3], "double") || is(toks[i + 3], "float")));
      }
      if (!rhs_float) continue;
      out.push_back({"duration-arithmetic", file.path, toks[i].line, toks[i].col,
                     std::string("Duration operator") + std::string(toks[i].text) +
                         " takes int64; a floating operand converts and "
                         "truncates silently — use Duration::scaled(k)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 5: ordered-emission
// ---------------------------------------------------------------------------

void rule_ordered_emission(const Context& ctx, std::vector<Finding>& out) {
  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  for (const SourceFile& file : *ctx.files) {
    const bool emission_path = under(file.path, "bench") ||
                               under(file.path, "src/obs") ||
                               under(file.path, "src/svc") ||
                               file.path.find("/obs/") != std::string::npos;
    if (!emission_path) continue;
    for (const Token& t : file.tokens) {
      if (t.kind != Tok::kIdent || !kUnordered.contains(t.text)) continue;
      out.push_back({"ordered-emission", file.path, t.line, t.col,
                     "std::" + std::string(t.text) +
                         " in an emission path: iteration order is "
                         "implementation-defined and would break byte-identical "
                         "artifacts — use std::map/std::set or sort first"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 6: bucket-partition-registration
// ---------------------------------------------------------------------------

void rule_bucket_partition(const Context& ctx, std::vector<Finding>& out) {
  for (const SourceFile& file : *ctx.files) {
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || !is(toks[i], "buckets_to_json")) continue;
      if (!is(toks[i + 1], "(")) continue;
      const std::size_t close = match_forward(toks, i + 1);
      if (close + 1 >= toks.size() || !is(toks[close + 1], "{")) continue;

      // Definition found: collect every "<name>_s" string it emits.
      int depth = 0;
      for (std::size_t j = close + 1; j < toks.size(); ++j) {
        if (is(toks[j], "{")) ++depth;
        if (is(toks[j], "}") && --depth == 0) break;
        if (toks[j].kind != Tok::kString || toks[j].text.size() < 4) continue;
        const std::string key(toks[j].text.substr(1, toks[j].text.size() - 2));
        if (key.size() < 3 || key.substr(key.size() - 2) != "_s") continue;
        if (!ctx.partition_loaded) {
          out.push_back({"bucket-partition-registration", file.path, toks[j].line,
                         toks[j].col,
                         "attribution bucket \"" + key +
                             "\" cannot be cross-checked: no partition test "
                             "list found (expected " + ctx.partition_desc + ")"});
        } else if (ctx.partition_text.find(key) == std::string::npos) {
          out.push_back({"bucket-partition-registration", file.path, toks[j].line,
                         toks[j].col,
                         "attribution bucket \"" + key +
                             "\" is emitted but absent from the partition test "
                             "list (" + ctx.partition_desc +
                             "); register it so the exact-partition check "
                             "covers it"});
        }
      }
      break;  // one definition per tree is the convention
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      {"no-ambient-nondeterminism",
       "bans std::random_device, rand(), time(), wall clocks and raw engines "
       "outside util/rng.*",
       &rule_no_ambient_nondeterminism},
      {"unique-fork-tags",
       "Rng::fork stream-tag literals must be globally unique, reserved "
       "fault-domain tags stay with their owning file, and fault-domain "
       "forks must use literal tags",
       &rule_unique_fork_tags},
      {"one-door-storage",
       "chklib code must do blocking storage I/O through StorageClient, never "
       "StableStorage directly",
       &rule_one_door_storage},
      {"duration-arithmetic",
       "Duration * / with floating operands truncates silently; use "
       "Duration::scaled",
       &rule_duration_arithmetic},
      {"ordered-emission",
       "no std::unordered_* containers in trace/JSON/metrics emission paths "
       "(src/obs/, src/svc/, bench/)",
       &rule_ordered_emission},
      {"bucket-partition-registration",
       "every attribution bucket emitted by buckets_to_json must appear in the "
       "partition test list",
       &rule_bucket_partition},
  };
  return rules;
}

}  // namespace chk::lint
