// chklint — determinism-discipline static analyzer for the CHK-LIB tree.
//
//   chklint [--root=DIR] [--json=FILE] [--sarif=FILE] [--rule=NAME]...
//           [--partition-list=FILE]... [--list-rules] [-q] [paths...]
//
// Paths are files or directories relative to --root (default: src bench
// tests, whichever exist). Exit status: 0 clean, 1 findings, 2 usage or
// I/O error. All output is deterministic: files are scanned in sorted
// order and findings are reported sorted by path/line/col/rule, so two
// runs over the same tree produce byte-identical reports.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;
using chk::lint::Context;
using chk::lint::Finding;
using chk::lint::SourceFile;

namespace {

/// Directories never scanned: generated trees and the known-bad lint
/// fixtures (which exist to *fail* these rules).
const std::set<std::string> kSkipDirs = {"build", "third_party", ".git",
                                         "CMakeFiles", "chklint_fixtures"};
const std::set<std::string> kExtensions = {".cpp", ".hpp", ".h", ".cc", ".cxx", ".hh"};

struct Options {
  fs::path root = ".";
  std::vector<std::string> paths;
  std::vector<std::string> partition_lists;  // empty -> defaults
  std::set<std::string> only_rules;
  std::string json_out;
  std::string sarif_out;
  bool list_rules = false;
  bool quiet = false;
};

int usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "chklint: %s\n", msg);
  std::fprintf(stderr,
               "usage: chklint [--root=DIR] [--json=FILE] [--sarif=FILE]\n"
               "               [--rule=NAME]... [--partition-list=FILE]...\n"
               "               [--list-rules] [-q] [paths...]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // `--flag value` and `--flag=value` are both accepted.
    for (const char* flag : {"--root", "--json", "--sarif", "--rule", "--partition-list"}) {
      if (arg == flag && i + 1 < argc) {
        arg += std::string("=") + argv[++i];
        break;
      }
    }
    const auto value = [&](std::string_view prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--root=", 0) == 0) {
      opt.root = value("--root=");
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_out = value("--json=");
    } else if (arg.rfind("--sarif=", 0) == 0) {
      opt.sarif_out = value("--sarif=");
    } else if (arg.rfind("--rule=", 0) == 0) {
      opt.only_rules.insert(value("--rule="));
    } else if (arg.rfind("--partition-list=", 0) == 0) {
      opt.partition_lists.push_back(value("--partition-list="));
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "-q" || arg == "--quiet") {
      opt.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opt.paths.push_back(arg);
    }
  }
  return true;
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) rel = p;
  return rel.generic_string();
}

/// Collect scan files under `p` (file or directory), sorted later.
void collect(const fs::path& p, const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(p)) {
    out.push_back(p);
    return;
  }
  if (!fs::is_directory(p)) return;
  for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
    if (it->is_directory()) {
      if (kSkipDirs.contains(it->path().filename().string())) it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file()) continue;
    if (kExtensions.contains(it->path().extension().string())) out.push_back(it->path());
  }
  (void)root;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_report(const std::vector<Finding>& findings, std::size_t files) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"chklint\",\n  \"version\": \"1.0\",\n"
      << "  \"files_scanned\": " << files << ",\n"
      << "  \"finding_count\": " << findings.size() << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"path\": \""
        << json_escape(f.path) << "\", \"line\": " << f.line
        << ", \"col\": " << f.col << ", \"message\": \"" << json_escape(f.message)
        << "\"}";
  }
  out << (findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

std::string sarif_report(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [{\n    \"tool\": {\"driver\": {\"name\": \"chklint\", "
         "\"rules\": [";
  const auto& rules = chk::lint::all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "      {\"id\": \"" << rules[i].name
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(std::string(rules[i].summary))
        << "\"}}";
  }
  out << "\n    ]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.path)
        << "\"}, \"region\": {\"startLine\": " << f.line
        << ", \"startColumn\": " << f.col << "}}}]}";
  }
  out << (findings.empty() ? "]\n  }]\n}\n" : "\n    ]\n  }]\n}\n");
  return out.str();
}

bool write_report(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage("unknown option");

  if (opt.list_rules) {
    for (const auto& rule : chk::lint::all_rules())
      std::printf("%-32s %s\n", std::string(rule.name).c_str(),
                  std::string(rule.summary).c_str());
    return 0;
  }
  for (const auto& name : opt.only_rules) {
    const auto& rules = chk::lint::all_rules();
    if (std::none_of(rules.begin(), rules.end(),
                     [&](const auto& r) { return r.name == name; }))
      return usage(("unknown rule: " + name).c_str());
  }

  std::error_code ec;
  const fs::path root = fs::canonical(opt.root, ec);
  if (ec) return usage(("bad --root: " + opt.root.string()).c_str());

  if (opt.paths.empty()) {
    for (const char* dir : {"src", "bench", "tests"})
      if (fs::is_directory(root / dir)) opt.paths.push_back(dir);
  }
  if (opt.paths.empty()) return usage("nothing to scan under --root");

  std::vector<fs::path> files;
  for (const std::string& p : opt.paths) {
    const fs::path abs = root / p;
    if (!fs::exists(abs)) return usage(("no such path: " + p).c_str());
    collect(abs, root, files);
  }
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& p : files) {
    SourceFile sf;
    sf.path = to_rel(p, root);
    if (!read_file(p, sf.content)) return usage(("cannot read: " + sf.path).c_str());
    sources.push_back(std::move(sf));
  }
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });
  sources.erase(std::unique(sources.begin(), sources.end(),
                            [](const SourceFile& a, const SourceFile& b) {
                              return a.path == b.path;
                            }),
                sources.end());
  for (SourceFile& sf : sources) chk::lint::lex(sf);

  // Partition test list for bucket-partition-registration.
  Context ctx;
  ctx.files = &sources;
  std::vector<std::string> partition_files = opt.partition_lists;
  if (partition_files.empty())
    partition_files = {".github/workflows/ci.yml", "tests/obs_test.cpp"};
  std::string desc;
  for (const std::string& p : partition_files) {
    std::string text;
    if (!read_file(root / p, text)) continue;
    ctx.partition_text += text;
    ctx.partition_loaded = true;
    desc += (desc.empty() ? "" : " + ") + p;
  }
  ctx.partition_desc = desc.empty() ? "none of the configured list files exist" : desc;

  std::vector<Finding> findings;
  for (const auto& rule : chk::lint::all_rules()) {
    if (!opt.only_rules.empty() && !opt.only_rules.contains(std::string(rule.name)))
      continue;
    rule.run(ctx, findings);
  }

  // Apply chklint:allow suppressions, then sort for a stable report.
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    const auto it = std::find_if(sources.begin(), sources.end(),
                                 [&](const SourceFile& s) { return s.path == f.path; });
    if (it != sources.end() && it->allows(f.rule, f.line)) continue;
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return !(a < b) && !(b < a);
                         }),
             kept.end());

  if (!opt.quiet) {
    for (const Finding& f : kept)
      std::printf("%s:%u:%u: [%s] %s\n", f.path.c_str(), f.line, f.col,
                  f.rule.c_str(), f.message.c_str());
    std::printf("chklint: %zu finding(s) across %zu file(s)\n", kept.size(),
                sources.size());
  }
  if (!opt.json_out.empty() &&
      !write_report(opt.json_out, json_report(kept, sources.size())))
    return usage(("cannot write: " + opt.json_out).c_str());
  if (!opt.sarif_out.empty() && !write_report(opt.sarif_out, sarif_report(kept)))
    return usage(("cannot write: " + opt.sarif_out).c_str());

  return kept.empty() ? 0 : 1;
}
