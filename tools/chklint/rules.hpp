// chklint rule registry.
//
// Each rule is a pure function over the lexed tree: it appends Finding
// records and never mutates the sources. Suppression (`chklint:allow`) is
// applied by the driver after all rules ran, so rules stay oblivious to it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace chk::lint {

struct Finding {
  std::string rule;
  std::string path;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string message;

  /// Deterministic report order: path, then line/col, then rule/message.
  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  }
};

struct Context {
  const std::vector<SourceFile>* files = nullptr;
  /// Concatenated text of the partition-list files (ci.yml + obs test by
  /// default) that every attribution bucket key must appear in.
  std::string partition_text;
  /// Human-readable description of where partition_text came from.
  std::string partition_desc;
  /// True when at least one partition-list file was actually read.
  bool partition_loaded = false;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
  void (*run)(const Context&, std::vector<Finding>&);
};

/// All registered rules, in stable registration order.
const std::vector<RuleInfo>& all_rules();

}  // namespace chk::lint
