// The domino effect, demonstrated.
//
// Independent checkpointing saves each process on its own jittered timer.
// For a tightly coupled application (the SOR stencil: halo exchanges every
// iteration) the strict recovery line — the newest set of checkpoints with
// no message crossing it — collapses all the way to the initial state: the
// checkpoints were useless. A loosely coupled application (NQUEENS: no
// communication until the final reduction) keeps its newest checkpoints.
//
//   ./domino_effect [--fail-at-frac=0.8]
#include <cstdio>

#include "apps/nqueens.hpp"
#include "apps/sor.hpp"
#include "harness/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;

harness::ExperimentResult run_case(const char* label, chklib::AppFn app, double fail_frac,
                                   bool verify) {
  harness::ExperimentConfig config;
  config.label = label;
  config.app = std::move(app);
  config.verify = verify;
  const auto normal = harness::run_normal(config);
  config.scheme = harness::Scheme::kIndep;
  config.checkpoints = 3;
  config.interval = des::Duration::seconds(normal.exec_time_s / 4.0);
  config.recovery_mode = chklib::LineMode::kStrict;
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * fail_frac), 2};
  return harness::run_experiment(config);
}

void describe(const char* label, const harness::ExperimentResult& result) {
  const auto& report = result.recoveries.front();
  util::Table table({"rank", "newest ckpt", "restored ckpt", "rollback"});
  for (std::size_t r = 0; r < report.line.index.size(); ++r) {
    table.add_row({util::Table::integer(static_cast<long long>(r)),
                   util::Table::integer(report.line.index[r] + report.domino_depth[r]),
                   util::Table::integer(report.line.index[r]),
                   util::Table::seconds(report.rollback_distance[r].to_seconds())});
  }
  std::fputs(table.render(std::string(label) +
                          (report.rolled_to_origin
                               ? "  ->  DOMINO: rolled back to the initial state"
                               : "  ->  recovery line held"))
                 .c_str(),
             stdout);
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double fail_frac = cli.get_double("fail-at-frac", 0.8);
  const bool verify = util::verify_requested(cli);

  std::puts("Tightly coupled (SOR, halo exchange every iteration):");
  const auto sor =
      run_case("SOR", apps::make_sor({.n = 128, .iterations = 120}), fail_frac, verify);
  describe("SOR + Indep, strict line", sor);

  std::puts("Loosely coupled (NQUEENS, no communication until the end):");
  const auto nq = run_case("NQUEENS", apps::make_nqueens({.n = 11}), fail_frac, verify);
  describe("NQUEENS + Indep, strict line", nq);

  const bool ok = sor.recoveries.front().rolled_to_origin &&
                  !nq.recoveries.front().rolled_to_origin;
  std::puts(ok ? "Domino observed exactly where the theory predicts."
               : "NOTE: rollback pattern differs from the typical outcome for these sizes.");
  return 0;
}
