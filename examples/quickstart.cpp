// Quickstart: run one of the paper's benchmarks (SOR) under the best
// coordinated scheme (Coord_NBMS: non-blocking, main-memory buffered,
// staggered) and print the failure-free overhead breakdown.
//
//   ./quickstart [--scheme=Coord_NBMS] [--n=512] [--iters=100]
//                [--interval-s=30] [--checkpoints=3] [--nodes=8] [--verify]
//                [--trace-out=<file>] [--metrics-out=<file>]
//
// --trace-out attaches the obs tracer and writes the run as Chrome/Perfetto
// trace JSON (load with ui.perfetto.dev); --metrics-out writes the metrics
// snapshot and the per-rank overhead attribution. Observation never changes
// the simulation: the trace hash is identical with these flags on or off.
#include <cstdio>

#include "apps/sor.hpp"
#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace chk;
  const util::Cli cli(argc, argv);

  harness::ExperimentConfig config;
  config.label = "SOR";
  config.app = apps::make_sor({
      .n = static_cast<std::size_t>(cli.get_int("n", 512)),
      .iterations = static_cast<std::uint32_t>(cli.get_int("iters", 100)),
  });
  config.scheme = chklib::scheme_from_string(cli.get("scheme", "Coord_NBMS"));
  config.checkpoints = static_cast<std::uint32_t>(cli.get_int("checkpoints", 3));
  config.machine.num_nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  config.verify = util::verify_requested(cli);
  config.observe = cli.has("trace-out") || cli.has("metrics-out");

  std::printf("Running %s on %zu simulated T805 nodes...\n", config.label.c_str(),
              config.machine.num_nodes);
  const auto normal = harness::run_normal(config);
  // Default interval: a quarter of the failure-free run, so the requested
  // checkpoints comfortably fit (the paper used per-application intervals).
  config.interval = des::Duration::seconds(
      cli.has("interval-s") ? cli.get_double("interval-s", 30.0)
                            : normal.exec_time_s / (config.checkpoints + 1.0));
  const auto result = harness::run_experiment(config);

  util::Table table({"metric", "value"});
  table.add_row({"scheme", std::string(to_string(config.scheme))});
  table.add_row({"normal execution", util::Table::seconds(normal.exec_time_s)});
  table.add_row({"with checkpointing", util::Table::seconds(result.exec_time_s)});
  table.add_row({"overhead", util::Table::percent(
                                 result.exec_time_s / normal.exec_time_s - 1.0, 2)});
  table.add_row({"checkpoints taken", util::Table::integer(
                                          static_cast<long long>(result.local_checkpoints))});
  table.add_row({"app blocked (all ranks)", util::Table::seconds(result.app_blocked_s)});
  table.add_row({"sync (control) messages", util::Table::integer(
                                                static_cast<long long>(result.control_messages))});
  table.add_row({"sync (control) bytes", util::Table::bytes(
                                              static_cast<double>(result.control_bytes))});
  table.add_row({"checkpoint bytes written", util::Table::bytes(
                                                 static_cast<double>(result.bytes_written))});
  table.add_row({"peak stable storage", util::Table::bytes(
                                            static_cast<double>(result.peak_storage_bytes))});
  table.add_row({"disk queueing time", util::Table::seconds(result.disk_wait_s)});
  if (result.obs) {
    const obs::RankBuckets& attributed = result.obs->attribution.total;
    table.add_row({"  sync wait", util::Table::seconds(attributed.sync_wait_s)});
    table.add_row({"  memory copy", util::Table::seconds(attributed.mem_copy_s)});
    table.add_row({"  stable write", util::Table::seconds(attributed.stable_write_s)});
    table.add_row({"  storage contention",
                   util::Table::seconds(attributed.storage_contention_s)});
    table.add_row({"  logging", util::Table::seconds(attributed.logging_s)});
    table.add_row({"  frozen stalls", util::Table::seconds(attributed.frozen_stall_s)});
    table.add_row({"  CPU interference", util::Table::seconds(attributed.interference_s)});
  }
  table.add_row({"result digest", util::Table::fixed(result.digest.value_or(0.0), 0)});
  if (config.verify) {
    table.add_row({"invariant checks", util::Table::integer(
                                           static_cast<long long>(result.invariant_checks))});
    table.add_row({"invariant violations",
                   util::Table::integer(static_cast<long long>(result.invariant_violations))});
  }
  std::fputs(table.render("CHK-LIB quickstart").c_str(), stdout);

  if (result.obs) {
    if (cli.has("trace-out")) {
      const std::string path = cli.get("trace-out", "trace.json");
      obs::write_text_file(
          path,
          obs::to_chrome_trace(result.obs->trace, config.machine.num_nodes).dump());
      std::printf("Wrote %s (%zu events; open with ui.perfetto.dev)\n", path.c_str(),
                  result.obs->trace.events.size());
    }
    if (cli.has("metrics-out")) {
      using obs::json::Value;
      Value doc = Value::object();
      doc.set("scheme", Value::string(std::string(to_string(config.scheme))));
      doc.set("metrics", obs::metrics_to_json(result.obs->metrics));
      doc.set("attribution", obs::attribution_to_json(result.obs->attribution));
      const std::string path = cli.get("metrics-out", "metrics.json");
      obs::write_text_file(path, doc.dump() + "\n");
      std::printf("Wrote %s\n", path.c_str());
    }
  }

  if (result.digest != normal.digest) {
    std::fputs("ERROR: checkpointing changed the application result!\n", stderr);
    return 1;
  }
  std::puts("Result verified: identical to the run without checkpointing.");
  return 0;
}
