// Writing your own checkpointable application against the CHK-LIB API.
//
// The application below estimates pi by a distributed midpoint rule. It
// shows the full authoring pattern:
//   * persistent state via ctx.state<T>() (survives rollback restarts),
//   * (re)initialization guarded by ctx.fresh(),
//   * state registration + ctx.ready(),
//   * ctx.checkpoint_here() at the top of the main loop (the safe point),
//   * modelled computation via ctx.compute(flops),
//   * communication and a final reduction.
//
//   ./custom_app [--scheme=Coord_NBM] [--slices=2000000] [--chunks=50]
#include <cstdio>

#include "harness/experiment.hpp"
#include "util/cli.hpp"

namespace {

using namespace chk;
using chklib::AppContext;

struct PiState {
  std::uint32_t chunk = 0;
  double partial = 0.0;
};

chklib::AppFn make_pi_app(std::uint64_t slices, std::uint32_t chunks) {
  return [slices, chunks](AppContext& ctx) {
    auto& st = ctx.state<PiState>();
    if (ctx.fresh()) st = PiState{};
    ctx.register_value("chunk", st.chunk);
    ctx.register_value("partial", st.partial);
    ctx.ready();

    // Interleaved slice ownership: rank r integrates slices r, r+P, ...
    const double h = 1.0 / static_cast<double>(slices);
    for (; st.chunk < chunks; ++st.chunk) {
      ctx.checkpoint_here();  // safe point: state fully describes progress
      const std::uint64_t begin = slices * st.chunk / chunks;
      const std::uint64_t end = slices * (st.chunk + 1) / chunks;
      double acc = 0.0;
      std::uint64_t mine = 0;
      for (std::uint64_t i = begin + ctx.rank(); i < end; i += ctx.nprocs()) {
        const double x = (static_cast<double>(i) + 0.5) * h;
        acc += 4.0 / (1.0 + x * x);
        ++mine;
      }
      ctx.compute(static_cast<double>(mine) * 6.0);  // 6 flops per slice
      st.partial += acc * h;
    }

    const double pi = ctx.allreduce_sum(st.partial);
    if (ctx.rank() == 0) ctx.report_result(pi);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  harness::ExperimentConfig config;
  config.label = "PI";
  config.app = make_pi_app(static_cast<std::uint64_t>(cli.get_int("slices", 2'000'000)),
                           static_cast<std::uint32_t>(cli.get_int("chunks", 50)));
  config.scheme = chklib::scheme_from_string(cli.get("scheme", "Coord_NBM"));
  config.verify = util::verify_requested(cli);

  const auto normal = harness::run_normal(config);
  config.interval = des::Duration::seconds(normal.exec_time_s / 4.0);

  // Also survive a failure, for good measure.
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * 0.5), 1};
  config.checkpoints = 0;
  const auto result = harness::run_experiment(config);

  std::printf("pi = %.12f (failure-free %.12f)\n", result.digest.value(),
              normal.digest.value());
  std::printf("normal %.2f s; with %s + one failure %.2f s; %zu recovery\n",
              normal.exec_time_s, std::string(to_string(config.scheme)).c_str(),
              result.exec_time_s, result.recoveries.size());
  if (result.digest != normal.digest) {
    std::fputs("ERROR: results differ\n", stderr);
    return 1;
  }
  std::puts("Recovered result identical. This is the whole authoring contract.");
  return 0;
}
