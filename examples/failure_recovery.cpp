// Failure injection and rollback recovery, end to end.
//
// Runs the ASP benchmark with coordinated checkpointing, crashes a node
// mid-run, recovers from the last committed global checkpoint, and shows
// that the recomputed result is bit-identical to a failure-free run.
//
//   ./failure_recovery [--fail-at-frac=0.6] [--fail-rank=3] [--n=256] [--verify]
#include <cstdio>

#include "apps/asp.hpp"
#include "harness/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace chk;
  const util::Cli cli(argc, argv);
  const double fail_frac = cli.get_double("fail-at-frac", 0.6);
  const auto fail_rank = static_cast<chklib::Rank>(cli.get_int("fail-rank", 3));

  harness::ExperimentConfig config;
  config.label = "ASP";
  config.app = apps::make_asp({.n = static_cast<std::size_t>(cli.get_int("n", 256))});
  config.scheme = harness::Scheme::kCoordNB;
  config.checkpoints = 0;  // periodic until the run completes
  config.verify = util::verify_requested(cli);

  const auto normal = harness::run_normal(config);
  config.interval = des::Duration::seconds(normal.exec_time_s / 5.0);
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * fail_frac),
      fail_rank};

  std::printf("Failure-free run: %.2f s (digest %.0f)\n", normal.exec_time_s,
              normal.digest.value());
  std::printf("Crashing node %zu at t=%.2f s ...\n", std::size_t{fail_rank},
              normal.exec_time_s * fail_frac);

  const auto result = harness::run_experiment(config);
  if (result.recoveries.empty()) {
    std::fputs("no recovery happened (failure scheduled after completion?)\n", stderr);
    return 1;
  }
  const auto& report = result.recoveries.front();

  util::Table table({"metric", "value"});
  table.add_row({"failed at", util::Table::seconds(report.failed_at.to_seconds())});
  table.add_row({"committed epoch restored",
                 util::Table::integer(report.line.index[fail_rank])});
  table.add_row({"recovery latency (reads)", util::Table::seconds(
                                                 report.recovery_latency.to_seconds())});
  table.add_row({"rollback distance (failed rank)",
                 util::Table::seconds(report.rollback_distance[fail_rank].to_seconds())});
  table.add_row({"state bytes re-read", util::Table::bytes(
                                            static_cast<double>(report.bytes_read))});
  table.add_row({"channel messages replayed",
                 util::Table::integer(static_cast<long long>(report.channel_messages_replayed))});
  table.add_row({"total run time", util::Table::seconds(result.exec_time_s)});
  table.add_row({"vs failure-free", util::Table::percent(
                                        result.exec_time_s / normal.exec_time_s - 1.0, 1)});
  std::fputs(table.render("Coordinated rollback recovery").c_str(), stdout);

  if (result.digest != normal.digest) {
    std::fputs("ERROR: recovered run computed a different result!\n", stderr);
    return 1;
  }
  std::puts("Recovered result verified: bit-identical to the failure-free run.");
  return 0;
}
