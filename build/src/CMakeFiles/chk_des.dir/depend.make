# Empty dependencies file for chk_des.
# This may be replaced when dependencies are built.
