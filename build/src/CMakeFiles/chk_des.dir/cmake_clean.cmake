file(REMOVE_RECURSE
  "CMakeFiles/chk_des.dir/des/simulator.cpp.o"
  "CMakeFiles/chk_des.dir/des/simulator.cpp.o.d"
  "CMakeFiles/chk_des.dir/des/sync.cpp.o"
  "CMakeFiles/chk_des.dir/des/sync.cpp.o.d"
  "libchk_des.a"
  "libchk_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chk_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
