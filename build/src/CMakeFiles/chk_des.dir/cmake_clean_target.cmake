file(REMOVE_RECURSE
  "libchk_des.a"
)
