file(REMOVE_RECURSE
  "CMakeFiles/chk_xplorer.dir/xplorer/fifo_server.cpp.o"
  "CMakeFiles/chk_xplorer.dir/xplorer/fifo_server.cpp.o.d"
  "CMakeFiles/chk_xplorer.dir/xplorer/network.cpp.o"
  "CMakeFiles/chk_xplorer.dir/xplorer/network.cpp.o.d"
  "CMakeFiles/chk_xplorer.dir/xplorer/node.cpp.o"
  "CMakeFiles/chk_xplorer.dir/xplorer/node.cpp.o.d"
  "CMakeFiles/chk_xplorer.dir/xplorer/storage.cpp.o"
  "CMakeFiles/chk_xplorer.dir/xplorer/storage.cpp.o.d"
  "CMakeFiles/chk_xplorer.dir/xplorer/topology.cpp.o"
  "CMakeFiles/chk_xplorer.dir/xplorer/topology.cpp.o.d"
  "libchk_xplorer.a"
  "libchk_xplorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chk_xplorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
