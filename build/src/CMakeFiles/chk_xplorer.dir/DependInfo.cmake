
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xplorer/fifo_server.cpp" "src/CMakeFiles/chk_xplorer.dir/xplorer/fifo_server.cpp.o" "gcc" "src/CMakeFiles/chk_xplorer.dir/xplorer/fifo_server.cpp.o.d"
  "/root/repo/src/xplorer/network.cpp" "src/CMakeFiles/chk_xplorer.dir/xplorer/network.cpp.o" "gcc" "src/CMakeFiles/chk_xplorer.dir/xplorer/network.cpp.o.d"
  "/root/repo/src/xplorer/node.cpp" "src/CMakeFiles/chk_xplorer.dir/xplorer/node.cpp.o" "gcc" "src/CMakeFiles/chk_xplorer.dir/xplorer/node.cpp.o.d"
  "/root/repo/src/xplorer/storage.cpp" "src/CMakeFiles/chk_xplorer.dir/xplorer/storage.cpp.o" "gcc" "src/CMakeFiles/chk_xplorer.dir/xplorer/storage.cpp.o.d"
  "/root/repo/src/xplorer/topology.cpp" "src/CMakeFiles/chk_xplorer.dir/xplorer/topology.cpp.o" "gcc" "src/CMakeFiles/chk_xplorer.dir/xplorer/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chk_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
