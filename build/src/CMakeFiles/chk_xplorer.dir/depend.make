# Empty dependencies file for chk_xplorer.
# This may be replaced when dependencies are built.
