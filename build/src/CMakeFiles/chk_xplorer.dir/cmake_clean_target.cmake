file(REMOVE_RECURSE
  "libchk_xplorer.a"
)
