file(REMOVE_RECURSE
  "libchklib.a"
)
