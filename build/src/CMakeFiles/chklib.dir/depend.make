# Empty dependencies file for chklib.
# This may be replaced when dependencies are built.
