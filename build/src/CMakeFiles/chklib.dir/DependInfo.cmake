
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chklib/ckpt/image.cpp" "src/CMakeFiles/chklib.dir/chklib/ckpt/image.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/ckpt/image.cpp.o.d"
  "/root/repo/src/chklib/ckpt/incremental.cpp" "src/CMakeFiles/chklib.dir/chklib/ckpt/incremental.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/ckpt/incremental.cpp.o.d"
  "/root/repo/src/chklib/ckpt/registry.cpp" "src/CMakeFiles/chklib.dir/chklib/ckpt/registry.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/ckpt/registry.cpp.o.d"
  "/root/repo/src/chklib/ckpt/store.cpp" "src/CMakeFiles/chklib.dir/chklib/ckpt/store.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/ckpt/store.cpp.o.d"
  "/root/repo/src/chklib/comm/comm_system.cpp" "src/CMakeFiles/chklib.dir/chklib/comm/comm_system.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/comm/comm_system.cpp.o.d"
  "/root/repo/src/chklib/comm/endpoint.cpp" "src/CMakeFiles/chklib.dir/chklib/comm/endpoint.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/comm/endpoint.cpp.o.d"
  "/root/repo/src/chklib/proto/coordinated.cpp" "src/CMakeFiles/chklib.dir/chklib/proto/coordinated.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/proto/coordinated.cpp.o.d"
  "/root/repo/src/chklib/proto/independent.cpp" "src/CMakeFiles/chklib.dir/chklib/proto/independent.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/proto/independent.cpp.o.d"
  "/root/repo/src/chklib/proto/protocol.cpp" "src/CMakeFiles/chklib.dir/chklib/proto/protocol.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/proto/protocol.cpp.o.d"
  "/root/repo/src/chklib/proto/scheme.cpp" "src/CMakeFiles/chklib.dir/chklib/proto/scheme.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/proto/scheme.cpp.o.d"
  "/root/repo/src/chklib/recovery/line.cpp" "src/CMakeFiles/chklib.dir/chklib/recovery/line.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/recovery/line.cpp.o.d"
  "/root/repo/src/chklib/recovery/manager.cpp" "src/CMakeFiles/chklib.dir/chklib/recovery/manager.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/recovery/manager.cpp.o.d"
  "/root/repo/src/chklib/runtime.cpp" "src/CMakeFiles/chklib.dir/chklib/runtime.cpp.o" "gcc" "src/CMakeFiles/chklib.dir/chklib/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chk_xplorer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
