file(REMOVE_RECURSE
  "CMakeFiles/chklib.dir/chklib/ckpt/image.cpp.o"
  "CMakeFiles/chklib.dir/chklib/ckpt/image.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/ckpt/incremental.cpp.o"
  "CMakeFiles/chklib.dir/chklib/ckpt/incremental.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/ckpt/registry.cpp.o"
  "CMakeFiles/chklib.dir/chklib/ckpt/registry.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/ckpt/store.cpp.o"
  "CMakeFiles/chklib.dir/chklib/ckpt/store.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/comm/comm_system.cpp.o"
  "CMakeFiles/chklib.dir/chklib/comm/comm_system.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/comm/endpoint.cpp.o"
  "CMakeFiles/chklib.dir/chklib/comm/endpoint.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/proto/coordinated.cpp.o"
  "CMakeFiles/chklib.dir/chklib/proto/coordinated.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/proto/independent.cpp.o"
  "CMakeFiles/chklib.dir/chklib/proto/independent.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/proto/protocol.cpp.o"
  "CMakeFiles/chklib.dir/chklib/proto/protocol.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/proto/scheme.cpp.o"
  "CMakeFiles/chklib.dir/chklib/proto/scheme.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/recovery/line.cpp.o"
  "CMakeFiles/chklib.dir/chklib/recovery/line.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/recovery/manager.cpp.o"
  "CMakeFiles/chklib.dir/chklib/recovery/manager.cpp.o.d"
  "CMakeFiles/chklib.dir/chklib/runtime.cpp.o"
  "CMakeFiles/chklib.dir/chklib/runtime.cpp.o.d"
  "libchklib.a"
  "libchklib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chklib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
