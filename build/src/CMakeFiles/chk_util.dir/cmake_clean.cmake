file(REMOVE_RECURSE
  "CMakeFiles/chk_util.dir/util/cli.cpp.o"
  "CMakeFiles/chk_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/chk_util.dir/util/logging.cpp.o"
  "CMakeFiles/chk_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/chk_util.dir/util/rng.cpp.o"
  "CMakeFiles/chk_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/chk_util.dir/util/table.cpp.o"
  "CMakeFiles/chk_util.dir/util/table.cpp.o.d"
  "libchk_util.a"
  "libchk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
