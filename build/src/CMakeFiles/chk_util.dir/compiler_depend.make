# Empty compiler generated dependencies file for chk_util.
# This may be replaced when dependencies are built.
