file(REMOVE_RECURSE
  "libchk_util.a"
)
