file(REMOVE_RECURSE
  "libchk_harness.a"
)
