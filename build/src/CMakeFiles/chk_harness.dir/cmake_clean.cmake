file(REMOVE_RECURSE
  "CMakeFiles/chk_harness.dir/harness/catalog.cpp.o"
  "CMakeFiles/chk_harness.dir/harness/catalog.cpp.o.d"
  "CMakeFiles/chk_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/chk_harness.dir/harness/experiment.cpp.o.d"
  "libchk_harness.a"
  "libchk_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chk_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
