# Empty compiler generated dependencies file for chk_harness.
# This may be replaced when dependencies are built.
