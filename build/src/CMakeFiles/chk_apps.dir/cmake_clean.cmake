file(REMOVE_RECURSE
  "CMakeFiles/chk_apps.dir/apps/asp.cpp.o"
  "CMakeFiles/chk_apps.dir/apps/asp.cpp.o.d"
  "CMakeFiles/chk_apps.dir/apps/gauss.cpp.o"
  "CMakeFiles/chk_apps.dir/apps/gauss.cpp.o.d"
  "CMakeFiles/chk_apps.dir/apps/ising.cpp.o"
  "CMakeFiles/chk_apps.dir/apps/ising.cpp.o.d"
  "CMakeFiles/chk_apps.dir/apps/nbody.cpp.o"
  "CMakeFiles/chk_apps.dir/apps/nbody.cpp.o.d"
  "CMakeFiles/chk_apps.dir/apps/nqueens.cpp.o"
  "CMakeFiles/chk_apps.dir/apps/nqueens.cpp.o.d"
  "CMakeFiles/chk_apps.dir/apps/sor.cpp.o"
  "CMakeFiles/chk_apps.dir/apps/sor.cpp.o.d"
  "CMakeFiles/chk_apps.dir/apps/tsp.cpp.o"
  "CMakeFiles/chk_apps.dir/apps/tsp.cpp.o.d"
  "libchk_apps.a"
  "libchk_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chk_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
