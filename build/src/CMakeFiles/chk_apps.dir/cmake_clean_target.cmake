file(REMOVE_RECURSE
  "libchk_apps.a"
)
