# Empty compiler generated dependencies file for chk_apps.
# This may be replaced when dependencies are built.
