
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/asp.cpp" "src/CMakeFiles/chk_apps.dir/apps/asp.cpp.o" "gcc" "src/CMakeFiles/chk_apps.dir/apps/asp.cpp.o.d"
  "/root/repo/src/apps/gauss.cpp" "src/CMakeFiles/chk_apps.dir/apps/gauss.cpp.o" "gcc" "src/CMakeFiles/chk_apps.dir/apps/gauss.cpp.o.d"
  "/root/repo/src/apps/ising.cpp" "src/CMakeFiles/chk_apps.dir/apps/ising.cpp.o" "gcc" "src/CMakeFiles/chk_apps.dir/apps/ising.cpp.o.d"
  "/root/repo/src/apps/nbody.cpp" "src/CMakeFiles/chk_apps.dir/apps/nbody.cpp.o" "gcc" "src/CMakeFiles/chk_apps.dir/apps/nbody.cpp.o.d"
  "/root/repo/src/apps/nqueens.cpp" "src/CMakeFiles/chk_apps.dir/apps/nqueens.cpp.o" "gcc" "src/CMakeFiles/chk_apps.dir/apps/nqueens.cpp.o.d"
  "/root/repo/src/apps/sor.cpp" "src/CMakeFiles/chk_apps.dir/apps/sor.cpp.o" "gcc" "src/CMakeFiles/chk_apps.dir/apps/sor.cpp.o.d"
  "/root/repo/src/apps/tsp.cpp" "src/CMakeFiles/chk_apps.dir/apps/tsp.cpp.o" "gcc" "src/CMakeFiles/chk_apps.dir/apps/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chklib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_xplorer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
