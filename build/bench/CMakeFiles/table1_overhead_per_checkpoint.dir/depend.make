# Empty dependencies file for table1_overhead_per_checkpoint.
# This may be replaced when dependencies are built.
