file(REMOVE_RECURSE
  "CMakeFiles/table1_overhead_per_checkpoint.dir/table1_overhead_per_checkpoint.cpp.o"
  "CMakeFiles/table1_overhead_per_checkpoint.dir/table1_overhead_per_checkpoint.cpp.o.d"
  "table1_overhead_per_checkpoint"
  "table1_overhead_per_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_overhead_per_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
