# Empty dependencies file for table3_overhead_percent.
# This may be replaced when dependencies are built.
