file(REMOVE_RECURSE
  "CMakeFiles/table3_overhead_percent.dir/table3_overhead_percent.cpp.o"
  "CMakeFiles/table3_overhead_percent.dir/table3_overhead_percent.cpp.o.d"
  "table3_overhead_percent"
  "table3_overhead_percent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_overhead_percent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
