file(REMOVE_RECURSE
  "CMakeFiles/chk_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/chk_bench_common.dir/bench_common.cpp.o.d"
  "libchk_bench_common.a"
  "libchk_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chk_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
