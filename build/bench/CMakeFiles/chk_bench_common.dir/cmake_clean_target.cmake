file(REMOVE_RECURSE
  "libchk_bench_common.a"
)
