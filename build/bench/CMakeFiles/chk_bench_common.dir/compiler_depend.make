# Empty compiler generated dependencies file for chk_bench_common.
# This may be replaced when dependencies are built.
