file(REMOVE_RECURSE
  "CMakeFiles/recovery_rollback.dir/recovery_rollback.cpp.o"
  "CMakeFiles/recovery_rollback.dir/recovery_rollback.cpp.o.d"
  "recovery_rollback"
  "recovery_rollback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_rollback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
