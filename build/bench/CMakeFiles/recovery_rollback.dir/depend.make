# Empty dependencies file for recovery_rollback.
# This may be replaced when dependencies are built.
