
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_incremental.cpp" "bench/CMakeFiles/ablation_incremental.dir/ablation_incremental.cpp.o" "gcc" "bench/CMakeFiles/ablation_incremental.dir/ablation_incremental.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/chk_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chklib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_xplorer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
