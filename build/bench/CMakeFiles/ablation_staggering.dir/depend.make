# Empty dependencies file for ablation_staggering.
# This may be replaced when dependencies are built.
