file(REMOVE_RECURSE
  "CMakeFiles/ablation_staggering.dir/ablation_staggering.cpp.o"
  "CMakeFiles/ablation_staggering.dir/ablation_staggering.cpp.o.d"
  "ablation_staggering"
  "ablation_staggering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_staggering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
