# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/xplorer_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_test[1]_include.cmake")
include("/root/repo/build/tests/line_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
