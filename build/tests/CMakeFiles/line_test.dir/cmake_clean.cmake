file(REMOVE_RECURSE
  "CMakeFiles/line_test.dir/line_test.cpp.o"
  "CMakeFiles/line_test.dir/line_test.cpp.o.d"
  "line_test"
  "line_test.pdb"
  "line_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
