# Empty dependencies file for xplorer_test.
# This may be replaced when dependencies are built.
