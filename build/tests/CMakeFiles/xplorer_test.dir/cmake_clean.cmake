file(REMOVE_RECURSE
  "CMakeFiles/xplorer_test.dir/xplorer_test.cpp.o"
  "CMakeFiles/xplorer_test.dir/xplorer_test.cpp.o.d"
  "xplorer_test"
  "xplorer_test.pdb"
  "xplorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
