// Ablation: where does coordinated checkpointing's overhead come from?
//
// The paper's central conclusion: "the overhead for synchronizing the
// processes in a coordinated checkpoint is not a relevant factor... the
// major contribution is the checkpoint saving operation". We isolate the
// synchronization cost by re-running Coord_NB on a machine whose stable
// storage is (nearly) free — what remains is protocol synchronization —
// and sweep the node count to show it stays negligible as the machine
// grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/sor.hpp"
#include "bench_common.hpp"

namespace chk::bench {
namespace {

xplorer::MachineConfig free_storage_machine(std::size_t nodes) {
  auto machine = xplorer::MachineConfig::parsytec_xplorer();
  machine.num_nodes = nodes;
  machine.disk.bandwidth = 1e15;
  machine.disk.latency = des::Duration::zero();
  machine.host_link.bandwidth = 1e15;
  machine.host_link.latency = des::Duration::zero();
  machine.node.mem_copy_bw = 1e15;
  machine.node.background_io_cpu_steal = 0.0;
  return machine;
}

ExperimentConfig sor_config(std::size_t nodes, Scheme scheme, bool free_storage,
                            double interval_s) {
  ExperimentConfig config;
  config.label = util::format("SOR/n{}{}", nodes, free_storage ? "/free" : "");
  config.app = apps::make_sor({.n = 512, .iterations = 100});
  config.scheme = scheme;
  config.checkpoints = 3;
  config.interval = des::Duration::seconds(interval_s);
  config.machine = free_storage ? free_storage_machine(nodes) : [nodes] {
    auto machine = xplorer::MachineConfig::parsytec_xplorer();
    machine.num_nodes = nodes;
    return machine;
  }();
  return config;
}

struct Cell {
  double normal = 0, full = 0, sync_only = 0;
  std::uint64_t ctrl_msgs = 0, ctrl_bytes = 0;
};

std::map<std::size_t, Cell>& cells() {
  static std::map<std::size_t, Cell> map;
  return map;
}

void run_node_count(benchmark::State& state, std::size_t nodes) {
  for (auto _ : state) {
    // The two baselines are independent; so are the two checkpointed runs
    // once the interval is known. Fan each pair out (two phases).
    harness::ExperimentResult normal, sync_normal;
    parallel_for(2, [&](std::size_t i) {
      auto config = sor_config(nodes, Scheme::kNone, /*free_storage=*/i == 1, 60);
      (i == 0 ? normal : sync_normal) = harness::run_experiment(config);
    });
    const double interval = normal.exec_time_s / 4.0;
    // Empty images on a free-storage machine: saving costs nothing at all;
    // the residual overhead is the synchronization protocol itself
    // (requests, markers, acks, commit).
    harness::ExperimentResult full, sync_only;
    parallel_for(2, [&](std::size_t i) {
      auto config = sor_config(nodes, Scheme::kCoordNB, /*free_storage=*/i == 1, interval);
      if (i == 1) config.ablate_empty_checkpoints = true;
      (i == 0 ? full : sync_only) = harness::run_experiment(config);
    });
    Cell cell;
    cell.normal = normal.exec_time_s;
    cell.full = full.exec_time_s - normal.exec_time_s;
    cell.sync_only = sync_only.exec_time_s - sync_normal.exec_time_s;
    cell.ctrl_msgs = full.control_messages;
    cell.ctrl_bytes = full.control_bytes;
    cells()[nodes] = cell;
    state.counters["sync_overhead_s"] = cell.sync_only;
    state.counters["full_overhead_s"] = cell.full;
  }
}

void register_benchmarks() {
  for (std::size_t nodes : {2ul, 4ul, 8ul, 16ul, 32ul}) {
    benchmark::RegisterBenchmark(util::format("SyncCost/nodes{}", nodes).c_str(),
                                 [nodes](benchmark::State& state) {
                                   run_node_count(state, nodes);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  util::Table table({"nodes", "normal (s)", "full overhead (s)", "sync-only (s)",
                     "sync share", "ctrl msgs", "ctrl bytes"});
  for (const auto& [nodes, cell] : cells()) {
    table.add_row({util::Table::integer(static_cast<long long>(nodes)),
                   util::Table::fixed(cell.normal, 1), util::Table::fixed(cell.full, 3),
                   util::Table::fixed(cell.sync_only, 3),
                   cell.full > 0 ? util::Table::percent(cell.sync_only / cell.full, 1) : "-",
                   util::Table::integer(static_cast<long long>(cell.ctrl_msgs)),
                   util::Table::bytes(static_cast<double>(cell.ctrl_bytes))});
  }
  std::fputs(table.render("Synchronization vs saving cost, Coord_NB on SOR-512, "
                          "3 checkpoints")
                 .c_str(),
             stdout);
  std::puts("\nThe sync share stays in the low percent range at every machine size:\n"
            "the overhead is the checkpoint *saving*, not the coordination — the\n"
            "paper's central conclusion.");
}

void write_json() {
  using obs::json::Value;
  Value doc = Value::object();
  doc.set("table", Value::string("ablation_sync_cost"));
  Value points = Value::array();
  for (const auto& [nodes, cell] : cells()) {
    Value point = Value::object();
    point.set("nodes", Value::number(std::uint64_t{nodes}));
    point.set("normal_s", Value::number(cell.normal));
    point.set("full_overhead_s", Value::number(cell.full));
    point.set("sync_only_s", Value::number(cell.sync_only));
    if (cell.full > 0) point.set("sync_share", Value::number(cell.sync_only / cell.full));
    point.set("control_messages", Value::number(cell.ctrl_msgs));
    point.set("control_bytes", Value::number(cell.ctrl_bytes));
    points.push_back(std::move(point));
  }
  doc.set("points", std::move(points));
  write_bench_json("BENCH_ablation_sync_cost.json", doc);
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  chk::bench::write_json();
  return 0;
}
