// Paper-style overhead breakdown: where does each scheme's failure-free
// overhead go?
//
// Runs the SOR benchmark under every checkpointing scheme with the obs
// tracer attached and prints the per-scheme attribution table (sync wait,
// memory copy, stable write, storage contention, logging, frozen stalls,
// CPU interference). The paper's central finding shows up directly: the
// stable-storage write dominates and the synchronization share is small.
//
//   ./overhead_breakdown [--n=256] [--iters=60] [--nodes=8] [--checkpoints=3]
//                        [--interval-s=<auto>] [--seed=2026]
//                        [--trace-out=<file>] [--metrics-out=<file>]
//                        [--trace-scheme=Coord_NBM] [--json-out=<file>]
//
// --trace-out writes the selected scheme's run as Chrome/Perfetto trace
// JSON (load with ui.perfetto.dev); --metrics-out writes its metrics
// snapshot + attribution; --json-out (default BENCH_overhead_breakdown.json)
// collects every scheme's breakdown machine-readably.
#include <cstdio>
#include <future>
#include <vector>

#include "apps/sor.hpp"
#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;

const std::vector<harness::Scheme>& all_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB,  harness::Scheme::kCoordNBS,
      harness::Scheme::kCoordNBM, harness::Scheme::kCoordNBMS,
      harness::Scheme::kIndep,    harness::Scheme::kIndepM,
      harness::Scheme::kIndepMS};
  return schemes;
}

obs::json::Value scheme_json(const harness::ExperimentResult& result,
                             const harness::ExperimentResult& normal) {
  using obs::json::Value;
  Value entry = Value::object();
  entry.set("scheme", Value::string(std::string(to_string(result.scheme))));
  entry.set("exec_time_s", Value::number(result.exec_time_s));
  entry.set("overhead_s", Value::number(result.exec_time_s - normal.exec_time_s));
  entry.set("trace_hash", Value::string(util::format("{:016x}", result.trace_hash)));
  entry.set("trace_events", Value::number(std::uint64_t{result.obs->trace.events.size()}));
  entry.set("attribution", obs::attribution_to_json(result.obs->attribution));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  harness::ExperimentConfig base;
  base.label = "SOR";
  base.app = apps::make_sor({
      .n = static_cast<std::size_t>(cli.get_int("n", 256)),
      .iterations = static_cast<std::uint32_t>(cli.get_int("iters", 60)),
  });
  base.machine.num_nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  base.checkpoints = static_cast<std::uint32_t>(cli.get_int("checkpoints", 3));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  base.observe = true;

  std::printf("Baseline run (no checkpointing, %zu nodes)...\n", base.machine.num_nodes);
  const auto normal = harness::run_normal(base);
  base.interval = des::Duration::seconds(
      cli.has("interval-s") ? cli.get_double("interval-s", 30.0)
                            : normal.exec_time_s / (base.checkpoints + 1.0));

  // Every scheme's run is independent: fan out, then report in fixed order.
  const auto& schemes = all_schemes();
  std::vector<std::future<harness::ExperimentResult>> pending;
  pending.reserve(schemes.size());
  for (harness::Scheme scheme : schemes) {
    harness::ExperimentConfig config = base;
    config.scheme = scheme;
    pending.push_back(std::async(std::launch::async, [config] {
      return harness::run_experiment(config);
    }));
  }
  std::vector<harness::ExperimentResult> results;
  results.reserve(schemes.size());
  for (auto& future : pending) results.push_back(future.get());

  // Buckets are summed over ranks (rank-seconds); the comparable total is
  // the wall-clock overhead every rank experiences, overhead x num_ranks.
  // The difference is critical-path idle not chargeable to any one rank
  // (e.g. waiting on a neighbour that is checkpointing).
  util::Table table({"scheme", "overhead (s)", "rank-s", "sync wait", "mem copy",
                     "stable write", "contention", "logging", "frozen", "interference",
                     "attributed", "unattributed"});
  const double ranks = static_cast<double>(base.machine.num_nodes);
  for (const auto& result : results) {
    const obs::RankBuckets& total = result.obs->attribution.total;
    const double overhead = result.exec_time_s - normal.exec_time_s;
    table.add_row({std::string(to_string(result.scheme)), util::Table::fixed(overhead, 3),
                   util::Table::fixed(overhead * ranks, 3),
                   util::Table::fixed(total.sync_wait_s, 3),
                   util::Table::fixed(total.mem_copy_s, 3),
                   util::Table::fixed(total.stable_write_s, 3),
                   util::Table::fixed(total.storage_contention_s, 3),
                   util::Table::fixed(total.logging_s, 3),
                   util::Table::fixed(total.frozen_stall_s, 3),
                   util::Table::fixed(total.interference_s, 3),
                   util::Table::fixed(total.bucket_sum_s(), 3),
                   util::Table::fixed(overhead * ranks - total.bucket_sum_s(), 3)});
  }
  std::fputs(table.render(util::format(
                              "Overhead breakdown by scheme — SOR, {} checkpoints, "
                              "{} nodes (buckets summed over ranks; unattributed = "
                              "overhead x ranks - attributed, the critical-path "
                              "idle not chargeable to one rank)",
                              base.checkpoints, base.machine.num_nodes))
                 .c_str(),
             stdout);

  // Detailed exports for one selected scheme.
  const std::string trace_scheme = cli.get("trace-scheme", "Coord_NBM");
  const harness::ExperimentResult* selected = nullptr;
  for (const auto& result : results) {
    if (to_string(result.scheme) == trace_scheme) selected = &result;
  }
  if (selected == nullptr) {
    std::fprintf(stderr, "ERROR: --trace-scheme=%s is not a checkpointing scheme\n",
                 trace_scheme.c_str());
    return 1;
  }
  if (cli.has("trace-out")) {
    const std::string path = cli.get("trace-out", "trace.json");
    obs::write_text_file(
        path, obs::to_chrome_trace(selected->obs->trace, base.machine.num_nodes).dump());
    std::printf("\nWrote %s (%s, %zu events; open with ui.perfetto.dev)\n", path.c_str(),
                trace_scheme.c_str(), selected->obs->trace.events.size());
  }
  if (cli.has("metrics-out")) {
    using obs::json::Value;
    Value doc = Value::object();
    doc.set("scheme", Value::string(trace_scheme));
    doc.set("metrics", obs::metrics_to_json(selected->obs->metrics));
    doc.set("attribution", obs::attribution_to_json(selected->obs->attribution));
    const std::string path = cli.get("metrics-out", "metrics.json");
    obs::write_text_file(path, doc.dump() + "\n");
    std::printf("Wrote %s\n", path.c_str());
  }

  // Machine-readable summary of the whole table.
  {
    using obs::json::Value;
    Value doc = Value::object();
    doc.set("table", Value::string("overhead_breakdown"));
    doc.set("app", Value::string(base.label));
    doc.set("nodes", Value::number(std::uint64_t{base.machine.num_nodes}));
    doc.set("checkpoints", Value::number(std::uint64_t{base.checkpoints}));
    doc.set("normal_exec_s", Value::number(normal.exec_time_s));
    Value entries = Value::array();
    for (const auto& result : results) entries.push_back(scheme_json(result, normal));
    doc.set("schemes", std::move(entries));
    const std::string path = cli.get("json-out", "BENCH_overhead_breakdown.json");
    obs::write_text_file(path, doc.dump() + "\n");
    std::printf("Wrote %s\n", path.c_str());
  }
  return 0;
}
