// Ablation: the contention mechanism.
//
// The paper attributes Coord_NB's overhead to "the nearly simultaneous
// occurrence of all checkpoints, which is likely to result in contention
// for the communication network and the stable storage". Two sweeps make
// the mechanism visible:
//   1. Disk bandwidth: as the disk gets faster, the NB/Indep gap and the
//      benefit of staggering shrink (the bottleneck dissolves).
//   2. Checkpoint size (SOR grid size): overhead grows with state size for
//      write-through schemes but only with the memory-copy for buffered ones.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "apps/sor.hpp"
#include "bench_common.hpp"

namespace chk::bench {
namespace {

struct SweepResult {
  double normal = 0;
  std::map<std::string, double> overhead;  // scheme -> seconds
};

std::map<double, SweepResult>& disk_sweep() {
  static std::map<double, SweepResult> map;
  return map;
}

const std::vector<Scheme>& sweep_schemes() {
  static const std::vector<Scheme> all{Scheme::kCoordNB, Scheme::kIndep,
                                       Scheme::kCoordNBM, Scheme::kCoordNBMS};
  return all;
}

void run_disk_point(benchmark::State& state, double bandwidth_factor) {
  auto machine = xplorer::MachineConfig::parsytec_xplorer();
  machine.disk.bandwidth *= bandwidth_factor;
  machine.host_link.bandwidth *= bandwidth_factor;

  ExperimentConfig config;
  config.label = util::format("SOR/disk{:g}", bandwidth_factor);
  config.app = apps::make_sor({.n = 768, .iterations = 100});
  config.machine = machine;
  for (auto _ : state) {
    const auto normal = harness::run_normal(config);
    SweepResult sweep;
    sweep.normal = normal.exec_time_s;
    for (Scheme scheme : sweep_schemes()) {
      config.scheme = scheme;
      config.checkpoints = 3;
      config.interval = des::Duration::seconds(normal.exec_time_s / 4.0);
      const auto result = harness::run_experiment(config);
      sweep.overhead[std::string(to_string(scheme))] =
          result.exec_time_s - normal.exec_time_s;
    }
    disk_sweep()[bandwidth_factor] = sweep;
    state.counters["nb_overhead_s"] = sweep.overhead["Coord_NB"];
  }
}

void register_benchmarks() {
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 16.0}) {
    benchmark::RegisterBenchmark(
        util::format("Contention/disk_x{:g}", factor).c_str(),
        [factor](benchmark::State& state) { run_disk_point(state, factor); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  util::Table table({"disk speed", "NORMAL (s)", "Coord_NB (s)", "Indep (s)",
                     "Coord_NBM (s)", "Coord_NBMS (s)", "NB/NBMS"});
  for (const auto& [factor, sweep] : disk_sweep()) {
    const double nb = sweep.overhead.at("Coord_NB");
    const double nbms = sweep.overhead.at("Coord_NBMS");
    table.add_row({util::format("x{:g}", factor), util::Table::fixed(sweep.normal, 1),
                   util::Table::fixed(nb, 2),
                   util::Table::fixed(sweep.overhead.at("Indep"), 2),
                   util::Table::fixed(sweep.overhead.at("Coord_NBM"), 2),
                   util::Table::fixed(nbms, 2),
                   nbms > 1e-6 ? util::format("{:.1f}x", nb / nbms) : "-"});
  }
  std::fputs(table.render("Overhead (s) vs stable-storage speed — SOR-768, 3 checkpoints")
                 .c_str(),
             stdout);
  std::puts("\nA slower disk amplifies exactly the contention the paper identifies;\n"
            "a fast disk dissolves it and the schemes converge.");
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  return 0;
}
