// Table 3 of the paper: performance overhead (%) of the checkpointing
// schemes, same runs as Table 2, plus the paper's headline metric — the
// overhead reduction factor of Coord_NBMS relative to Coord_NB (the paper
// observed factors of 4 up to 17).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

ExperimentConfig cell_config(const BenchRow& row, Scheme scheme, double normal_exec_s) {
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = scheme;
  config.checkpoints = 3;
  config.interval = des::Duration::seconds(normal_exec_s / 4.0);
  return config;
}

void run_cell(benchmark::State& state, const BenchRow& row, Scheme scheme) {
  auto& cache = ResultCache::instance();
  const auto& normal = cache.normal(row);
  for (auto _ : state) {
    const auto& result =
        cache.run(cell_key(row.label, scheme), cell_config(row, scheme, normal.exec_time_s));
    set_common_counters(state, result, normal);
  }
}

// Warm the cache in parallel: every (row, scheme) simulation is
// independent. The benchmark pass then reports the cached cells.
void prefetch() {
  prefetch_table(harness::table23_rows(), table23_schemes(),
                 [](const BenchRow& row, Scheme scheme, const ExperimentResult& normal) {
                   return cell_config(row, scheme, normal.exec_time_s);
                 });
}

void register_benchmarks() {
  for (const auto& row : harness::table23_rows()) {
    for (Scheme scheme : table23_schemes()) {
      benchmark::RegisterBenchmark(
          util::format("Table3/{}/{}", row.label, to_string(scheme)).c_str(),
          [row, scheme](benchmark::State& state) { run_cell(state, row, scheme); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  util::Table table({"", "Interval (s)", "COORD NB", "INDEP", "COORD NBMS", "INDEP M",
                     "NBMS gain vs NB"});
  double min_factor = 1e300, max_factor = 0;
  for (const auto& row : harness::table23_rows()) {
    const auto normal = cache.lookup(cell_key(row.label, Scheme::kNone));
    std::vector<std::string> cells{row.label};
    cells.push_back(normal ? util::Table::fixed(normal->exec_time_s / 4.0, 0) : "-");
    double nb_overhead = -1, nbms_overhead = -1;
    for (Scheme scheme : table23_schemes()) {
      const auto result = cache.lookup(cell_key(row.label, scheme));
      if (!result || !normal) {
        cells.push_back("-");
        continue;
      }
      const double overhead = result->exec_time_s / normal->exec_time_s - 1.0;
      cells.push_back(util::Table::percent(overhead, 2));
      if (scheme == Scheme::kCoordNB) nb_overhead = overhead;
      if (scheme == Scheme::kCoordNBMS) nbms_overhead = overhead;
    }
    if (nb_overhead > 0 && nbms_overhead > 0) {
      const double factor = nb_overhead / nbms_overhead;
      cells.push_back(util::format("{:.1f}x", factor));
      // The paper's 4-17x range is over rows with substantive overhead;
      // near-zero overheads make the ratio meaningless.
      if (nb_overhead >= 0.02) {
        min_factor = std::min(min_factor, factor);
        max_factor = std::max(max_factor, factor);
      }
    } else {
      cells.push_back("-");
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render("Table 3: performance overhead of the checkpointing schemes")
                 .c_str(),
             stdout);
  if (max_factor > 0) {
    std::printf(
        "\nCoord_NBMS reduces the overhead of Coord_NB by a factor of %.1f up to %.1f"
        " (paper: 4 up to 17).\n",
        min_factor, max_factor);
  }
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  const bool warm = chk::bench::prefetch_enabled(argc, argv);
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  if (warm) chk::bench::prefetch();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  chk::bench::write_bench_json(
      "BENCH_table3.json",
      chk::bench::table_json("table3_overhead_percent", chk::harness::table23_rows(),
                             chk::bench::table23_schemes()));
  return 0;
}
