// Shared infrastructure for the paper-table benchmark binaries.
//
// Each binary registers one google-benchmark entry per (row, scheme) cell;
// a cell's benchmark runs the full simulated experiment once (the measured
// wall time is the simulator's own performance) and stores the simulated
// metrics both as benchmark counters and in a process-wide cache. After
// RunSpecifiedBenchmarks, main() prints the reconstructed paper table from
// the cache and writes a machine-readable BENCH_<name>.json next to it.
//
// Drivers may warm the cache up front with prefetch_table(): every
// (row, scheme) simulation is independent, so the warm-up fans out over a
// small thread pool. The subsequent benchmark pass and the table printer
// then read finished cells — output ordering never depends on completion
// order.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace chk::bench {

using harness::BenchRow;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Scheme;

/// Process-wide experiment cache: normal baselines are shared between
/// cells, and the end-of-run table printer reads finished cells. Safe to
/// call from the prefetch worker threads; a simulation runs outside the
/// lock and the first finisher of a key wins (runs are deterministic, so
/// duplicates are identical anyway).
class ResultCache {
 public:
  static ResultCache& instance();

  /// Run (or fetch) the no-checkpointing baseline for a row.
  const ExperimentResult& normal(const BenchRow& row);

  /// Run (or fetch) an arbitrary experiment, keyed by label+scheme+tag.
  const ExperimentResult& run(const std::string& key, const ExperimentConfig& config);

  [[nodiscard]] std::optional<ExperimentResult> lookup(const std::string& key) const;

 private:
  const ExperimentResult* find(const std::string& key) const;
  const ExperimentResult& insert(const std::string& key, ExperimentResult result);

  mutable std::mutex mu_;
  std::map<std::string, ExperimentResult> cache_;
};

/// Key helpers.
[[nodiscard]] std::string cell_key(const std::string& label, Scheme scheme);

/// Attach the standard simulated metrics to a benchmark's counters.
void set_common_counters(benchmark::State& state, const ExperimentResult& result,
                         const ExperimentResult& normal);

/// Run work(0..count-1) on a small thread pool (bounded by the hardware
/// concurrency); blocks until every item has finished. The first exception
/// propagates to the caller.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& work);

/// Whether the driver should warm the whole cache up front: true unless
/// the user narrowed the run with --benchmark_filter (prefetching every
/// cell would defeat the filter).
[[nodiscard]] bool prefetch_enabled(int argc, char** argv);

/// Two-phase parallel cache warm-up for the table drivers. Phase 1 runs
/// every row's baseline (cell configs depend on the baseline's execution
/// time); phase 2 runs every (row, scheme) cell through `cell_config`.
using CellConfigFn =
    std::function<ExperimentConfig(const BenchRow&, Scheme, const ExperimentResult&)>;
void prefetch_table(const std::vector<BenchRow>& rows, const std::vector<Scheme>& schemes,
                    const CellConfigFn& cell_config);

/// One cell's standard metrics as a JSON object (the same numbers the
/// benchmark counters carry, plus the determinism hash). `normal` adds the
/// derived overhead fields when present.
[[nodiscard]] obs::json::Value result_to_json(const ExperimentResult& result,
                                              const ExperimentResult* normal);

/// Assemble the standard per-table document: one entry per row with the
/// baseline plus every scheme cell found in the cache.
[[nodiscard]] obs::json::Value table_json(const std::string& table,
                                          const std::vector<BenchRow>& rows,
                                          const std::vector<Scheme>& schemes);

/// Write `doc` to `path` and report the path on stdout.
void write_bench_json(const std::string& path, const obs::json::Value& doc);

/// The scheme columns of Table 1 (paper order).
[[nodiscard]] const std::vector<Scheme>& table1_schemes();
/// The scheme columns of Tables 2 and 3 (paper order).
[[nodiscard]] const std::vector<Scheme>& table23_schemes();

}  // namespace chk::bench
