// Shared infrastructure for the paper-table benchmark binaries.
//
// Each binary registers one google-benchmark entry per (row, scheme) cell;
// a cell's benchmark runs the full simulated experiment once (the measured
// wall time is the simulator's own performance) and stores the simulated
// metrics both as benchmark counters and in a process-wide cache. After
// RunSpecifiedBenchmarks, main() prints the reconstructed paper table from
// the cache.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <optional>
#include <string>

#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "util/table.hpp"

namespace chk::bench {

using harness::BenchRow;
using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::Scheme;

/// Process-wide experiment cache: normal baselines are shared between
/// cells, and the end-of-run table printer reads finished cells.
class ResultCache {
 public:
  static ResultCache& instance();

  /// Run (or fetch) the no-checkpointing baseline for a row.
  const ExperimentResult& normal(const BenchRow& row);

  /// Run (or fetch) an arbitrary experiment, keyed by label+scheme+tag.
  const ExperimentResult& run(const std::string& key, const ExperimentConfig& config);

  [[nodiscard]] std::optional<ExperimentResult> lookup(const std::string& key) const;

 private:
  std::map<std::string, ExperimentResult> cache_;
};

/// Key helpers.
[[nodiscard]] std::string cell_key(const std::string& label, Scheme scheme);

/// Attach the standard simulated metrics to a benchmark's counters.
void set_common_counters(benchmark::State& state, const ExperimentResult& result,
                         const ExperimentResult& normal);

/// The scheme columns of Table 1 (paper order).
[[nodiscard]] const std::vector<Scheme>& table1_schemes();
/// The scheme columns of Tables 2 and 3 (paper order).
[[nodiscard]] const std::vector<Scheme>& table23_schemes();

}  // namespace chk::bench
