#include "bench_common.hpp"

#include "util/format.hpp"

namespace chk::bench {

ResultCache& ResultCache::instance() {
  static ResultCache cache;
  return cache;
}

const ExperimentResult& ResultCache::normal(const BenchRow& row) {
  const std::string key = cell_key(row.label, Scheme::kNone);
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  return cache_.emplace(key, harness::run_normal(config)).first->second;
}

const ExperimentResult& ResultCache::run(const std::string& key,
                                         const ExperimentConfig& config) {
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  return cache_.emplace(key, harness::run_experiment(config)).first->second;
}

std::optional<ExperimentResult> ResultCache::lookup(const std::string& key) const {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

std::string cell_key(const std::string& label, Scheme scheme) {
  return util::format("{}/{}", label, to_string(scheme));
}

void set_common_counters(benchmark::State& state, const ExperimentResult& result,
                         const ExperimentResult& normal) {
  state.counters["sim_exec_s"] = result.exec_time_s;
  state.counters["overhead_s"] = result.exec_time_s - normal.exec_time_s;
  state.counters["overhead_pct"] =
      (result.exec_time_s / normal.exec_time_s - 1.0) * 100.0;
  state.counters["ctrl_msgs"] = static_cast<double>(result.control_messages);
  state.counters["ckpt_MiB"] = static_cast<double>(result.bytes_written) / (1 << 20);
  state.counters["blocked_s"] = result.app_blocked_s;
  state.counters["disk_wait_s"] = result.disk_wait_s;
}

const std::vector<Scheme>& table1_schemes() {
  static const std::vector<Scheme> schemes{Scheme::kCoordNB, Scheme::kIndep,
                                           Scheme::kCoordNBM, Scheme::kIndepM,
                                           Scheme::kCoordNBMS};
  return schemes;
}

const std::vector<Scheme>& table23_schemes() {
  static const std::vector<Scheme> schemes{Scheme::kCoordNB, Scheme::kIndep,
                                           Scheme::kCoordNBMS, Scheme::kIndepM};
  return schemes;
}

}  // namespace chk::bench
