#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/export.hpp"
#include "util/format.hpp"

namespace chk::bench {

ResultCache& ResultCache::instance() {
  static ResultCache cache;
  return cache;
}

const ExperimentResult* ResultCache::find(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : &it->second;
}

const ExperimentResult& ResultCache::insert(const std::string& key,
                                            ExperimentResult result) {
  const std::lock_guard<std::mutex> lock(mu_);
  // try_emplace: if another worker finished the same (deterministic) run
  // first, keep its copy; std::map references are stable either way.
  return cache_.try_emplace(key, std::move(result)).first->second;
}

const ExperimentResult& ResultCache::normal(const BenchRow& row) {
  const std::string key = cell_key(row.label, Scheme::kNone);
  if (const auto* hit = find(key)) return *hit;
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  return insert(key, harness::run_normal(config));
}

const ExperimentResult& ResultCache::run(const std::string& key,
                                         const ExperimentConfig& config) {
  if (const auto* hit = find(key)) return *hit;
  return insert(key, harness::run_experiment(config));
}

std::optional<ExperimentResult> ResultCache::lookup(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

std::string cell_key(const std::string& label, Scheme scheme) {
  return util::format("{}/{}", label, to_string(scheme));
}

void set_common_counters(benchmark::State& state, const ExperimentResult& result,
                         const ExperimentResult& normal) {
  state.counters["sim_exec_s"] = result.exec_time_s;
  state.counters["overhead_s"] = result.exec_time_s - normal.exec_time_s;
  state.counters["overhead_pct"] =
      (result.exec_time_s / normal.exec_time_s - 1.0) * 100.0;
  state.counters["ctrl_msgs"] = static_cast<double>(result.control_messages);
  state.counters["ckpt_MiB"] = static_cast<double>(result.bytes_written) / (1 << 20);
  state.counters["blocked_s"] = result.app_blocked_s;
  state.counters["disk_wait_s"] = result.disk_wait_s;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& work) {
  if (count == 0) return;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers = std::min(count, hw);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) work(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.push_back(std::async(std::launch::async, [&next, count, &work] {
      for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        work(i);
      }
    }));
  }
  for (auto& worker : pool) worker.get();
}

bool prefetch_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_filter")) return false;
  }
  return true;
}

void prefetch_table(const std::vector<BenchRow>& rows, const std::vector<Scheme>& schemes,
                    const CellConfigFn& cell_config) {
  auto& cache = ResultCache::instance();
  parallel_for(rows.size(), [&](std::size_t i) { cache.normal(rows[i]); });
  parallel_for(rows.size() * schemes.size(), [&](std::size_t i) {
    const BenchRow& row = rows[i / schemes.size()];
    const Scheme scheme = schemes[i % schemes.size()];
    cache.run(cell_key(row.label, scheme), cell_config(row, scheme, cache.normal(row)));
  });
}

obs::json::Value result_to_json(const ExperimentResult& result,
                                const ExperimentResult* normal) {
  using obs::json::Value;
  Value cell = Value::object();
  cell.set("scheme", Value::string(std::string(to_string(result.scheme))));
  cell.set("exec_time_s", Value::number(result.exec_time_s));
  cell.set("events", Value::number(result.events));
  cell.set("trace_hash", Value::string(util::format("{:016x}", result.trace_hash)));
  cell.set("app_blocked_s", Value::number(result.app_blocked_s));
  cell.set("interference_s", Value::number(result.interference_s));
  cell.set("frozen_stall_s", Value::number(result.frozen_stall_s));
  cell.set("disk_wait_s", Value::number(result.disk_wait_s));
  cell.set("control_messages", Value::number(result.control_messages));
  cell.set("control_bytes", Value::number(result.control_bytes));
  cell.set("local_checkpoints", Value::number(result.local_checkpoints));
  cell.set("committed_rounds", Value::number(std::uint64_t{result.committed_rounds}));
  cell.set("bytes_written", Value::number(result.bytes_written));
  if (normal != nullptr && normal->exec_time_s > 0) {
    cell.set("overhead_s", Value::number(result.exec_time_s - normal->exec_time_s));
    cell.set("overhead_pct",
             Value::number((result.exec_time_s / normal->exec_time_s - 1.0) * 100.0));
  }
  return cell;
}

obs::json::Value table_json(const std::string& table, const std::vector<BenchRow>& rows,
                            const std::vector<Scheme>& schemes) {
  using obs::json::Value;
  auto& cache = ResultCache::instance();
  Value doc = Value::object();
  doc.set("table", Value::string(table));
  Value row_array = Value::array();
  for (const BenchRow& row : rows) {
    Value entry = Value::object();
    entry.set("label", Value::string(row.label));
    entry.set("approx_state_bytes", Value::number(row.approx_state_bytes));
    const auto normal = cache.lookup(cell_key(row.label, Scheme::kNone));
    if (normal) entry.set("normal", result_to_json(*normal, nullptr));
    Value cells = Value::array();
    for (Scheme scheme : schemes) {
      if (const auto result = cache.lookup(cell_key(row.label, scheme))) {
        cells.push_back(result_to_json(*result, normal ? &*normal : nullptr));
      }
    }
    entry.set("cells", std::move(cells));
    row_array.push_back(std::move(entry));
  }
  doc.set("rows", std::move(row_array));
  return doc;
}

void write_bench_json(const std::string& path, const obs::json::Value& doc) {
  obs::write_text_file(path, doc.dump() + "\n");
  std::printf("\nWrote %s\n", path.c_str());
}

const std::vector<Scheme>& table1_schemes() {
  static const std::vector<Scheme> schemes{Scheme::kCoordNB, Scheme::kIndep,
                                           Scheme::kCoordNBM, Scheme::kIndepM,
                                           Scheme::kCoordNBMS};
  return schemes;
}

const std::vector<Scheme>& table23_schemes() {
  static const std::vector<Scheme> schemes{Scheme::kCoordNB, Scheme::kIndep,
                                           Scheme::kCoordNBMS, Scheme::kIndepM};
  return schemes;
}

}  // namespace chk::bench
