// DES-kernel throughput: raw events/sec as a first-class, regression-gated
// benchmark.
//
// At 1000+ ranks with transport timers and tracing armed, the kernel's
// event queue and allocation behaviour are the hot path — before the five
// schemes can be measured at scale, the simulator itself must be. Each
// cell of the sweep builds a Simulator + Network + reliable Transport at
// one rank count, drives an ack-heavy neighbour-ring message workload
// (every cumulative ack cancels and re-arms the sender's RTO timer — the
// exact churn pattern that used to bloat the heap with dead events), plus
// an optional synthetic watchdog-style timer-churn load, with tracing on
// or off. The measured wall-clock events/sec goes to stdout; the JSON
// artifact holds only simulation-deterministic fields (event counts,
// trace hashes, queue high-water marks, compaction counts), so repeats
// with the same seed are byte-identical and CI can `cmp` them PR-over-PR.
//
//   ./kernel_throughput [--ranks=8,64,256] [--churn=0,8] [--iters=300]
//                       [--payload=32] [--seed=2026]
//                       [--json-out=BENCH_kernel.json] [--quick]
//
// Invariants checked in-driver (the run fails otherwise):
//   * tracing on/off never changes trace_hash or the executed-event count;
//   * every sent envelope is delivered exactly once;
//   * the queue's live size stays O(armed timers): the dead fraction is
//     bounded by the kernel's compaction threshold, not by traffic volume.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <chrono>  // chklint:allow(no-ambient-nondeterminism): wall-clock events/sec is the measurement; none of it reaches the JSON artifact.
#include <string>
#include <vector>

#include "chklib/comm/transport.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"
#include "obs/json.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xplorer/config.hpp"
#include "xplorer/network.hpp"

namespace {

using namespace chk;

struct CellConfig {
  std::size_t ranks = 8;
  std::size_t churn = 0;  ///< watchdog-style timers re-armed per iteration
  bool tracing = false;
  std::size_t iters = 300;
  std::size_t payload = 32;
  std::uint64_t seed = 2026;
};

struct CellResult {
  std::uint64_t events = 0;
  std::uint64_t trace_hash = 0;
  std::int64_t end_time_ns = 0;
  std::uint64_t delivered = 0;
  std::size_t queue_peak = 0;
  std::uint64_t compactions = 0;
  std::uint64_t timers_armed = 0;
  std::uint64_t timers_cancelled = 0;
  double wall_s = 0;  ///< wall clock; stdout only, never serialized
  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

/// Deterministic per-(rank, iteration) think-time in [1, 5] us: enough
/// spread that sends interleave rather than batch, pure arithmetic so the
/// schedule is a function of the seed alone.
des::Duration think_time(std::uint64_t seed, std::size_t rank, std::size_t iter) {
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(rank) << 32) ^ iter;
  const std::uint64_t h = util::splitmix64(state);
  return des::Duration::nanos(1'000 + static_cast<std::int64_t>(h % 4'000));
}

CellResult run_cell(const CellConfig& cc) {
  des::Simulator sim;
  obs::Tracer tracer;
  if (cc.tracing) sim.set_tracer(&tracer);

  xplorer::MachineConfig mc;
  mc.num_nodes = cc.ranks;
  xplorer::Network net(sim, mc);
  chklib::Transport transport(sim, net, chklib::TransportConfig{});
  if (cc.tracing) transport.set_tracer(&tracer);

  CellResult out;
  transport.set_deliver_app([&out](chklib::Envelope) { ++out.delivered; });

  // One process per rank: think, send to the ring neighbour (the ack path
  // cancels + re-arms the sender's RTO timer per delivery), and churn the
  // synthetic watchdog timers.
  std::vector<std::vector<des::EventHandle>> watchdogs(cc.ranks);
  for (std::size_t r = 0; r < cc.ranks; ++r) {
    watchdogs[r].resize(cc.churn);
    sim.spawn(util::format("rank{}", r), [&, r](des::Process& self) {
      for (std::size_t i = 0; i < cc.iters; ++i) {
        self.delay(think_time(cc.seed, r, i));
        chklib::Envelope env;
        env.src = r;
        env.dst = (r + 1) % cc.ranks;
        env.seq = i;
        env.payload.resize(cc.payload);
        transport.send_app(std::move(env));
        // Watchdog churn: cancel last iteration's timers, arm fresh ones
        // far in the future. None ever fires — each becomes a dead heap
        // entry the kernel must reclaim without waiting 50 ms.
        for (des::EventHandle& h : watchdogs[r]) {
          h.cancel();
          h = sim.schedule_after(des::Duration::millis(50), [] {});
        }
      }
      for (des::EventHandle& h : watchdogs[r]) h.cancel();
    });
  }

  // chklint:allow(no-ambient-nondeterminism): wall-clock events/sec is the
  // measurement itself; none of it reaches the JSON artifact.
  const auto wall_start = std::chrono::steady_clock::now();
  const des::RunResult run = sim.run();
  const auto wall_end = std::chrono::steady_clock::now();  // chklint:allow(no-ambient-nondeterminism): see above.
  if (run.reason != des::StopReason::kIdle) {
    throw std::runtime_error(util::format("cell did not drain: {}", to_string(run.reason)));
  }

  out.events = sim.events_executed();
  out.trace_hash = sim.trace_hash();
  out.end_time_ns = sim.now().to_nanos();
  out.queue_peak = sim.queue_peak();
  out.compactions = sim.compactions();
  out.timers_armed = transport.stats().rto_armed;
  out.timers_cancelled = transport.stats().rto_cancelled;
  out.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return out;
}

std::vector<std::size_t> parse_sizes(const std::string& flag, const std::string& csv,
                                     std::size_t min, std::size_t max) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) {
      const std::string tok = csv.substr(start, end - start);
      char* tail = nullptr;
      const unsigned long long v = std::strtoull(tok.c_str(), &tail, 10);
      if (tail != tok.c_str() + tok.size() || v < min || v > max) {
        throw std::invalid_argument(flag + ": expected an integer in [" +
                                    std::to_string(min) + "," + std::to_string(max) +
                                    "], got \"" + tok + "\"");
      }
      out.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument(flag + ": empty list");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);

  std::vector<std::size_t> ranks;
  std::vector<std::size_t> churns;
  try {
    ranks = parse_sizes("--ranks", cli.get("ranks", quick ? "8,64" : "8,64,256"), 2, 4096);
    churns = parse_sizes("--churn", cli.get("churn", "0,8"), 0, 1024);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "kernel_throughput: %s\n", err.what());
    return 2;
  }
  const auto iters = static_cast<std::size_t>(
      cli.get_int("iters", quick ? 60 : 300));
  const auto payload = static_cast<std::size_t>(cli.get_int("payload", 32));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const std::string json_out = cli.get("json-out", "BENCH_kernel.json");
  if (iters < 1 || payload > 4096) {
    std::fprintf(stderr, "kernel_throughput: --iters >= 1, --payload <= 4096\n");
    return 2;
  }

  struct Row {
    CellConfig config;
    CellResult traced;
    CellResult untraced;
  };
  std::vector<Row> rows;
  for (const std::size_t r : ranks) {
    for (const std::size_t c : churns) {
      Row row;
      row.config = CellConfig{.ranks = r, .churn = c, .tracing = false,
                              .iters = iters, .payload = payload, .seed = seed};
      row.untraced = run_cell(row.config);
      row.config.tracing = true;
      row.traced = run_cell(row.config);
      rows.push_back(std::move(row));
    }
  }

  bool all_ok = true;
  for (const Row& row : rows) {
    // Tracing is observation only: identical schedule, identical hash.
    if (row.traced.trace_hash != row.untraced.trace_hash ||
        row.traced.events != row.untraced.events ||
        row.traced.end_time_ns != row.untraced.end_time_ns) {
      std::fprintf(stderr, "kernel_throughput: tracing perturbed the schedule at ranks=%zu churn=%zu\n",
                   row.config.ranks, row.config.churn);
      all_ok = false;
    }
    // Exactly-once delivery of the whole request set.
    const auto expected = static_cast<std::uint64_t>(row.config.ranks * iters);
    if (row.traced.delivered != expected || row.untraced.delivered != expected) {
      std::fprintf(stderr, "kernel_throughput: lost deliveries at ranks=%zu churn=%zu\n",
                   row.config.ranks, row.config.churn);
      all_ok = false;
    }
    // Dead-event bound: the queue never holds more than compaction allows —
    // O(live timers), not O(cancelled traffic history).
    const std::uint64_t cancelled =
        row.untraced.timers_cancelled + static_cast<std::uint64_t>(row.config.churn) * iters * row.config.ranks;
    const std::size_t live_bound =
        row.config.ranks * (row.config.churn + 8) + 256;
    if (cancelled > 4 * live_bound && row.untraced.queue_peak > 2 * live_bound) {
      std::fprintf(stderr,
                   "kernel_throughput: heap bloat at ranks=%zu churn=%zu "
                   "(peak %zu vs live bound %zu, %llu cancels)\n",
                   row.config.ranks, row.config.churn, row.untraced.queue_peak,
                   live_bound, static_cast<unsigned long long>(cancelled));
      all_ok = false;
    }
  }

  util::Table table({"ranks", "churn", "events", "ev/s (plain)", "ev/s (traced)",
                     "queue peak", "compactions", "rto arm/cancel"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.config.ranks), std::to_string(row.config.churn),
                   std::to_string(row.untraced.events),
                   util::format("{:.0f}", row.untraced.events_per_sec()),
                   util::format("{:.0f}", row.traced.events_per_sec()),
                   std::to_string(row.untraced.queue_peak),
                   std::to_string(row.untraced.compactions),
                   util::format("{}/{}", row.untraced.timers_armed,
                                row.untraced.timers_cancelled)});
  }
  std::fputs(table.render("kernel_throughput (events/sec measured on this machine's wall clock)").c_str(), stdout);

  // Deterministic artifact: simulation-schedule facts only (no wall clock).
  obs::json::Value doc = obs::json::Value::object();
  doc.set("table", obs::json::Value::string("kernel_throughput"));
  doc.set("seed", obs::json::Value::number(seed));
  doc.set("iters", obs::json::Value::number(static_cast<std::uint64_t>(iters)));
  doc.set("payload", obs::json::Value::number(static_cast<std::uint64_t>(payload)));
  doc.set("all_ok", obs::json::Value::boolean(all_ok));
  obs::json::Value cells = obs::json::Value::array();
  for (const Row& row : rows) {
    obs::json::Value cell = obs::json::Value::object();
    cell.set("ranks", obs::json::Value::number(static_cast<std::uint64_t>(row.config.ranks)));
    cell.set("churn", obs::json::Value::number(static_cast<std::uint64_t>(row.config.churn)));
    cell.set("events", obs::json::Value::number(row.untraced.events));
    cell.set("trace_hash", obs::json::Value::string(util::format("{:016x}", row.untraced.trace_hash)));
    cell.set("end_time_ns", obs::json::Value::number(row.untraced.end_time_ns));
    cell.set("delivered", obs::json::Value::number(row.untraced.delivered));
    cell.set("queue_peak", obs::json::Value::number(static_cast<std::uint64_t>(row.untraced.queue_peak)));
    cell.set("compactions", obs::json::Value::number(row.untraced.compactions));
    cell.set("rto_armed", obs::json::Value::number(row.untraced.timers_armed));
    cell.set("rto_cancelled", obs::json::Value::number(row.untraced.timers_cancelled));
    cell.set("traced_matches", obs::json::Value::boolean(
        row.traced.trace_hash == row.untraced.trace_hash));
    cells.push_back(std::move(cell));
  }
  doc.set("cells", std::move(cells));
  obs::write_text_file(json_out, doc.dump() + "\n");
  std::printf("wrote %s\n", json_out.c_str());
  return all_ok ? 0 : 1;
}
