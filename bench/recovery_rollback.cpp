// Recovery behaviour: rollback distance, domino depth and recovery latency
// for coordinated vs independent checkpointing (the paper's §4 claims:
// coordinated gives "a predictable rollback distance" and is domino-free;
// independent is "prone to the domino-effect").
//
// For each (application, scheme) pair we crash a node at several points in
// the run and report how far the system rolled back and how much work was
// lost. Every recovered run's result is verified against the failure-free
// digest.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

struct Case {
  const char* app;
  Scheme scheme;
  bool logging = false;  ///< independent + pessimistic sender logging
  [[nodiscard]] std::string name() const {
    return std::string(to_string(scheme)) + (logging ? "+log" : "");
  }
};

const std::vector<Case>& cases() {
  static const std::vector<Case> all{
      {"SOR-512", Scheme::kCoordNB, false},
      {"SOR-512", Scheme::kIndep, false},
      {"SOR-512", Scheme::kIndep, true},
      {"NQUEENS-14", Scheme::kCoordNB, false},
      {"NQUEENS-14", Scheme::kIndep, false},
  };
  return all;
}

const std::vector<double>& fail_fractions() {
  static const std::vector<double> fracs{0.35, 0.6, 0.85};
  return fracs;
}

std::string key_of(const Case& c, double frac) {
  return util::format("{}/{}/f{:.2f}", c.app, c.name(), frac);
}

void run_case(benchmark::State& state, const Case& c, double frac) {
  auto& cache = ResultCache::instance();
  const BenchRow row = harness::find_row(c.app);
  const auto& normal = cache.normal(row);
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = c.scheme;
  config.checkpoints = 0;  // keep checkpointing until done
  config.interval = des::Duration::seconds(normal.exec_time_s / 5.0);
  if (c.logging) {
    config.message_logging = true;
    config.recovery_mode = chklib::LineMode::kOrphanFree;
  }
  config.failure = harness::FailureSpec{
      des::TimePoint::origin() + des::Duration::seconds(normal.exec_time_s * frac), 3};
  for (auto _ : state) {
    const auto& result = cache.run(key_of(c, frac), config);
    if (result.digest != normal.digest) {
      state.SkipWithError("recovered digest mismatch!");
      return;
    }
    if (!result.recoveries.empty()) {
      const auto& report = result.recoveries.front();
      double max_rollback = 0;
      for (const auto& d : report.rollback_distance) {
        max_rollback = std::max(max_rollback, d.to_seconds());
      }
      state.counters["rollback_s"] = max_rollback;
      state.counters["latency_s"] = report.recovery_latency.to_seconds();
      state.counters["domino_origin"] = report.rolled_to_origin ? 1 : 0;
    }
    state.counters["total_s"] = result.exec_time_s;
  }
}

void register_benchmarks() {
  for (const auto& c : cases()) {
    for (double frac : fail_fractions()) {
      benchmark::RegisterBenchmark(
          util::format("Recovery/{}/{}/fail{:.0f}pct", c.app, c.name(), frac * 100)
              .c_str(),
          [c, frac](benchmark::State& state) { run_case(state, c, frac); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  util::Table table({"app", "scheme", "fail at", "rollback (s)", "domino depth",
                     "to origin?", "recovery (s)", "total (s)", "verified"});
  for (const auto& c : cases()) {
    for (double frac : fail_fractions()) {
      const auto result = cache.lookup(key_of(c, frac));
      if (!result || result->recoveries.empty()) continue;
      const auto& report = result->recoveries.front();
      double max_rollback = 0;
      std::uint32_t max_depth = 0;
      for (const auto& d : report.rollback_distance) {
        max_rollback = std::max(max_rollback, d.to_seconds());
      }
      for (auto depth : report.domino_depth) max_depth = std::max(max_depth, depth);
      table.add_row({c.app, c.name(), util::Table::percent(frac, 0),
                     util::Table::fixed(max_rollback, 1),
                     util::Table::integer(max_depth),
                     report.rolled_to_origin ? "YES" : "no",
                     util::Table::fixed(report.recovery_latency.to_seconds(), 2),
                     util::Table::fixed(result->exec_time_s, 1),
                     result->digest ? "ok" : "?"});
    }
  }
  std::fputs(table.render("Rollback behaviour under a node crash (all results verified "
                          "bit-identical)")
                 .c_str(),
             stdout);
  std::puts("\nCoordinated: bounded, predictable rollback (at most one interval).\n"
            "Independent on the tightly coupled app: domino to the initial state —\n"
            "all checkpointing work wasted. On the loosely coupled app the line holds.\n"
            "Indep+log (the paper's suggested message-logging remedy) recovers to\n"
            "the newest checkpoints like coordinated — trading storage for it.");
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  return 0;
}
