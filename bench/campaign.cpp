// Fault-injection campaign: expected completion time under failures.
//
// The paper's tables compare the schemes' failure-free overhead; this
// driver compares what actually matters when failures happen — the
// expected completion time under an exponential (MTBF-parameterized)
// failure arrival process, with multiple failures per run, failures landing
// inside checkpoint stable-storage writes and failures striking mid-
// recovery. For each app the MTBF is swept as a fraction of the failure-
// free execution time; each (app, MTBF, scheme) cell runs `--runs` seeded
// campaign runs that differ only in the failure schedule.
//
//   ./campaign [--apps=SOR-384,NQUEENS-14] [--mtbf-fracs=0.35,0.7,1.4]
//              [--runs=4] [--max-failures=6] [--nodes=8] [--checkpoints=0]
//              [--intervals=5] [--seed=2026] [--campaign-seed=1]
//              [--link-loss=0] [--link-dup=0] [--link-corrupt=0]
//              [--link-delay=0] [--link-delay-mean=0.001] [--transport]
//              [--io-error=0] [--io-degrade=1] [--bitrot=0] [--keep-depth=0]
//              [--detect-timeout=0] [--hb-period=0.25] [--target-coordinator]
//              [--detector=binary|phi] [--phi-threshold=8] [--phi-window=32]
//              [--json-out=BENCH_campaign.json] [--quick]
//
// --intervals sets the checkpoint interval to normal_exec/intervals;
// --checkpoints=0 keeps checkpointing active until the app completes (the
// right setting when failures extend the run). --link-loss/--link-dup/
// --link-corrupt/--link-delay add per-frame link faults on top of the
// failure process; the reliable FIFO transport repairs them (disable it
// with --no-transport to expose the raw loss). --io-error/--io-degrade/
// --bitrot make the stable storage itself unreliable (transient write/read
// I/O errors, degraded-throughput windows, silent image corruption); the
// retrying storage client and verified multi-generation recovery absorb
// them, with --keep-depth (0 = auto) controlling how many generations
// retention keeps per rank. --detect-timeout=S (> 0) arms the cluster-
// membership service: failures go through heartbeat detection, quorum
// eviction and coordinator election instead of the oracle, with
// --hb-period setting the beacon period and --target-coordinator aiming
// every strike at the elected coordinator; the detector needs the
// reliable transport, so combining it with --no-transport is rejected.
// --detector picks how suspicion forms: "binary" (fixed timeout, the
// default) or "phi" (accrual detection adapting to the observed heartbeat
// inter-arrivals), with --phi-threshold (suspicion level, phi units) and
// --phi-window (inter-arrival samples); phi knobs on the binary detector
// are rejected rather than ignored.
// --quick shrinks the sweep for smoke testing
// (1 app, 2 MTBF points, 2 runs). Every run verifies the application
// digest against the failure-free baseline; the output is byte-identical
// across repeats with the same seeds.
#include <cstdio>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "faultsim/campaign.hpp"
#include "harness/catalog.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The five scheme columns of the paper's Table 1, in paper order.
const std::vector<harness::Scheme>& campaign_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kIndep, harness::Scheme::kCoordNBM,
      harness::Scheme::kIndepM, harness::Scheme::kCoordNBMS};
  return schemes;
}

struct Cell {
  std::string app;
  double mtbf_frac = 0;
  harness::Scheme scheme = harness::Scheme::kNone;
  faultsim::CampaignResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);

  std::vector<std::string> app_labels =
      split_list(cli.get("apps", quick ? "SOR-384" : "SOR-384,NQUEENS-14"));
  std::vector<double> mtbf_fracs;
  for (const std::string& tok :
       split_list(cli.get("mtbf-fracs", quick ? "0.4,0.8" : "0.35,0.7,1.4"))) {
    mtbf_fracs.push_back(std::stod(tok));
  }
  const auto runs = static_cast<std::uint32_t>(cli.get_int("runs", quick ? 2 : 4));
  const auto max_failures =
      static_cast<std::uint32_t>(cli.get_int("max-failures", 6));
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  const auto checkpoints = static_cast<std::uint32_t>(cli.get_int("checkpoints", 0));
  const double intervals = cli.get_double("intervals", 5.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const auto campaign_seed =
      static_cast<std::uint64_t>(cli.get_int("campaign-seed", 1));
  chklib::LinkFaultConfig link_faults;
  xplorer::StorageFaultConfig storage_faults;
  std::uint32_t keep_depth = 0;
  std::optional<chklib::membership::MembershipConfig> membership;
  try {
    link_faults.drop = cli.get_prob("link-loss", 0.0);
    link_faults.duplicate = cli.get_prob("link-dup", 0.0);
    link_faults.corrupt = cli.get_prob("link-corrupt", 0.0);
    link_faults.delay_prob = cli.get_prob("link-delay", 0.0);
    link_faults.delay_mean_s = cli.get_nonneg_double("link-delay-mean", 1e-3);
    link_faults.validate();
    const double io_error = cli.get_prob("io-error", 0.0);
    storage_faults.write_error = io_error;
    storage_faults.read_error = io_error;
    storage_faults.bitrot = cli.get_prob("bitrot", 0.0);
    storage_faults.degrade_factor = cli.get_nonneg_double("io-degrade", 1.0);
    storage_faults.validate();
    const long depth = cli.get_int("keep-depth", 0);
    if (depth < 0) throw std::invalid_argument("--keep-depth must be >= 0");
    keep_depth = static_cast<std::uint32_t>(depth);
    const double detect_timeout = cli.get_nonneg_double("detect-timeout", 0.0);
    const double hb_period = cli.get_nonneg_double("hb-period", 0.25);
    const std::string detector_name = cli.get("detector", "binary");
    const auto detector = chklib::membership::parse_detector(detector_name);
    if (detector != chklib::membership::Detector::kPhiAccrual) {
      // Same discipline as get_prob: a phi knob on the binary detector is a
      // silently-ignored flag waiting to mislead — reject it loudly.
      for (const char* flag : {"phi-threshold", "phi-window"}) {
        if (cli.has(flag)) {
          throw std::invalid_argument(std::string("--") + flag +
                                      " needs --detector=phi (the binary "
                                      "detector has no phi knobs)");
        }
      }
    }
    if (detect_timeout > 0) {
      chklib::membership::MembershipConfig m;
      m.detect_timeout = des::Duration::seconds(detect_timeout);
      m.hb_period = des::Duration::seconds(hb_period);
      m.detector = detector;
      if (detector == chklib::membership::Detector::kPhiAccrual) {
        const double threshold = cli.get_nonneg_double("phi-threshold", 8.0);
        if (threshold <= 0) {
          throw std::invalid_argument("--phi-threshold must be positive");
        }
        const long window = cli.get_int("phi-window", 32);
        if (window <= 0) {
          throw std::invalid_argument("--phi-window must be positive");
        }
        m.accrual.threshold_milli = static_cast<std::int64_t>(threshold * 1000.0);
        m.accrual.window = static_cast<std::uint32_t>(window);
      }
      m.validate(nodes);
      membership = m;
    } else if (cli.has("detector") && detector_name != "binary") {
      throw std::invalid_argument(
          "--detector=phi needs --detect-timeout > 0 to arm the membership "
          "service (the detector has nothing to run on otherwise)");
    }
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "campaign: %s\n", err.what());
    return 2;
  }
  const bool transport = cli.get_bool("transport", true);
  const bool target_coordinator = cli.get_bool("target-coordinator", false);
  if (membership.has_value() && !transport) {
    std::fprintf(stderr,
                 "campaign: --detect-timeout requires the reliable transport — "
                 "heartbeats over raw lossy links turn every detection timeout "
                 "into a coin flip (drop --no-transport)\n");
    return 2;
  }
  if (target_coordinator && !membership.has_value()) {
    std::fprintf(stderr,
                 "campaign: --target-coordinator needs --detect-timeout > 0 — "
                 "without the membership service there is no elected "
                 "coordinator to aim at\n");
    return 2;
  }

  // Failure-free baselines: the MTBF sweep and the checkpoint interval are
  // both expressed relative to each app's normal execution time, and the
  // baseline digest is the ground truth every faulted run must reproduce.
  std::printf("Baselines (no checkpointing, %zu nodes)...\n", nodes);
  std::map<std::string, harness::ExperimentResult> normals;
  {
    std::vector<std::future<harness::ExperimentResult>> pending;
    pending.reserve(app_labels.size());
    for (const std::string& label : app_labels) {
      harness::ExperimentConfig config;
      config.label = label;
      config.app = harness::find_row(label).app;
      config.machine.num_nodes = nodes;
      config.seed = seed;
      pending.push_back(std::async(std::launch::async, [config] {
        return harness::run_normal(config);
      }));
    }
    for (std::size_t i = 0; i < app_labels.size(); ++i) {
      normals.emplace(app_labels[i], pending[i].get());
    }
  }

  // One campaign per (app, mtbf, scheme) cell; cells are independent, so
  // fan out and collect in fixed order (output never depends on completion
  // order).
  std::vector<Cell> cells;
  for (const std::string& label : app_labels) {
    for (double frac : mtbf_fracs) {
      for (harness::Scheme scheme : campaign_schemes()) {
        cells.push_back(Cell{label, frac, scheme, {}});
      }
    }
  }
  {
    std::vector<std::future<faultsim::CampaignResult>> pending;
    pending.reserve(cells.size());
    for (const Cell& cell : cells) {
      const harness::ExperimentResult& normal = normals.at(cell.app);
      faultsim::CampaignConfig config;
      config.base.label = cell.app;
      config.base.app = harness::find_row(cell.app).app;
      config.base.scheme = cell.scheme;
      config.base.machine.num_nodes = nodes;
      config.base.seed = seed;
      config.base.checkpoints = checkpoints;
      config.base.interval = des::Duration::seconds(normal.exec_time_s / intervals);
      config.mtbf = des::Duration::seconds(normal.exec_time_s * cell.mtbf_frac);
      config.runs = runs;
      config.campaign_seed = campaign_seed;
      config.max_failures_per_run = max_failures;
      config.expected_digest = normal.digest;
      if (link_faults.enabled()) {
        config.link_faults = link_faults;
        config.reliable_transport = transport;
      }
      if (storage_faults.enabled()) config.storage_faults = storage_faults;
      config.membership = membership;
      // The sweep always spans every scheme; independent schemes have no
      // coordinator to aim at, so they keep the uniform victim draw.
      config.target_coordinator =
          target_coordinator && chklib::is_coordinated(cell.scheme);
      config.keep_depth = keep_depth;
      pending.push_back(std::async(std::launch::async, [config] {
        return faultsim::run_campaign(config);
      }));
    }
    for (std::size_t i = 0; i < cells.size(); ++i) cells[i].result = pending[i].get();
  }

  // Expected-completion-time table: rows = app x MTBF, columns = schemes.
  std::vector<std::string> header{"app", "MTBF/T"};
  for (harness::Scheme scheme : campaign_schemes()) {
    header.emplace_back(to_string(scheme));
  }
  util::Table table(header);
  std::size_t cell_index = 0;
  bool all_verified = true;
  for (const std::string& label : app_labels) {
    for (double frac : mtbf_fracs) {
      std::vector<std::string> row{label, util::Table::fixed(frac, 2)};
      for (std::size_t s = 0; s < campaign_schemes().size(); ++s) {
        const faultsim::CampaignSummary& sum = cells[cell_index++].result.summary;
        all_verified = all_verified && sum.all_verified;
        const double slowdown =
            sum.mean_completion_s / normals.at(label).exec_time_s;
        row.push_back(util::format("{} ({}x)",
                                   util::Table::fixed(sum.mean_completion_s, 1),
                                   util::Table::fixed(slowdown, 2)));
      }
      table.add_row(std::move(row));
    }
  }
  std::fputs(
      table
          .render(util::format(
              "Expected completion time under failures (s, mean of {} runs; "
              "MTBF as a fraction of the failure-free time T; every run "
              "injects Poisson failures plus targeted mid-write and "
              "during-recovery strikes; digests verified: {})",
              runs, all_verified ? "yes" : "NO"))
          .c_str(),
      stdout);

  // Machine-readable document: fixed iteration order, simulated quantities
  // only — byte-identical across repeats with the same seeds.
  using obs::json::Value;
  Value doc = Value::object();
  doc.set("table", Value::string("campaign"));
  doc.set("nodes", Value::number(std::uint64_t{nodes}));
  doc.set("runs", Value::number(std::uint64_t{runs}));
  doc.set("max_failures_per_run", Value::number(std::uint64_t{max_failures}));
  doc.set("seed", Value::number(seed));
  doc.set("campaign_seed", Value::number(campaign_seed));
  doc.set("link_loss", Value::number(link_faults.drop));
  doc.set("link_dup", Value::number(link_faults.duplicate));
  doc.set("link_corrupt", Value::number(link_faults.corrupt));
  doc.set("link_delay", Value::number(link_faults.delay_prob));
  doc.set("reliable_transport", Value::boolean(transport));
  doc.set("io_error", Value::number(storage_faults.write_error));
  doc.set("io_degrade", Value::number(storage_faults.degrade_factor));
  doc.set("bitrot", Value::number(storage_faults.bitrot));
  doc.set("keep_depth", Value::number(std::uint64_t{keep_depth}));
  doc.set("detect_timeout_s",
          Value::number(membership.has_value()
                            ? membership->detect_timeout.to_seconds()
                            : 0.0));
  doc.set("hb_period_s",
          Value::number(membership.has_value() ? membership->hb_period.to_seconds()
                                               : 0.0));
  doc.set("detector",
          Value::string(membership.has_value()
                            ? chklib::membership::to_string(membership->detector)
                            : "off"));
  doc.set("phi_threshold",
          Value::number(
              membership.has_value() &&
                      membership->detector == chklib::membership::Detector::kPhiAccrual
                  ? static_cast<double>(membership->accrual.threshold_milli) / 1000.0
                  : 0.0));
  doc.set("phi_window",
          Value::number(
              membership.has_value() &&
                      membership->detector == chklib::membership::Detector::kPhiAccrual
                  ? std::uint64_t{membership->accrual.window}
                  : std::uint64_t{0}));
  doc.set("target_coordinator", Value::boolean(target_coordinator));
  doc.set("all_verified", Value::boolean(all_verified));
  Value row_array = Value::array();
  cell_index = 0;
  for (const std::string& label : app_labels) {
    const harness::ExperimentResult& normal = normals.at(label);
    for (double frac : mtbf_fracs) {
      Value entry = Value::object();
      entry.set("app", Value::string(label));
      entry.set("normal_exec_s", Value::number(normal.exec_time_s));
      entry.set("mtbf_frac", Value::number(frac));
      entry.set("mtbf_s", Value::number(normal.exec_time_s * frac));
      Value cell_array = Value::array();
      for (std::size_t s = 0; s < campaign_schemes().size(); ++s) {
        const Cell& cell = cells[cell_index++];
        Value cv = Value::object();
        cv.set("scheme", Value::string(std::string(to_string(cell.scheme))));
        cv.set("summary", faultsim::summary_to_json(cell.result.summary));
        Value run_array = Value::array();
        for (const faultsim::RunOutcome& outcome : cell.result.outcomes) {
          run_array.push_back(faultsim::outcome_to_json(outcome));
        }
        cv.set("runs", std::move(run_array));
        cell_array.push_back(std::move(cv));
      }
      entry.set("cells", std::move(cell_array));
      row_array.push_back(std::move(entry));
    }
  }
  doc.set("rows", std::move(row_array));
  const std::string path = cli.get("json-out", "BENCH_campaign.json");
  obs::write_text_file(path, doc.dump() + "\n");
  std::printf("\nWrote %s\n", path.c_str());
  return all_verified ? 0 : 1;
}
