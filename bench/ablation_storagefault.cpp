// Storage-fault ablation: scheme robustness and cost over unreliable
// stable storage.
//
// The paper treats the stable store as perfectly reliable; this sweep
// measures what absorbing storage misbehaviour costs. Each error point
// sets the per-operation write/read I/O-error probability to `rate`,
// silent bit-rot to rate/5 and a 1.5x degraded-throughput window process,
// then runs every paper scheme on the same app under an identical crash
// schedule (Poisson failures plus targeted mid-write and during-recovery
// strikes). The retrying storage client absorbs transient errors, failed
// rounds/intervals are skipped or re-initiated, and verified recovery
// falls back past rotted generations — so every run must still reproduce
// the failure-free digest.
//
//   ./ablation_storagefault [--app=SOR-384] [--rates=0.05,0.1,0.2]
//                           [--nodes=8] [--checkpoints=0] [--intervals=5]
//                           [--mtbf-frac=0.7] [--max-failures=3]
//                           [--seed=2026]
//                           [--json-out=BENCH_storagefault.json] [--quick]
//
// --quick shrinks the sweep (1 error point). Output is byte-identical
// across repeats with the same seed.
#include <cstdio>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The five scheme columns of the paper's Table 1, in paper order.
const std::vector<harness::Scheme>& sweep_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kIndep, harness::Scheme::kCoordNBM,
      harness::Scheme::kIndepM, harness::Scheme::kCoordNBMS};
  return schemes;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);

  const std::string app_label = cli.get("app", "SOR-384");
  std::vector<double> rates;
  try {
    for (const std::string& tok :
         split_list(cli.get("rates", quick ? "0.1" : "0.05,0.1,0.2"))) {
      char* end = nullptr;
      const double rate = std::strtod(tok.c_str(), &end);
      if (tok.empty() || end != tok.c_str() + tok.size() || rate != rate) {
        throw std::invalid_argument("--rates: expected a number, got \"" + tok + "\"");
      }
      if (rate < 0.0 || rate >= 1.0) {
        throw std::invalid_argument("--rates: error rates must be in [0, 1), got " + tok);
      }
      rates.push_back(rate);
    }
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "ablation_storagefault: %s\n", err.what());
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  const auto checkpoints = static_cast<std::uint32_t>(cli.get_int("checkpoints", 0));
  const double intervals = cli.get_double("intervals", 5.0);
  const double mtbf_frac = cli.get_double("mtbf-frac", 0.7);
  const auto max_failures = static_cast<std::uint32_t>(cli.get_int("max-failures", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  // Baseline: failure-free, perfect storage — sets the checkpoint interval,
  // the crash process MTBF and the digest every faulted run must compute.
  harness::ExperimentConfig base;
  base.label = app_label;
  base.app = harness::find_row(app_label).app;
  base.machine.num_nodes = nodes;
  base.seed = seed;
  base.checkpoints = checkpoints;
  const harness::ExperimentResult normal = harness::run_normal(base);
  base.interval = des::Duration::seconds(normal.exec_time_s / intervals);
  // Identical crash schedule at every error point: the fault plan's arrival
  // stream is schedule-independent, so the columns isolate pure storage-
  // fault cost under the same failures.
  faultsim::FaultPlan crashes;
  crashes.mtbf = des::Duration::seconds(normal.exec_time_s * mtbf_frac);
  crashes.max_failures = max_failures;
  crashes.stream = 1;
  base.faults = crashes;

  // Rate 0 first (the per-scheme reference: crashes but perfect storage),
  // then the sweep; all cells fan out and are collected in fixed order.
  std::vector<double> points;
  points.push_back(0.0);
  points.insert(points.end(), rates.begin(), rates.end());
  std::vector<harness::ExperimentResult> results(points.size() * sweep_schemes().size());
  {
    std::vector<std::future<harness::ExperimentResult>> pending;
    pending.reserve(results.size());
    for (double rate : points) {
      for (harness::Scheme scheme : sweep_schemes()) {
        harness::ExperimentConfig config = base;
        config.scheme = scheme;
        if (rate > 0.0) {
          xplorer::StorageFaultConfig faults;
          faults.write_error = rate;
          faults.read_error = rate;
          faults.bitrot = rate / 5;
          faults.degrade_factor = 1.5;
          config.storage_faults = faults;
        }
        pending.push_back(std::async(std::launch::async, [config] {
          return harness::run_experiment(config);
        }));
      }
    }
    for (std::size_t i = 0; i < results.size(); ++i) results[i] = pending[i].get();
  }

  bool all_ok = true;
  for (const harness::ExperimentResult& r : results) {
    all_ok = all_ok && r.digest == normal.digest && r.invariant_violations == 0;
  }

  std::vector<std::string> header{"rate"};
  for (harness::Scheme scheme : sweep_schemes()) header.emplace_back(to_string(scheme));
  util::Table table(header);
  std::size_t index = 0;
  const std::size_t columns = sweep_schemes().size();
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<std::string> row{util::Table::fixed(points[p], 2)};
    for (std::size_t s = 0; s < columns; ++s) {
      const harness::ExperimentResult& r = results[index++];
      const double reference = results[s].exec_time_s;  // rate 0, same scheme
      const double overhead = (r.exec_time_s / reference - 1.0) * 100.0;
      row.push_back(util::format("{} ({}%) rty={} gen={}",
                                 util::Table::fixed(r.exec_time_s, 1),
                                 util::Table::fixed(overhead, 1), r.storage_retries,
                                 r.generations_skipped));
    }
    table.add_row(std::move(row));
  }
  std::fputs(
      table
          .render(util::format(
              "{} on {} nodes over unreliable stable storage (write/read "
              "error=rate, bit-rot=rate/5, 1.5x degraded windows; identical "
              "crash schedule per column, MTBF {}T, <= {} failures; exec "
              "time s, overhead vs the same scheme at rate 0, client "
              "retries, generation fallbacks; digests + invariants "
              "verified: {})",
              app_label, nodes, util::Table::fixed(mtbf_frac, 2), max_failures,
              all_ok ? "yes" : "NO"))
          .c_str(),
      stdout);

  using obs::json::Value;
  Value doc = Value::object();
  doc.set("table", Value::string("storagefault"));
  doc.set("app", Value::string(app_label));
  doc.set("nodes", Value::number(std::uint64_t{nodes}));
  doc.set("seed", Value::number(seed));
  doc.set("mtbf_frac", Value::number(mtbf_frac));
  doc.set("max_failures", Value::number(std::uint64_t{max_failures}));
  doc.set("normal_exec_s", Value::number(normal.exec_time_s));
  doc.set("all_verified", Value::boolean(all_ok));
  Value row_array = Value::array();
  index = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    Value entry = Value::object();
    entry.set("rate", Value::number(points[p]));
    Value cell_array = Value::array();
    for (std::size_t s = 0; s < columns; ++s) {
      const harness::ExperimentResult& r = results[index++];
      Value cv = Value::object();
      cv.set("scheme", Value::string(std::string(to_string(r.scheme))));
      cv.set("exec_s", Value::number(r.exec_time_s));
      cv.set("io_write_errors", Value::number(r.io_write_errors));
      cv.set("io_read_errors", Value::number(r.io_read_errors));
      cv.set("bitrot_injected", Value::number(r.bitrot_injected));
      cv.set("degraded_ops", Value::number(r.degraded_ops));
      cv.set("storage_retries", Value::number(r.storage_retries));
      cv.set("storage_write_failures", Value::number(r.storage_write_failures));
      cv.set("storage_read_failures", Value::number(r.storage_read_failures));
      cv.set("storage_retry_wait_s", Value::number(r.storage_retry_wait_s));
      cv.set("ckpt_write_failures", Value::number(r.ckpt_write_failures));
      cv.set("commit_write_failures", Value::number(std::uint64_t{r.commit_write_failures}));
      cv.set("corrupt_discarded", Value::number(r.corrupt_discarded));
      cv.set("generations_skipped", Value::number(std::uint64_t{r.generations_skipped}));
      cv.set("reclaimed_bytes", Value::number(r.reclaimed_bytes));
      cv.set("aborted_rounds", Value::number(std::uint64_t{r.aborted_rounds}));
      cv.set("committed_rounds", Value::number(std::uint64_t{r.committed_rounds}));
      cv.set("recoveries", Value::number(std::uint64_t{r.recoveries.size()}));
      cv.set("digest_ok", Value::boolean(r.digest == normal.digest));
      cv.set("invariant_violations", Value::number(r.invariant_violations));
      cell_array.push_back(std::move(cv));
    }
    entry.set("cells", std::move(cell_array));
    row_array.push_back(std::move(entry));
  }
  doc.set("rows", std::move(row_array));
  const std::string path = cli.get("json-out", "BENCH_storagefault.json");
  obs::write_text_file(path, doc.dump() + "\n");
  std::printf("\nWrote %s\n", path.c_str());
  return all_ok ? 0 : 1;
}
