// Ablation: incremental checkpointing (the related-work technique of [13])
// on top of Coord_NBM, across applications with very different dirty-state
// profiles:
//   ISING — quenched couplings never change: deltas are small;
//   GAUSS — rows freeze as the pivot passes them: deltas shrink over time;
//   SOR   — every *reached* cell is dirtied each iteration, but heat
//           propagates one row per iteration, so early checkpoints of a
//           large cold grid still have large clean (exactly-zero) regions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

ExperimentConfig cell_config(const BenchRow& row, bool incremental, double normal_exec_s) {
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = Scheme::kCoordNBM;
  config.checkpoints = 6;
  config.interval = des::Duration::seconds(normal_exec_s / 7.0);
  config.incremental = incremental;
  config.full_every = 3;
  return config;
}

std::string key_of(const std::string& label, bool incremental) {
  return util::format("{}/{}", label, incremental ? "incremental" : "full");
}

void register_benchmarks() {
  for (const char* label : {"ISING-1024", "GAUSS-1024", "SOR-1024"}) {
    const BenchRow row = harness::find_row(label);
    for (bool incremental : {false, true}) {
      benchmark::RegisterBenchmark(
          util::format("Incremental/{}/{}", row.label, incremental ? "inc" : "full")
              .c_str(),
          [row, incremental](benchmark::State& state) {
            auto& cache = ResultCache::instance();
            const auto& normal = cache.normal(row);
            for (auto _ : state) {
              const auto& result = cache.run(key_of(row.label, incremental),
                                             cell_config(row, incremental, normal.exec_time_s));
              set_common_counters(state, result, normal);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  util::Table table({"app", "mode", "overhead", "ckpt bytes written", "bytes saved"});
  for (const char* label : {"ISING-1024", "GAUSS-1024", "SOR-1024"}) {
    const auto normal = cache.lookup(cell_key(label, Scheme::kNone));
    const auto full = cache.lookup(key_of(label, false));
    const auto inc = cache.lookup(key_of(label, true));
    if (!normal || !full || !inc) continue;
    for (bool incremental : {false, true}) {
      const auto& result = incremental ? *inc : *full;
      table.add_row({label, incremental ? "incremental" : "full",
                     util::Table::percent(result.exec_time_s / normal->exec_time_s - 1.0, 2),
                     util::Table::bytes(static_cast<double>(result.bytes_written)),
                     incremental
                         ? util::Table::percent(
                               1.0 - static_cast<double>(inc->bytes_written) /
                                         static_cast<double>(full->bytes_written),
                               1)
                         : std::string("-")});
    }
    table.add_separator();
  }
  std::fputs(table.render("Incremental checkpointing on Coord_NBM "
                          "(6 checkpoints, full image every 3rd)")
                 .c_str(),
             stdout);
  std::puts("\nIncremental checkpointing attacks the same bottleneck the paper\n"
            "identified (checkpoint saving), and helps exactly where the dirty\n"
            "fraction is small — the mechanism behind [13]'s results.");
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  return 0;
}
