// svc latency sweep: the five paper schemes measured by what a live
// request-serving workload feels — tail latency SLOs — instead of batch
// completion time.
//
// Each cell hosts the sharded KV service (src/svc) on `--nodes` ranks,
// drives it with an open-loop Poisson client population at one arrival
// rate, runs one checkpoint scheme, and (at faulty points) a Poisson crash
// process with the given MTBF. Per-request end-to-end latency is measured
// against the *scheduled* arrival instant, so freezes, checkpoint drains
// and recovery windows land in the tail exactly as a live population would
// experience them. Every run must reproduce the simulator-free LWW
// reference digest — faults may cost latency, never data.
//
//   ./svc_latency [--nodes=8] [--rates=200,400] [--mtbfs=0,1.5]
//                 [--horizon=4] [--interval=0.8] [--max-failures=2]
//                 [--membership] [--detector=binary|phi] [--detect-timeout=0.6]
//                 [--hb-period=0.25] [--phi-threshold=8] [--phi-window=32]
//                 [--seed=2026] [--json-out=BENCH_svc.json] [--quick]
//
// --rates are per-rank arrival rates (Hz); --mtbfs are crash-process MTBFs
// in seconds, 0 = fault-free. --membership puts the cluster-membership
// service under the latency lens: every sweep cell runs heartbeat
// detection during the request traffic (crashes are *detected*, not
// oracle-reported), and a second section kills the elected coordinator
// mid-traffic for every scheme — one view change, measured detection
// latency, and the membership_wait attribution bucket keeping the
// blocked-time partition exact. --detector picks binary or phi-accrual
// suspicion (phi knobs with --detector=binary are rejected). --quick
// shrinks the sweep to one rate and {fault-free, one faulty} points.
// Output is byte-identical across repeats with the same seed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "svc/kvstore.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;

std::vector<double> parse_list(const std::string& flag, const std::string& csv,
                               double min, double max) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) {
      const std::string tok = csv.substr(start, end - start);
      char* tail = nullptr;
      const double v = std::strtod(tok.c_str(), &tail);
      if (tail != tok.c_str() + tok.size() || v != v) {
        throw std::invalid_argument(flag + ": expected a number, got \"" + tok + "\"");
      }
      if (v < min || v > max) {
        throw std::invalid_argument(flag + ": value out of range: " + tok);
      }
      out.push_back(v);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument(flag + ": empty list");
  return out;
}

const std::vector<harness::Scheme>& sweep_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kIndep, harness::Scheme::kCoordNBM,
      harness::Scheme::kIndepM, harness::Scheme::kCoordNBMS};
  return schemes;
}

/// One cell of the sweep: the experiment outcome plus the merged workload
/// metrics rank 0 deposited at drain.
struct Cell {
  harness::ExperimentResult result;
  svc::SvcMetrics metrics;
};

/// Merged latency counts as a quantile-ready snapshot (edges in seconds).
obs::HistogramSnapshot latency_snapshot(const svc::SvcMetrics& m) {
  obs::HistogramSnapshot snap;
  snap.edges = obs::LogHistogram::make_edges(svc::kLatMinExp, svc::kLatMaxExp, 1e-9);
  snap.counts = m.latency_counts;
  if (snap.counts.empty()) snap.counts.assign(svc::kLatBuckets, 0);
  for (const std::uint64_t c : snap.counts) snap.total_count += c;
  snap.sum = static_cast<double>(m.latency_sum_ns) * 1e-9;
  return snap;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);

  std::vector<double> rates;
  std::vector<double> mtbfs;
  std::optional<chklib::membership::MembershipConfig> membership;
  try {
    rates = parse_list("--rates", cli.get("rates", quick ? "300" : "200,400"), 1.0, 1e6);
    mtbfs = parse_list("--mtbfs", cli.get("mtbfs", "0,1.5"), 0.0, 1e9);
    const bool membership_on = cli.get_bool("membership", false);
    if (!membership_on) {
      for (const char* flag :
           {"detector", "detect-timeout", "hb-period", "phi-threshold", "phi-window"}) {
        if (cli.has(flag)) {
          throw std::invalid_argument(std::string("--") + flag +
                                      " needs --membership (there is no detector "
                                      "to configure without it)");
        }
      }
    } else {
      chklib::membership::MembershipConfig m;
      m.detector = chklib::membership::parse_detector(cli.get("detector", "binary"));
      if (m.detector != chklib::membership::Detector::kPhiAccrual) {
        for (const char* flag : {"phi-threshold", "phi-window"}) {
          if (cli.has(flag)) {
            throw std::invalid_argument(std::string("--") + flag +
                                        " needs --detector=phi (the binary "
                                        "detector has no phi knobs)");
          }
        }
      } else {
        const double threshold = cli.get_nonneg_double("phi-threshold", 8.0);
        if (threshold <= 0) throw std::invalid_argument("--phi-threshold must be positive");
        const long window = cli.get_int("phi-window", 32);
        if (window <= 0) throw std::invalid_argument("--phi-window must be positive");
        m.accrual.threshold_milli = static_cast<std::int64_t>(threshold * 1000.0);
        m.accrual.window = static_cast<std::uint32_t>(window);
      }
      // Aggressive by default: the svc horizon is seconds, so detection at
      // the lax 2 s default would dominate every faulty cell's tail. The
      // links are clean here — storms need loss — so 0.6 s is safe.
      m.detect_timeout = des::Duration::seconds(cli.get_nonneg_double("detect-timeout", 0.6));
      m.hb_period = des::Duration::seconds(cli.get_nonneg_double("hb-period", 0.25));
      membership = m;
    }
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "svc_latency: %s\n", err.what());
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  const double horizon = cli.get_double("horizon", 4.0);
  const double interval = cli.get_double("interval", 0.8);
  const auto max_failures = static_cast<std::uint32_t>(cli.get_int("max-failures", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  if (nodes < 1 || nodes > 64 || horizon <= 0 || interval <= 0) {
    std::fprintf(stderr, "svc_latency: --nodes in [1,64], --horizon/--interval > 0\n");
    return 2;
  }
  if (membership.has_value()) {
    try {
      membership->validate(nodes);
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "svc_latency: %s\n", err.what());
      return 2;
    }
  }

  svc::SvcParams base_params;
  base_params.horizon_s = horizon;

  // Every cell must land on this digest: the shard contents are a pure
  // function of the generated request set (LWW), so scheme and fault
  // timing may shift latency but never the data. One reference per rate.
  std::vector<double> references;
  references.reserve(rates.size());
  for (const double rate : rates) {
    svc::SvcParams p = base_params;
    p.arrival_hz = rate;
    references.push_back(svc::svc_reference_digest(p, nodes, seed));
  }

  const std::size_t columns = sweep_schemes().size();
  std::vector<Cell> cells(rates.size() * mtbfs.size() * columns);
  {
    std::vector<std::future<Cell>> pending;
    pending.reserve(cells.size());
    for (const double rate : rates) {
      for (const double mtbf : mtbfs) {
        for (const harness::Scheme scheme : sweep_schemes()) {
          svc::SvcParams params = base_params;
          params.arrival_hz = rate;
          params.sink = std::make_shared<svc::SvcMetrics>();
          harness::ExperimentConfig config;
          config.label = util::format("svc-{}hz", rate);
          config.app = svc::make_svc(params);
          config.scheme = scheme;
          config.interval = des::Duration::seconds(interval);
          config.checkpoints = 0;  // keep checkpointing until the service drains
          config.seed = seed;
          config.membership = membership;
          if (mtbf > 0) {
            faultsim::FaultPlan crashes;
            crashes.mtbf = des::Duration::seconds(mtbf);
            crashes.max_failures = max_failures;
            crashes.stream = 1;
            config.faults = crashes;
          }
          pending.push_back(std::async(std::launch::async, [config, params] {
            Cell cell;
            cell.result = harness::run_experiment(config);
            cell.metrics = *params.sink;
            return cell;
          }));
        }
      }
    }
    for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = pending[i].get();
  }

  // Coordinator kill under traffic (--membership only): rank 0 — the
  // elected coordinator of the initial view — dies at mid-horizon while
  // requests flow, for every scheme at the first arrival rate. The
  // cluster must *detect* the death (one view change), and the
  // kMembershipWait episode must keep the per-rank blocked-time partition
  // exact, so these runs carry the obs tracer.
  std::vector<Cell> kill_cells;
  if (membership.has_value()) {
    kill_cells.resize(columns);
    std::vector<std::future<Cell>> pending;
    pending.reserve(columns);
    for (const harness::Scheme scheme : sweep_schemes()) {
      svc::SvcParams params = base_params;
      params.arrival_hz = rates.front();
      params.sink = std::make_shared<svc::SvcMetrics>();
      harness::ExperimentConfig config;
      config.label = util::format("svc-kill-{}hz", rates.front());
      config.app = svc::make_svc(params);
      config.scheme = scheme;
      config.interval = des::Duration::seconds(interval);
      config.checkpoints = 0;
      config.seed = seed;
      config.membership = membership;
      config.observe = true;
      config.failure = harness::FailureSpec{
          des::TimePoint::origin() + des::Duration::seconds(horizon * 0.5), 0};
      pending.push_back(std::async(std::launch::async, [config, params] {
        Cell cell;
        cell.result = harness::run_experiment(config);
        cell.metrics = *params.sink;
        return cell;
      }));
    }
    for (std::size_t i = 0; i < columns; ++i) kill_cells[i] = pending[i].get();
  }
  // Exactness of the attribution partition: every rank's bucket sum must
  // equal its total (the obs_test tolerance).
  auto partition_exact = [](const Cell& cell) {
    if (!cell.result.obs.has_value()) return false;
    for (const obs::RankBuckets& rank : cell.result.obs->attribution.ranks) {
      if (std::fabs(rank.bucket_sum_s() - rank.total_s()) > 1e-9) return false;
    }
    return true;
  };

  bool all_ok = true;
  {
    std::size_t index = 0;
    for (std::size_t r = 0; r < rates.size(); ++r) {
      for (std::size_t m = 0; m < mtbfs.size(); ++m) {
        for (std::size_t s = 0; s < columns; ++s) {
          const Cell& cell = cells[index++];
          all_ok = all_ok && cell.result.digest == references[r] &&
                   cell.result.invariant_violations == 0 &&
                   cell.metrics.completed == cell.metrics.issued;
        }
      }
    }
    for (const Cell& cell : kill_cells) {
      all_ok = all_ok && cell.result.digest == references.front() &&
               cell.result.invariant_violations == 0 &&
               cell.metrics.completed == cell.metrics.issued &&
               cell.result.membership_crashes == 1 &&
               cell.result.views_established >= 1 && partition_exact(cell);
    }
  }

  std::vector<std::string> header{"rate", "mtbf"};
  for (const harness::Scheme scheme : sweep_schemes()) header.emplace_back(to_string(scheme));
  util::Table table(header);
  std::size_t index = 0;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    for (std::size_t m = 0; m < mtbfs.size(); ++m) {
      std::vector<std::string> row{util::Table::fixed(rates[r], 0),
                                   util::Table::fixed(mtbfs[m], 1)};
      for (std::size_t s = 0; s < columns; ++s) {
        const Cell& cell = cells[index++];
        const obs::HistogramSnapshot snap = latency_snapshot(cell.metrics);
        const double p50 = obs::histogram_quantile(snap, 0.50);
        const double p99 = obs::histogram_quantile(snap, 0.99);
        const double p999 = obs::histogram_quantile(snap, 0.999);
        row.push_back(util::format("{}/{}/{} ms rec={}",
                                   util::Table::fixed(p50 * 1e3, 2),
                                   util::Table::fixed(p99 * 1e3, 1),
                                   util::Table::fixed(p999 * 1e3, 1),
                                   cell.result.recoveries.size()));
      }
      table.add_row(std::move(row));
    }
  }
  std::fputs(
      table
          .render(util::format(
              "svc on {} nodes: end-to-end request latency p50/p99/p999 "
              "(upper-edge bounds) and recovery count per scheme; open-loop "
              "Poisson arrivals per rank, horizon {} s, checkpoint interval "
              "{} s, crash MTBF per row (0 = fault-free, <= {} failures); "
              "digests + invariants + open-loop conservation verified: {})",
              nodes, util::Table::fixed(horizon, 1), util::Table::fixed(interval, 1),
              max_failures, all_ok ? "yes" : "NO"))
          .c_str(),
      stdout);

  if (!kill_cells.empty()) {
    util::Table kill_table({"scheme", "p50/p99/p999 ms", "views", "detect_s",
                            "mwait_s", "partition", "digest"});
    for (const Cell& cell : kill_cells) {
      const obs::HistogramSnapshot snap = latency_snapshot(cell.metrics);
      const double detect_s = cell.result.detection_latency_ns.empty()
                                  ? 0.0
                                  : static_cast<double>(
                                        cell.result.detection_latency_ns.front()) *
                                        1e-9;
      const double mwait = cell.result.obs.has_value()
                               ? cell.result.obs->attribution.total.membership_wait_s
                               : 0.0;
      kill_table.add_row(
          {std::string(to_string(cell.result.scheme)),
           util::format("{}/{}/{}",
                        util::Table::fixed(obs::histogram_quantile(snap, 0.50) * 1e3, 2),
                        util::Table::fixed(obs::histogram_quantile(snap, 0.99) * 1e3, 1),
                        util::Table::fixed(obs::histogram_quantile(snap, 0.999) * 1e3, 1)),
           std::to_string(cell.result.views_established),
           util::Table::fixed(detect_s, 2), util::Table::fixed(mwait, 2),
           partition_exact(cell) ? "exact" : "BROKEN",
           cell.result.digest == references.front() ? "ok" : "BAD"});
    }
    std::fputs(
        kill_table
            .render(util::format(
                "Coordinator (rank 0) killed at {} s under {} Hz traffic, {} "
                "detector: the cluster detects the death mid-traffic (one view "
                "change), tail latency absorbs detection + recovery, and the "
                "membership_wait bucket keeps the per-rank blocked-time "
                "partition exact",
                util::Table::fixed(horizon * 0.5, 1), util::Table::fixed(rates.front(), 0),
                chklib::membership::to_string(membership->detector)))
            .c_str(),
        stdout);
  }

  using obs::json::Value;
  Value doc = Value::object();
  doc.set("table", Value::string("svc_latency"));
  doc.set("nodes", Value::number(std::uint64_t{nodes}));
  doc.set("seed", Value::number(seed));
  doc.set("horizon_s", Value::number(horizon));
  doc.set("interval_s", Value::number(interval));
  doc.set("max_failures", Value::number(std::uint64_t{max_failures}));
  doc.set("membership", Value::boolean(membership.has_value()));
  doc.set("detector",
          Value::string(membership.has_value()
                            ? chklib::membership::to_string(membership->detector)
                            : "off"));
  doc.set("detect_timeout_s",
          Value::number(membership.has_value()
                            ? membership->detect_timeout.to_seconds()
                            : 0.0));
  doc.set("hb_period_s",
          Value::number(membership.has_value() ? membership->hb_period.to_seconds()
                                               : 0.0));
  doc.set("all_verified", Value::boolean(all_ok));
  Value row_array = Value::array();
  index = 0;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    for (std::size_t m = 0; m < mtbfs.size(); ++m) {
      Value entry = Value::object();
      entry.set("arrival_hz", Value::number(rates[r]));
      entry.set("mtbf_s", Value::number(mtbfs[m]));
      entry.set("reference_digest", Value::number(references[r]));
      Value cell_array = Value::array();
      for (std::size_t s = 0; s < columns; ++s) {
        const Cell& cell = cells[index++];
        const obs::HistogramSnapshot snap = latency_snapshot(cell.metrics);
        Value cv = Value::object();
        cv.set("scheme", Value::string(std::string(to_string(cell.result.scheme))));
        cv.set("exec_s", Value::number(cell.result.exec_time_s));
        cv.set("issued", Value::number(cell.metrics.issued));
        cv.set("completed", Value::number(cell.metrics.completed));
        cv.set("hits", Value::number(cell.metrics.hits));
        cv.set("live_keys", Value::number(cell.metrics.live_keys));
        cv.set("live_bytes", Value::number(cell.metrics.live_bytes));
        cv.set("lat_p50_s", Value::number(obs::histogram_quantile(snap, 0.50)));
        cv.set("lat_p99_s", Value::number(obs::histogram_quantile(snap, 0.99)));
        cv.set("lat_p999_s", Value::number(obs::histogram_quantile(snap, 0.999)));
        cv.set("lat_mean_s",
               Value::number(snap.total_count == 0
                                 ? 0.0
                                 : snap.sum / static_cast<double>(snap.total_count)));
        cv.set("lat_max_s",
               Value::number(static_cast<double>(cell.metrics.latency_max_ns) * 1e-9));
        cv.set("queue_wait_s",
               Value::number(static_cast<double>(cell.metrics.queue_wait_sum_ns) * 1e-9));
        Value counts = Value::array();
        for (const std::uint64_t c : snap.counts) counts.push_back(Value::number(c));
        cv.set("lat_counts", std::move(counts));
        // Recovery-downtime windows: when each failure hit and how long the
        // service was down until every process was restarted.
        Value recoveries = Value::array();
        double downtime = 0;
        for (const harness::RecoveryReport& rec : cell.result.recoveries) {
          Value rv = Value::object();
          rv.set("failed_at_s", Value::number(rec.failed_at.to_seconds()));
          rv.set("failed_rank", Value::number(std::uint64_t{rec.failed_rank}));
          rv.set("downtime_s", Value::number(rec.recovery_latency.to_seconds()));
          recoveries.push_back(std::move(rv));
          downtime += rec.recovery_latency.to_seconds();
        }
        cv.set("recoveries", std::move(recoveries));
        cv.set("downtime_total_s", Value::number(downtime));
        // The measured checkpoint-image curve: the shard grows and shrinks
        // with the put/delete mix, so bytes per capture is data, not a
        // constant.
        Value images = Value::array();
        for (const chklib::ProtocolStats::ImageRecord& img : cell.result.image_log) {
          Value iv = Value::object();
          iv.set("index", Value::number(std::uint64_t{img.index}));
          iv.set("rank", Value::number(std::uint64_t{img.rank}));
          iv.set("bytes", Value::number(img.bytes));
          iv.set("at_s", Value::number(static_cast<double>(img.at_ns) * 1e-9));
          iv.set("delta", Value::boolean(img.delta));
          images.push_back(std::move(iv));
        }
        cv.set("image_log", std::move(images));
        cv.set("bytes_written", Value::number(cell.result.bytes_written));
        cv.set("local_checkpoints", Value::number(cell.result.local_checkpoints));
        cv.set("committed_rounds", Value::number(std::uint64_t{cell.result.committed_rounds}));
        if (membership.has_value()) {
          cv.set("heartbeats_sent", Value::number(cell.result.heartbeats_sent));
          cv.set("suspicions", Value::number(cell.result.suspicions));
          cv.set("suspicions_cleared", Value::number(cell.result.suspicions_cleared));
          cv.set("views_established", Value::number(cell.result.views_established));
          cv.set("evictions", Value::number(cell.result.evictions));
          cv.set("wrongful_evictions", Value::number(cell.result.wrongful_evictions));
          cv.set("detections", Value::number(cell.result.detections));
          cv.set("membership_crashes", Value::number(cell.result.membership_crashes));
        }
        cv.set("digest_ok", Value::boolean(cell.result.digest == references[r]));
        cv.set("invariant_violations", Value::number(cell.result.invariant_violations));
        cell_array.push_back(std::move(cv));
      }
      entry.set("cells", std::move(cell_array));
      row_array.push_back(std::move(entry));
    }
  }
  doc.set("rows", std::move(row_array));
  if (!kill_cells.empty()) {
    Value kill_array = Value::array();
    for (const Cell& cell : kill_cells) {
      const obs::HistogramSnapshot snap = latency_snapshot(cell.metrics);
      Value kv = Value::object();
      kv.set("scheme", Value::string(std::string(to_string(cell.result.scheme))));
      kv.set("exec_s", Value::number(cell.result.exec_time_s));
      kv.set("lat_p50_s", Value::number(obs::histogram_quantile(snap, 0.50)));
      kv.set("lat_p99_s", Value::number(obs::histogram_quantile(snap, 0.99)));
      kv.set("lat_p999_s", Value::number(obs::histogram_quantile(snap, 0.999)));
      kv.set("views_established", Value::number(cell.result.views_established));
      kv.set("evictions", Value::number(cell.result.evictions));
      kv.set("wrongful_evictions", Value::number(cell.result.wrongful_evictions));
      kv.set("detections", Value::number(cell.result.detections));
      kv.set("membership_crashes", Value::number(cell.result.membership_crashes));
      kv.set("forced_recoveries", Value::number(cell.result.forced_recoveries));
      Value lats = Value::array();
      for (const std::int64_t ns : cell.result.detection_latency_ns) {
        lats.push_back(Value::number(static_cast<double>(ns) * 1e-9));
      }
      kv.set("detection_latency_s", std::move(lats));
      kv.set("membership_wait_s",
             Value::number(cell.result.obs.has_value()
                               ? cell.result.obs->attribution.total.membership_wait_s
                               : 0.0));
      kv.set("partition_exact", Value::boolean(partition_exact(cell)));
      kv.set("digest_ok", Value::boolean(cell.result.digest == references.front()));
      kv.set("invariant_violations", Value::number(cell.result.invariant_violations));
      kill_array.push_back(std::move(kv));
    }
    doc.set("coordinator_kill", std::move(kill_array));
  }
  const std::string path = cli.get("json-out", "BENCH_svc.json");
  obs::write_text_file(path, doc.dump() + "\n");
  std::printf("\nWrote %s\n", path.c_str());
  return all_ok ? 0 : 1;
}
