// Membership ablation: failure-detection timeout vs link loss.
//
// The membership service turns failure handling from an oracle into a
// protocol: heartbeats, suspicion quorums, view changes, election and
// fencing. Its central knob is the detection timeout, and this sweep
// measures both sides of that tradeoff on lossy links. A conservative
// timeout rides out loss bursts but leaves real crashes undetected for
// seconds; an aggressive timeout under heavy loss evicts perfectly live
// ranks — the false-suspicion storm. The headline cell is the most
// aggressive timeout under 20% frame loss: live ranks get evicted, fenced,
// and must rejoin, yet every run still verifies the failure-free digest —
// fencing keeps wrongful evictions from corrupting a commit.
//
// A second section kills the *coordinator* mid-round for each coordinated
// scheme: the cluster detects the death, elects a successor (the view id
// encodes it), re-initiates the aborted round at a higher epoch, and the
// run completes verified — the scenario that was impossible while the
// coordinator was immortal by construction.
//
//   ./ablation_membership [--app=SOR-384] [--timeouts=0.6,1.5,4.0]
//                         [--losses=0,0.05,0.2] [--hb-period=0.25]
//                         [--nodes=8] [--checkpoints=0] [--intervals=5]
//                         [--seed=2026] [--json-out=BENCH_membership.json]
//                         [--quick]
//
// --quick shrinks the sweep (2 timeouts x 2 loss points). Output is
// byte-identical across repeats with the same seed.
#include <cstdio>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<double> parse_doubles(const util::Cli& cli, const std::string& key,
                                  const std::string& fallback, double lo, double hi) {
  std::vector<double> out;
  for (const std::string& tok : split_list(cli.get(key, fallback))) {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size() || v != v) {
      throw std::invalid_argument("--" + key + ": expected a number, got \"" + tok + "\"");
    }
    if (v < lo || v >= hi) {
      throw std::invalid_argument("--" + key + ": values must be in [" +
                                  std::to_string(lo) + ", " + std::to_string(hi) +
                                  "), got " + tok);
    }
    out.push_back(v);
  }
  return out;
}

/// The five scheme columns of the paper's Table 1, in paper order.
const std::vector<harness::Scheme>& sweep_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kIndep, harness::Scheme::kCoordNBM,
      harness::Scheme::kIndepM, harness::Scheme::kCoordNBMS};
  return schemes;
}

/// The coordinated schemes whose coordinator the kill section murders.
const std::vector<harness::Scheme>& coordinated_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kCoordNBM,
      harness::Scheme::kCoordNBMS};
  return schemes;
}

obs::json::Value cell_json(const harness::ExperimentResult& r, bool digest_ok) {
  using obs::json::Value;
  Value cv = Value::object();
  cv.set("scheme", Value::string(std::string(to_string(r.scheme))));
  cv.set("exec_s", Value::number(r.exec_time_s));
  cv.set("heartbeats_sent", Value::number(r.heartbeats_sent));
  cv.set("suspicions", Value::number(r.suspicions));
  cv.set("views_established", Value::number(r.views_established));
  cv.set("evictions", Value::number(r.evictions));
  cv.set("wrongful_evictions", Value::number(r.wrongful_evictions));
  cv.set("rejoins", Value::number(r.rejoins));
  cv.set("crashes", Value::number(r.membership_crashes));
  cv.set("forced_recoveries", Value::number(r.forced_recoveries));
  cv.set("aborted_rounds", Value::number(std::uint64_t{r.aborted_rounds}));
  cv.set("committed_rounds", Value::number(std::uint64_t{r.committed_rounds}));
  cv.set("retransmits", Value::number(r.retransmits));
  cv.set("digest_ok", Value::boolean(digest_ok));
  cv.set("invariant_violations", Value::number(r.invariant_violations));
  return cv;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);

  const std::string app_label = cli.get("app", "SOR-384");
  std::vector<double> timeouts;
  std::vector<double> losses;
  double hb_period = 0.25;
  try {
    timeouts = parse_doubles(cli, "timeouts", quick ? "0.6,4.0" : "0.6,1.5,4.0",
                             1e-3, 1e3);
    losses = parse_doubles(cli, "losses", quick ? "0,0.2" : "0,0.05,0.2", 0.0, 1.0);
    hb_period = cli.get_nonneg_double("hb-period", 0.25);
    for (double t : timeouts) {
      if (t <= hb_period) {
        throw std::invalid_argument(
            "--timeouts: every detection timeout must exceed --hb-period (" +
            std::to_string(hb_period) + " s)");
      }
    }
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "ablation_membership: %s\n", err.what());
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  const auto checkpoints = static_cast<std::uint32_t>(cli.get_int("checkpoints", 0));
  const double intervals = cli.get_double("intervals", 5.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  // Baseline: failure-free, perfect links, no detector — sets the
  // checkpoint interval and the digest every membership run must still
  // compute (fencing has to keep wrongful evictions answer-preserving).
  harness::ExperimentConfig base;
  base.label = app_label;
  base.app = harness::find_row(app_label).app;
  base.machine.num_nodes = nodes;
  base.seed = seed;
  base.checkpoints = checkpoints;
  const harness::ExperimentResult normal = harness::run_normal(base);
  base.interval = des::Duration::seconds(normal.exec_time_s / intervals);

  // Section 1: detection-timeout x link-loss sweep, detector always on.
  std::vector<harness::ExperimentResult> results(timeouts.size() * losses.size() *
                                                 sweep_schemes().size());
  {
    std::vector<std::future<harness::ExperimentResult>> pending;
    pending.reserve(results.size());
    for (double timeout : timeouts) {
      for (double loss : losses) {
        for (harness::Scheme scheme : sweep_schemes()) {
          harness::ExperimentConfig config = base;
          config.scheme = scheme;
          chklib::membership::MembershipConfig membership;
          membership.detect_timeout = des::Duration::seconds(timeout);
          membership.hb_period = des::Duration::seconds(hb_period);
          config.membership = membership;
          if (loss > 0.0) {
            chklib::LinkFaultConfig faults;
            faults.drop = loss;
            faults.duplicate = loss / 2;
            faults.corrupt = loss / 4;
            config.link_faults = faults;
          }
          pending.push_back(std::async(std::launch::async, [config] {
            return harness::run_experiment(config);
          }));
        }
      }
    }
    for (std::size_t i = 0; i < results.size(); ++i) results[i] = pending[i].get();
  }

  // Section 2: coordinator killed mid-run, moderate timeout, clean links.
  // One strike, aimed at whoever the current elected coordinator is.
  std::vector<harness::ExperimentResult> kills(coordinated_schemes().size());
  {
    const double kill_timeout =
        timeouts.size() > 1 ? timeouts[timeouts.size() / 2] : timeouts.front();
    std::vector<std::future<harness::ExperimentResult>> pending;
    pending.reserve(kills.size());
    for (harness::Scheme scheme : coordinated_schemes()) {
      harness::ExperimentConfig config = base;
      config.scheme = scheme;
      chklib::membership::MembershipConfig membership;
      membership.detect_timeout = des::Duration::seconds(kill_timeout);
      membership.hb_period = des::Duration::seconds(hb_period);
      config.membership = membership;
      faultsim::FaultPlan plan;
      plan.mtbf = des::Duration::seconds(normal.exec_time_s * 0.4);
      plan.max_failures = 1;
      plan.target_coordinator = true;
      config.faults = plan;
      pending.push_back(std::async(std::launch::async, [config] {
        return harness::run_experiment(config);
      }));
    }
    for (std::size_t i = 0; i < kills.size(); ++i) kills[i] = pending[i].get();
  }

  bool all_ok = true;
  for (const harness::ExperimentResult& r : results) {
    all_ok = all_ok && r.digest == normal.digest && r.invariant_violations == 0;
  }
  for (const harness::ExperimentResult& r : kills) {
    all_ok = all_ok && r.digest == normal.digest && r.invariant_violations == 0;
  }

  std::vector<std::string> header{"timeout", "loss"};
  for (harness::Scheme scheme : sweep_schemes()) header.emplace_back(to_string(scheme));
  util::Table table(header);
  std::size_t index = 0;
  for (double timeout : timeouts) {
    for (double loss : losses) {
      std::vector<std::string> row{util::Table::fixed(timeout, 1),
                                   util::Table::fixed(loss, 2)};
      for (std::size_t s = 0; s < sweep_schemes().size(); ++s) {
        const harness::ExperimentResult& r = results[index++];
        row.push_back(util::format("{} ev={} wr={} rj={}",
                                   util::Table::fixed(r.exec_time_s, 1), r.evictions,
                                   r.wrongful_evictions, r.rejoins));
      }
      table.add_row(std::move(row));
    }
  }
  std::fputs(
      table
          .render(util::format(
              "{} on {} nodes with the membership detector on (hb={}s; exec "
              "time s, evictions, wrongful evictions, rejoins; aggressive "
              "timeouts under loss evict live ranks, which are fenced and "
              "rejoin; digests + invariants verified: {})",
              app_label, nodes, util::Table::fixed(hb_period, 2),
              all_ok ? "yes" : "NO"))
          .c_str(),
      stdout);

  std::vector<std::string> kill_header{"scheme", "exec_s", "views", "evictions",
                                       "forced", "aborted", "digest"};
  util::Table kill_table(kill_header);
  for (const harness::ExperimentResult& r : kills) {
    kill_table.add_row({std::string(to_string(r.scheme)),
                        util::Table::fixed(r.exec_time_s, 1),
                        std::to_string(r.views_established),
                        std::to_string(r.evictions),
                        std::to_string(r.forced_recoveries),
                        std::to_string(r.aborted_rounds),
                        r.digest == normal.digest ? "ok" : "BAD"});
  }
  std::fputs(kill_table
                 .render("Coordinator killed mid-run: the cluster detects the "
                         "death, elects a successor and the run completes "
                         "verified")
                 .c_str(),
             stdout);

  using obs::json::Value;
  Value doc = Value::object();
  doc.set("table", Value::string("membership"));
  doc.set("app", Value::string(app_label));
  doc.set("nodes", Value::number(std::uint64_t{nodes}));
  doc.set("seed", Value::number(seed));
  doc.set("hb_period_s", Value::number(hb_period));
  doc.set("normal_exec_s", Value::number(normal.exec_time_s));
  doc.set("all_verified", Value::boolean(all_ok));
  Value row_array = Value::array();
  index = 0;
  for (double timeout : timeouts) {
    for (double loss : losses) {
      Value entry = Value::object();
      entry.set("detect_timeout_s", Value::number(timeout));
      entry.set("loss", Value::number(loss));
      Value cell_array = Value::array();
      for (std::size_t s = 0; s < sweep_schemes().size(); ++s) {
        const harness::ExperimentResult& r = results[index++];
        cell_array.push_back(cell_json(r, r.digest == normal.digest));
      }
      entry.set("cells", std::move(cell_array));
      row_array.push_back(std::move(entry));
    }
  }
  doc.set("rows", std::move(row_array));
  Value kill_array = Value::array();
  for (const harness::ExperimentResult& r : kills) {
    kill_array.push_back(cell_json(r, r.digest == normal.digest));
  }
  doc.set("coordinator_kill", std::move(kill_array));
  const std::string path = cli.get("json-out", "BENCH_membership.json");
  obs::write_text_file(path, doc.dump() + "\n");
  std::printf("\nWrote %s\n", path.c_str());
  return all_ok ? 0 : 1;
}
