// Membership ablation: failure detection quality vs link loss, binary
// timeout against phi-accrual.
//
// The membership service turns failure handling from an oracle into a
// protocol: heartbeats, suspicion quorums, view changes, election and
// fencing. Detection quality gates everything downstream, and this sweep
// measures it from both sides. The binary detector's central knob is the
// detection timeout: a conservative value rides out loss bursts but leaves
// real crashes undetected for seconds; an aggressive one under heavy loss
// evicts perfectly live ranks — the false-suspicion storm. The phi-accrual
// detector (src/chklib/membership/accrual.hpp) replaces the fixed timeout
// with a suspicion level derived from each link's observed heartbeat
// inter-arrivals, so retransmission-stretched links widen their own
// windows. The headline comparison: at 20% frame loss the aggressive
// binary timeout evicts live ranks every run, phi-accrual evicts none —
// while its real-crash detection latency stays within 2x the binary's.
//
// A second section kills the *coordinator* mid-round for each coordinated
// scheme under each detector: the cluster detects the death, elects a
// successor (the view id encodes it), re-initiates the aborted round at a
// higher epoch, and the run completes verified — with the measured
// detection latency (crash -> evicting view) reported per detector.
//
//   ./ablation_membership [--app=SOR-384] [--detector=both|binary|phi]
//                         [--timeouts=0.6,1.5,4.0] [--phi-thresholds=4,8,12]
//                         [--phi-window=32] [--losses=0,0.05,0.2]
//                         [--hb-period=0.25] [--nodes=8] [--checkpoints=0]
//                         [--intervals=5] [--seed=2026]
//                         [--json-out=BENCH_membership.json] [--quick]
//
// --detector narrows the sweep to one detector ("both" runs the full A/B
// grid); --phi-thresholds are suspicion thresholds in phi units (phi 8 ~
// "the silence is < 1e-8 probable"); phi knobs combined with
// --detector=binary are rejected rather than ignored. --quick shrinks the
// sweep (2 timeouts x 1 threshold x 2 loss points). Output is
// byte-identical across repeats with the same seed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;
using chklib::membership::Detector;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<double> parse_doubles(const util::Cli& cli, const std::string& key,
                                  const std::string& fallback, double lo, double hi) {
  std::vector<double> out;
  for (const std::string& tok : split_list(cli.get(key, fallback))) {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size() || v != v) {
      throw std::invalid_argument("--" + key + ": expected a number, got \"" + tok + "\"");
    }
    if (v < lo || v >= hi) {
      throw std::invalid_argument("--" + key + ": values must be in [" +
                                  std::to_string(lo) + ", " + std::to_string(hi) +
                                  "), got " + tok);
    }
    out.push_back(v);
  }
  return out;
}

/// The five scheme columns of the paper's Table 1, in paper order.
const std::vector<harness::Scheme>& sweep_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kIndep, harness::Scheme::kCoordNBM,
      harness::Scheme::kIndepM, harness::Scheme::kCoordNBMS};
  return schemes;
}

/// The coordinated schemes whose coordinator the kill section murders.
const std::vector<harness::Scheme>& coordinated_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kCoordNBM,
      harness::Scheme::kCoordNBMS};
  return schemes;
}

double mean_latency_s(const harness::ExperimentResult& r) {
  if (r.detection_latency_ns.empty()) return 0.0;
  double sum = 0;
  for (const std::int64_t ns : r.detection_latency_ns) sum += static_cast<double>(ns);
  return sum * 1e-9 / static_cast<double>(r.detection_latency_ns.size());
}

obs::json::Value cell_json(const harness::ExperimentResult& r, bool digest_ok) {
  using obs::json::Value;
  Value cv = Value::object();
  cv.set("scheme", Value::string(std::string(to_string(r.scheme))));
  cv.set("exec_s", Value::number(r.exec_time_s));
  cv.set("heartbeats_sent", Value::number(r.heartbeats_sent));
  cv.set("suspicions", Value::number(r.suspicions));
  cv.set("suspicions_cleared", Value::number(r.suspicions_cleared));
  cv.set("views_established", Value::number(r.views_established));
  cv.set("evictions", Value::number(r.evictions));
  cv.set("wrongful_evictions", Value::number(r.wrongful_evictions));
  cv.set("rejoins", Value::number(r.rejoins));
  cv.set("crashes", Value::number(r.membership_crashes));
  cv.set("forced_recoveries", Value::number(r.forced_recoveries));
  cv.set("detections", Value::number(r.detections));
  // Exact per-detection latencies plus the same log-spaced bins the
  // "membership/detection_latency_s" metric exports, so the bench JSON and
  // the obs histogram agree bucket for bucket.
  Value lats = Value::array();
  std::vector<std::uint64_t> bins(
      static_cast<std::size_t>(harness::kDetectLatMaxExp - harness::kDetectLatMinExp) + 2,
      0);
  double lat_max = 0;
  for (const std::int64_t ns : r.detection_latency_ns) {
    const double s = static_cast<double>(ns) * 1e-9;
    lats.push_back(Value::number(s));
    if (s > lat_max) lat_max = s;
    ++bins[obs::LogHistogram::bucket_of(static_cast<std::uint64_t>(ns < 0 ? 0 : ns),
                                        harness::kDetectLatMinExp,
                                        harness::kDetectLatMaxExp)];
  }
  cv.set("detection_latency_s", std::move(lats));
  Value bin_array = Value::array();
  for (const std::uint64_t b : bins) bin_array.push_back(Value::number(b));
  cv.set("detection_lat_counts", std::move(bin_array));
  cv.set("detection_lat_mean_s", Value::number(mean_latency_s(r)));
  cv.set("detection_lat_max_s", Value::number(lat_max));
  cv.set("aborted_rounds", Value::number(std::uint64_t{r.aborted_rounds}));
  cv.set("committed_rounds", Value::number(std::uint64_t{r.committed_rounds}));
  cv.set("retransmits", Value::number(r.retransmits));
  cv.set("digest_ok", Value::boolean(digest_ok));
  cv.set("invariant_violations", Value::number(r.invariant_violations));
  return cv;
}

/// One grid row: a detector point (binary timeout or phi threshold) at one
/// loss rate, across the five schemes.
struct GridRow {
  Detector detector = Detector::kBinaryTimeout;
  double knob = 0;  ///< detect_timeout_s (binary) or phi threshold (phi)
  double loss = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);

  const std::string app_label = cli.get("app", "SOR-384");
  std::vector<double> timeouts;
  std::vector<double> thresholds;
  std::vector<double> losses;
  double hb_period = 0.25;
  long phi_window = 32;
  bool run_binary = true;
  bool run_phi = true;
  try {
    const std::string detector = cli.get("detector", "both");
    if (detector == "binary") {
      run_phi = false;
    } else if (detector == "phi") {
      run_binary = false;
    } else if (detector != "both") {
      throw std::invalid_argument("--detector: expected \"both\", \"binary\" or \"phi\", got \"" +
                                  detector + "\"");
    }
    if (!run_phi) {
      for (const char* flag : {"phi-thresholds", "phi-window"}) {
        if (cli.has(flag)) {
          throw std::invalid_argument(std::string("--") + flag +
                                      " needs --detector=phi or both (the binary "
                                      "detector has no phi knobs)");
        }
      }
    }
    timeouts = parse_doubles(cli, "timeouts", quick ? "0.6,4.0" : "0.6,1.5,4.0",
                             1e-3, 1e3);
    thresholds = parse_doubles(cli, "phi-thresholds", quick ? "8" : "4,8,12",
                               1e-3, 1e3);
    phi_window = cli.get_int("phi-window", 32);
    if (phi_window <= 0) throw std::invalid_argument("--phi-window must be positive");
    losses = parse_doubles(cli, "losses", quick ? "0,0.2" : "0,0.05,0.2", 0.0, 1.0);
    hb_period = cli.get_nonneg_double("hb-period", 0.25);
    for (double t : timeouts) {
      if (t <= hb_period) {
        throw std::invalid_argument(
            "--timeouts: every detection timeout must exceed --hb-period (" +
            std::to_string(hb_period) + " s)");
      }
    }
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "ablation_membership: %s\n", err.what());
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  const auto checkpoints = static_cast<std::uint32_t>(cli.get_int("checkpoints", 0));
  const double intervals = cli.get_double("intervals", 5.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  // Baseline: failure-free, perfect links, no detector — sets the
  // checkpoint interval and the digest every membership run must still
  // compute (fencing has to keep wrongful evictions answer-preserving).
  harness::ExperimentConfig base;
  base.label = app_label;
  base.app = harness::find_row(app_label).app;
  base.machine.num_nodes = nodes;
  base.seed = seed;
  base.checkpoints = checkpoints;
  const harness::ExperimentResult normal = harness::run_normal(base);
  base.interval = des::Duration::seconds(normal.exec_time_s / intervals);

  auto make_membership = [&](Detector detector, double knob) {
    chklib::membership::MembershipConfig membership;
    membership.hb_period = des::Duration::seconds(hb_period);
    membership.detector = detector;
    if (detector == Detector::kBinaryTimeout) {
      membership.detect_timeout = des::Duration::seconds(knob);
    } else {
      // Phi keeps the lax default timeout as its warm-up bootstrap; the
      // steady-state aggressiveness comes from the threshold, not a
      // hand-tuned timeout — that is the point of the comparison.
      membership.accrual.threshold_milli =
          static_cast<std::int64_t>(knob * 1000.0);
      membership.accrual.window = static_cast<std::uint32_t>(phi_window);
    }
    return membership;
  };

  // Section 1: detector x knob x link-loss grid, detector always on.
  std::vector<GridRow> grid;
  if (run_binary) {
    for (double timeout : timeouts) {
      for (double loss : losses) {
        grid.push_back({Detector::kBinaryTimeout, timeout, loss});
      }
    }
  }
  if (run_phi) {
    for (double threshold : thresholds) {
      for (double loss : losses) {
        grid.push_back({Detector::kPhiAccrual, threshold, loss});
      }
    }
  }
  std::vector<harness::ExperimentResult> results(grid.size() * sweep_schemes().size());
  {
    std::vector<std::future<harness::ExperimentResult>> pending;
    pending.reserve(results.size());
    for (const GridRow& row : grid) {
      for (harness::Scheme scheme : sweep_schemes()) {
        harness::ExperimentConfig config = base;
        config.scheme = scheme;
        config.membership = make_membership(row.detector, row.knob);
        if (row.loss > 0.0) {
          chklib::LinkFaultConfig faults;
          faults.drop = row.loss;
          faults.duplicate = row.loss / 2;
          faults.corrupt = row.loss / 4;
          config.link_faults = faults;
        }
        pending.push_back(std::async(std::launch::async, [config] {
          return harness::run_experiment(config);
        }));
      }
    }
    for (std::size_t i = 0; i < results.size(); ++i) results[i] = pending[i].get();
  }

  // Section 2: coordinator killed mid-run, clean links, one strike aimed
  // at whoever the current elected coordinator is — once per detector, so
  // the JSON carries the real-crash detection-latency A/B.
  std::vector<Detector> kill_detectors;
  if (run_binary) kill_detectors.push_back(Detector::kBinaryTimeout);
  if (run_phi) kill_detectors.push_back(Detector::kPhiAccrual);
  std::vector<harness::ExperimentResult> kills(kill_detectors.size() *
                                               coordinated_schemes().size());
  const double kill_timeout =
      timeouts.size() > 1 ? timeouts[timeouts.size() / 2] : timeouts.front();
  const double kill_threshold =
      thresholds.size() > 1 ? thresholds[thresholds.size() / 2] : thresholds.front();
  {
    std::vector<std::future<harness::ExperimentResult>> pending;
    pending.reserve(kills.size());
    for (Detector detector : kill_detectors) {
      for (harness::Scheme scheme : coordinated_schemes()) {
        harness::ExperimentConfig config = base;
        config.scheme = scheme;
        config.membership = make_membership(
            detector, detector == Detector::kBinaryTimeout ? kill_timeout
                                                           : kill_threshold);
        if (detector == Detector::kPhiAccrual) {
          // If the strike lands before the accrual windows warm up, phi
          // falls back to its bootstrap timeout. Give it the same bootstrap
          // binary runs with, so the latency A/B compares detectors rather
          // than warm-up defaults.
          config.membership->detect_timeout = des::Duration::seconds(kill_timeout);
        }
        faultsim::FaultPlan plan;
        plan.mtbf = des::Duration::seconds(normal.exec_time_s * 0.4);
        plan.max_failures = 1;
        plan.target_coordinator = true;
        config.faults = plan;
        pending.push_back(std::async(std::launch::async, [config] {
          return harness::run_experiment(config);
        }));
      }
    }
    for (std::size_t i = 0; i < kills.size(); ++i) kills[i] = pending[i].get();
  }

  bool all_ok = true;
  for (const harness::ExperimentResult& r : results) {
    all_ok = all_ok && r.digest == normal.digest && r.invariant_violations == 0;
  }
  for (const harness::ExperimentResult& r : kills) {
    all_ok = all_ok && r.digest == normal.digest && r.invariant_violations == 0;
  }

  // The headline A/B: wrongful evictions at the highest loss point, the
  // most aggressive binary timeout against every phi threshold.
  const double max_loss = *std::max_element(losses.begin(), losses.end());
  std::uint64_t binary_aggressive_wrongful = 0;
  std::uint64_t phi_wrongful_at_max_loss = 0;
  {
    std::size_t index = 0;
    for (const GridRow& row : grid) {
      for (std::size_t s = 0; s < sweep_schemes().size(); ++s) {
        const harness::ExperimentResult& r = results[index++];
        if (row.loss != max_loss) continue;
        if (row.detector == Detector::kBinaryTimeout && row.knob == timeouts.front()) {
          binary_aggressive_wrongful += r.wrongful_evictions;
        }
        if (row.detector == Detector::kPhiAccrual) {
          phi_wrongful_at_max_loss += r.wrongful_evictions;
        }
      }
    }
  }

  std::vector<std::string> header{"detector", "knob", "loss"};
  for (harness::Scheme scheme : sweep_schemes()) header.emplace_back(to_string(scheme));
  util::Table table(header);
  std::size_t index = 0;
  for (const GridRow& gr : grid) {
    std::vector<std::string> row{
        chklib::membership::to_string(gr.detector),
        util::Table::fixed(gr.knob, 1), util::Table::fixed(gr.loss, 2)};
    for (std::size_t s = 0; s < sweep_schemes().size(); ++s) {
      const harness::ExperimentResult& r = results[index++];
      row.push_back(util::format("{} ev={} wr={} rj={}",
                                 util::Table::fixed(r.exec_time_s, 1), r.evictions,
                                 r.wrongful_evictions, r.rejoins));
    }
    table.add_row(std::move(row));
  }
  std::fputs(
      table
          .render(util::format(
              "{} on {} nodes, detector A/B (hb={}s; knob = detection timeout "
              "s for binary, suspicion threshold phi for phi; exec time s, "
              "evictions, wrongful evictions, rejoins per scheme). Aggressive "
              "binary timeouts under loss evict live ranks — fenced, rejoined, "
              "answer preserved — where phi-accrual adapts and evicts none; "
              "digests + invariants verified: {})",
              app_label, nodes, util::Table::fixed(hb_period, 2),
              all_ok ? "yes" : "NO"))
          .c_str(),
      stdout);

  std::vector<std::string> kill_header{"detector", "scheme",  "exec_s", "views",
                                       "evictions", "detect_s", "forced", "digest"};
  util::Table kill_table(kill_header);
  index = 0;
  for (Detector detector : kill_detectors) {
    for (std::size_t s = 0; s < coordinated_schemes().size(); ++s) {
      const harness::ExperimentResult& r = kills[index++];
      kill_table.add_row({chklib::membership::to_string(detector),
                          std::string(to_string(r.scheme)),
                          util::Table::fixed(r.exec_time_s, 1),
                          std::to_string(r.views_established),
                          std::to_string(r.evictions),
                          util::Table::fixed(mean_latency_s(r), 2),
                          std::to_string(r.forced_recoveries),
                          r.digest == normal.digest ? "ok" : "BAD"});
    }
  }
  std::fputs(kill_table
                 .render("Coordinator killed mid-run per detector: the cluster "
                         "detects the death (detect_s = crash to evicting "
                         "view), elects a successor and the run completes "
                         "verified")
                 .c_str(),
             stdout);

  using obs::json::Value;
  Value doc = Value::object();
  doc.set("table", Value::string("membership"));
  doc.set("app", Value::string(app_label));
  doc.set("nodes", Value::number(std::uint64_t{nodes}));
  doc.set("seed", Value::number(seed));
  doc.set("hb_period_s", Value::number(hb_period));
  doc.set("phi_window", Value::number(std::uint64_t{static_cast<std::uint64_t>(phi_window)}));
  doc.set("normal_exec_s", Value::number(normal.exec_time_s));
  doc.set("all_verified", Value::boolean(all_ok));
  doc.set("binary_aggressive_wrongful", Value::number(binary_aggressive_wrongful));
  doc.set("phi_wrongful_at_max_loss", Value::number(phi_wrongful_at_max_loss));
  Value row_array = Value::array();
  index = 0;
  for (const GridRow& gr : grid) {
    Value entry = Value::object();
    entry.set("detector", Value::string(chklib::membership::to_string(gr.detector)));
    if (gr.detector == Detector::kBinaryTimeout) {
      entry.set("detect_timeout_s", Value::number(gr.knob));
    } else {
      entry.set("phi_threshold", Value::number(gr.knob));
    }
    entry.set("loss", Value::number(gr.loss));
    Value cell_array = Value::array();
    for (std::size_t s = 0; s < sweep_schemes().size(); ++s) {
      const harness::ExperimentResult& r = results[index++];
      cell_array.push_back(cell_json(r, r.digest == normal.digest));
    }
    entry.set("cells", std::move(cell_array));
    row_array.push_back(std::move(entry));
  }
  doc.set("rows", std::move(row_array));
  Value kill_array = Value::array();
  index = 0;
  for (Detector detector : kill_detectors) {
    for (std::size_t s = 0; s < coordinated_schemes().size(); ++s) {
      const harness::ExperimentResult& r = kills[index++];
      Value kv = cell_json(r, r.digest == normal.digest);
      kv.set("detector", Value::string(chklib::membership::to_string(detector)));
      kill_array.push_back(std::move(kv));
    }
  }
  doc.set("coordinator_kill", std::move(kill_array));
  const std::string path = cli.get("json-out", "BENCH_membership.json");
  obs::write_text_file(path, doc.dump() + "\n");
  std::printf("\nWrote %s\n", path.c_str());
  return all_ok ? 0 : 1;
}
