// Storage overhead: the paper's qualitative claim that independent
// checkpointing "implies a large storage overhead... several checkpoints
// have to be kept in stable storage, even if the recovery system makes use
// of some garbage collection algorithm", while coordinated checkpointing
// keeps exactly one committed generation.
//
// We run SOR (tightly coupled: the strict recovery line cannot advance, so
// GC reclaims nothing) and NQUEENS (loosely coupled: GC can reclaim) with
// 6 checkpoints and compare peak/final stable-storage footprints.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

struct Variant {
  const char* name;
  Scheme scheme;
  bool gc;
  chklib::LineMode gc_mode;
};

const std::vector<Variant>& variants() {
  static const std::vector<Variant> all{
      {"Coord_NB (commit GC)", Scheme::kCoordNB, false, chklib::LineMode::kStrict},
      {"Indep, no GC", Scheme::kIndep, false, chklib::LineMode::kStrict},
      {"Indep, GC strict", Scheme::kIndep, true, chklib::LineMode::kStrict},
      {"Indep, GC orphan-free", Scheme::kIndep, true, chklib::LineMode::kOrphanFree},
  };
  return all;
}

ExperimentConfig cell_config(const BenchRow& row, const Variant& variant,
                             double normal_exec_s) {
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = variant.scheme;
  config.checkpoints = 6;
  config.interval = des::Duration::seconds(normal_exec_s / 7.0);
  config.gc = variant.gc;
  config.gc_mode = variant.gc_mode;
  return config;
}

std::string key_of(const std::string& label, const Variant& variant) {
  return util::format("{}/{}", label, variant.name);
}

void register_benchmarks() {
  for (const char* label : {"SOR-768", "NQUEENS-14"}) {
    const BenchRow row = harness::find_row(label);
    for (const auto& variant : variants()) {
      benchmark::RegisterBenchmark(
          util::format("Storage/{}/{}", row.label, variant.name).c_str(),
          [row, variant](benchmark::State& state) {
            auto& cache = ResultCache::instance();
            const auto& normal = cache.normal(row);
            for (auto _ : state) {
              const auto& result = cache.run(key_of(row.label, variant),
                                             cell_config(row, variant, normal.exec_time_s));
              state.counters["peak_MiB"] =
                  static_cast<double>(result.peak_storage_bytes) / (1 << 20);
              state.counters["final_ckpts"] =
                  static_cast<double>(result.final_stored_checkpoints);
              state.counters["gc_reclaimed"] = static_cast<double>(result.gc_reclaimed);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  for (const char* label : {"SOR-768", "NQUEENS-14"}) {
    util::Table table({"variant", "peak storage", "final storage", "ckpts kept",
                       "GC reclaimed"});
    for (const auto& variant : variants()) {
      const auto result = cache.lookup(key_of(label, variant));
      if (!result) continue;
      table.add_row({variant.name,
                     util::Table::bytes(static_cast<double>(result->peak_storage_bytes)),
                     util::Table::bytes(static_cast<double>(result->final_storage_bytes)),
                     util::Table::integer(static_cast<long long>(result->final_stored_checkpoints)),
                     util::Table::integer(static_cast<long long>(result->gc_reclaimed))});
    }
    std::fputs(table.render(util::format("Stable-storage footprint — {} (6 checkpoints, 8 nodes)",
                                         label))
                   .c_str(),
               stdout);
    std::puts("");
  }
  std::puts("Coordinated keeps one committed generation (8 images). Independent\n"
            "accumulates generations; for the tightly coupled application even the\n"
            "garbage collector cannot reclaim them (the strict recovery line never\n"
            "advances) — the paper's storage-overhead argument.");
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  return 0;
}
