// Link-loss ablation: scheme robustness and cost over unreliable links.
//
// The paper assumes reliable FIFO channels; this sweep measures what the
// reliable transport (acks, retransmission, duplicate suppression) costs
// when the links underneath actually misbehave. Each loss point sets the
// per-frame drop probability to `loss`, duplication to loss/2 and
// corruption to loss/4, runs every paper scheme on the same app, and
// reports completion time, the overhead relative to the same scheme on
// perfect links and the transport's repair activity. Every run must
// reproduce the perfect-link digest — exactly-once FIFO delivery means
// the application cannot tell the links were lossy.
//
//   ./ablation_linkloss [--app=SOR-384] [--losses=0.02,0.05,0.1,0.2]
//                       [--nodes=8] [--checkpoints=0] [--intervals=5]
//                       [--seed=2026] [--json-out=BENCH_linkloss.json]
//                       [--quick]
//
// --quick shrinks the sweep (2 loss points). Output is byte-identical
// across repeats with the same seed.
#include <cstdio>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/catalog.hpp"
#include "harness/experiment.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace chk;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The five scheme columns of the paper's Table 1, in paper order.
const std::vector<harness::Scheme>& sweep_schemes() {
  static const std::vector<harness::Scheme> schemes{
      harness::Scheme::kCoordNB, harness::Scheme::kIndep, harness::Scheme::kCoordNBM,
      harness::Scheme::kIndepM, harness::Scheme::kCoordNBMS};
  return schemes;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);

  const std::string app_label = cli.get("app", "SOR-384");
  std::vector<double> losses;
  try {
    for (const std::string& tok :
         split_list(cli.get("losses", quick ? "0.05,0.2" : "0.02,0.05,0.1,0.2"))) {
      char* end = nullptr;
      const double loss = std::strtod(tok.c_str(), &end);
      if (tok.empty() || end != tok.c_str() + tok.size() || loss != loss) {
        throw std::invalid_argument("--losses: expected a number, got \"" + tok + "\"");
      }
      if (loss < 0.0 || loss >= 1.0) {
        throw std::invalid_argument("--losses: loss rates must be in [0, 1), got " + tok);
      }
      losses.push_back(loss);
    }
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "ablation_linkloss: %s\n", err.what());
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 8));
  const auto checkpoints = static_cast<std::uint32_t>(cli.get_int("checkpoints", 0));
  const double intervals = cli.get_double("intervals", 5.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));

  // Baseline: failure-free, perfect links — sets the checkpoint interval
  // and the digest every lossy run must still compute.
  harness::ExperimentConfig base;
  base.label = app_label;
  base.app = harness::find_row(app_label).app;
  base.machine.num_nodes = nodes;
  base.seed = seed;
  base.checkpoints = checkpoints;
  const harness::ExperimentResult normal = harness::run_normal(base);
  base.interval = des::Duration::seconds(normal.exec_time_s / intervals);

  // Loss 0 first (the per-scheme reference), then the sweep; all cells
  // fan out and are collected in fixed order.
  std::vector<double> points;
  points.push_back(0.0);
  points.insert(points.end(), losses.begin(), losses.end());
  std::vector<harness::ExperimentResult> results(points.size() * sweep_schemes().size());
  {
    std::vector<std::future<harness::ExperimentResult>> pending;
    pending.reserve(results.size());
    for (double loss : points) {
      for (harness::Scheme scheme : sweep_schemes()) {
        harness::ExperimentConfig config = base;
        config.scheme = scheme;
        if (loss > 0.0) {
          chklib::LinkFaultConfig faults;
          faults.drop = loss;
          faults.duplicate = loss / 2;
          faults.corrupt = loss / 4;
          config.link_faults = faults;
        }
        pending.push_back(std::async(std::launch::async, [config] {
          return harness::run_experiment(config);
        }));
      }
    }
    for (std::size_t i = 0; i < results.size(); ++i) results[i] = pending[i].get();
  }

  bool all_ok = true;
  for (const harness::ExperimentResult& r : results) {
    all_ok = all_ok && r.digest == normal.digest && r.invariant_violations == 0;
  }

  std::vector<std::string> header{"loss"};
  for (harness::Scheme scheme : sweep_schemes()) header.emplace_back(to_string(scheme));
  util::Table table(header);
  std::size_t index = 0;
  const std::size_t columns = sweep_schemes().size();
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<std::string> row{util::Table::fixed(points[p], 2)};
    for (std::size_t s = 0; s < columns; ++s) {
      const harness::ExperimentResult& r = results[index++];
      const double reference = results[s].exec_time_s;  // loss 0, same scheme
      const double overhead = (r.exec_time_s / reference - 1.0) * 100.0;
      row.push_back(util::format("{} ({}%) rtx={}",
                                 util::Table::fixed(r.exec_time_s, 1),
                                 util::Table::fixed(overhead, 1), r.retransmits));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table
                 .render(util::format(
                     "{} on {} nodes over lossy links (drop=loss, dup=loss/2, "
                     "corrupt=loss/4; reliable transport on; exec time s, "
                     "overhead vs the same scheme at loss 0, retransmissions; "
                     "digests + invariants verified: {})",
                     app_label, nodes, all_ok ? "yes" : "NO"))
                 .c_str(),
             stdout);

  using obs::json::Value;
  Value doc = Value::object();
  doc.set("table", Value::string("linkloss"));
  doc.set("app", Value::string(app_label));
  doc.set("nodes", Value::number(std::uint64_t{nodes}));
  doc.set("seed", Value::number(seed));
  doc.set("normal_exec_s", Value::number(normal.exec_time_s));
  doc.set("all_verified", Value::boolean(all_ok));
  Value row_array = Value::array();
  index = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    Value entry = Value::object();
    entry.set("loss", Value::number(points[p]));
    Value cell_array = Value::array();
    for (std::size_t s = 0; s < columns; ++s) {
      const harness::ExperimentResult& r = results[index++];
      Value cv = Value::object();
      cv.set("scheme", Value::string(std::string(to_string(r.scheme))));
      cv.set("exec_s", Value::number(r.exec_time_s));
      cv.set("retransmits", Value::number(r.retransmits));
      cv.set("dups_suppressed", Value::number(r.dups_suppressed));
      cv.set("corrupt_detected", Value::number(r.corrupt_detected));
      cv.set("link_drops", Value::number(r.link_drops));
      cv.set("link_duplicates", Value::number(r.link_duplicates));
      cv.set("link_corrupted", Value::number(r.link_corrupted));
      cv.set("aborted_rounds", Value::number(std::uint64_t{r.aborted_rounds}));
      cv.set("committed_rounds", Value::number(std::uint64_t{r.committed_rounds}));
      cv.set("digest_ok", Value::boolean(r.digest == normal.digest));
      cv.set("invariant_violations", Value::number(r.invariant_violations));
      cell_array.push_back(std::move(cv));
    }
    entry.set("cells", std::move(cell_array));
    row_array.push_back(std::move(entry));
  }
  doc.set("rows", std::move(row_array));
  const std::string path = cli.get("json-out", "BENCH_linkloss.json");
  obs::write_text_file(path, doc.dump() + "\n");
  std::printf("\nWrote %s\n", path.c_str());
  return all_ok ? 0 : 1;
}
