// Ablation: overhead vs checkpoint interval.
//
// The paper varies the interval per application (1-7 minutes) and notes
// that frequent checkpointing inflates failure-free overhead (and that
// independent schemes checkpoint "very often" to fight the domino effect,
// making this worse). We sweep the number of checkpoints in a fixed-length
// SOR run and report overhead per scheme: it scales linearly with
// checkpoint count for the write-through schemes and much more slowly for
// the buffered + staggered one.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

const std::vector<Scheme>& sweep_schemes() {
  static const std::vector<Scheme> all{Scheme::kCoordNB, Scheme::kIndep,
                                       Scheme::kCoordNBMS};
  return all;
}

const std::vector<std::uint32_t>& sweep_counts() {
  static const std::vector<std::uint32_t> counts{1, 2, 4, 6, 8, 12};
  return counts;
}

std::map<std::uint32_t, std::map<std::string, double>>& sweep() {
  static std::map<std::uint32_t, std::map<std::string, double>> map;
  return map;
}

ExperimentConfig point_config(const BenchRow& row, Scheme scheme,
                              std::uint32_t checkpoints, double normal_exec_s) {
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = scheme;
  config.checkpoints = checkpoints;
  config.interval = des::Duration::seconds(normal_exec_s / (checkpoints + 1.0));
  return config;
}

std::string point_key(const BenchRow& row, Scheme scheme, std::uint32_t checkpoints) {
  return util::format("{}/{}/k{}", row.label, to_string(scheme), checkpoints);
}

// Warm the cache in parallel: every (checkpoint-count, scheme) point is an
// independent simulation once the shared baseline exists.
void prefetch() {
  auto& cache = ResultCache::instance();
  const BenchRow row = harness::find_row("SOR-1024");
  const auto& normal = cache.normal(row);
  const auto& counts = sweep_counts();
  const auto& schemes = sweep_schemes();
  parallel_for(counts.size() * schemes.size(), [&](std::size_t i) {
    const std::uint32_t k = counts[i / schemes.size()];
    const Scheme scheme = schemes[i % schemes.size()];
    cache.run(point_key(row, scheme, k),
              point_config(row, scheme, k, normal.exec_time_s));
  });
}

void run_point(benchmark::State& state, std::uint32_t checkpoints) {
  auto& cache = ResultCache::instance();
  const BenchRow row = harness::find_row("SOR-1024");
  const auto& normal = cache.normal(row);
  for (auto _ : state) {
    for (Scheme scheme : sweep_schemes()) {
      const auto& result =
          cache.run(point_key(row, scheme, checkpoints),
                    point_config(row, scheme, checkpoints, normal.exec_time_s));
      sweep()[checkpoints][std::string(to_string(scheme))] =
          result.exec_time_s - normal.exec_time_s;
    }
    state.counters["checkpoints"] = checkpoints;
  }
}

void register_benchmarks() {
  for (std::uint32_t k : sweep_counts()) {
    benchmark::RegisterBenchmark(util::format("Interval/ckpts{}", k).c_str(),
                                 [k](benchmark::State& state) { run_point(state, k); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  const auto normal = cache.lookup(cell_key("SOR-1024", Scheme::kNone));
  util::Table table({"checkpoints", "interval (s)", "Coord_NB (s)", "Indep (s)",
                     "Coord_NBMS (s)", "NB per ckpt"});
  for (const auto& [k, by_scheme] : sweep()) {
    const double interval = normal ? normal->exec_time_s / (k + 1.0) : 0;
    table.add_row({util::Table::integer(k), util::Table::fixed(interval, 0),
                   util::Table::fixed(by_scheme.at("Coord_NB"), 2),
                   util::Table::fixed(by_scheme.at("Indep"), 2),
                   util::Table::fixed(by_scheme.at("Coord_NBMS"), 2),
                   util::Table::fixed(by_scheme.at("Coord_NB") / k, 2)});
  }
  std::fputs(
      table.render("Overhead (s) vs checkpoint frequency — SOR-1024, fixed run length")
          .c_str(),
      stdout);
  std::puts("\nOverhead scales with checkpoint count; the per-checkpoint cost is\n"
            "stable (Table 1's metric), and Coord_NBMS keeps even frequent\n"
            "checkpointing affordable.");
}

void write_json() {
  using obs::json::Value;
  auto& cache = ResultCache::instance();
  const auto normal = cache.lookup(cell_key("SOR-1024", Scheme::kNone));
  Value doc = Value::object();
  doc.set("table", Value::string("ablation_interval"));
  doc.set("row", Value::string("SOR-1024"));
  if (normal) doc.set("normal", result_to_json(*normal, nullptr));
  Value points = Value::array();
  for (const auto& [k, by_scheme] : sweep()) {
    Value point = Value::object();
    point.set("checkpoints", Value::number(std::uint64_t{k}));
    if (normal) {
      point.set("interval_s", Value::number(normal->exec_time_s / (k + 1.0)));
    }
    Value overhead = Value::object();
    for (const auto& [scheme, overhead_s] : by_scheme) {
      overhead.set(scheme, Value::number(overhead_s));
    }
    point.set("overhead_s", std::move(overhead));
    points.push_back(std::move(point));
  }
  doc.set("points", std::move(points));
  write_bench_json("BENCH_ablation_interval.json", doc);
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  const bool warm = chk::bench::prefetch_enabled(argc, argv);
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  if (warm) chk::bench::prefetch();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  chk::bench::write_json();
  return 0;
}
