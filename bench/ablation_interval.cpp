// Ablation: overhead vs checkpoint interval.
//
// The paper varies the interval per application (1-7 minutes) and notes
// that frequent checkpointing inflates failure-free overhead (and that
// independent schemes checkpoint "very often" to fight the domino effect,
// making this worse). We sweep the number of checkpoints in a fixed-length
// SOR run and report overhead per scheme: it scales linearly with
// checkpoint count for the write-through schemes and much more slowly for
// the buffered + staggered one.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

const std::vector<Scheme>& sweep_schemes() {
  static const std::vector<Scheme> all{Scheme::kCoordNB, Scheme::kIndep,
                                       Scheme::kCoordNBMS};
  return all;
}

std::map<std::uint32_t, std::map<std::string, double>>& sweep() {
  static std::map<std::uint32_t, std::map<std::string, double>> map;
  return map;
}

void run_point(benchmark::State& state, std::uint32_t checkpoints) {
  auto& cache = ResultCache::instance();
  const BenchRow row = harness::find_row("SOR-1024");
  const auto& normal = cache.normal(row);
  for (auto _ : state) {
    for (Scheme scheme : sweep_schemes()) {
      ExperimentConfig config;
      config.label = row.label;
      config.app = row.app;
      config.scheme = scheme;
      config.checkpoints = checkpoints;
      config.interval =
          des::Duration::seconds(normal.exec_time_s / (checkpoints + 1.0));
      const auto& result = cache.run(
          util::format("{}/{}/k{}", row.label, to_string(scheme), checkpoints), config);
      sweep()[checkpoints][std::string(to_string(scheme))] =
          result.exec_time_s - normal.exec_time_s;
    }
    state.counters["checkpoints"] = checkpoints;
  }
}

void register_benchmarks() {
  for (std::uint32_t k : {1u, 2u, 4u, 6u, 8u, 12u}) {
    benchmark::RegisterBenchmark(util::format("Interval/ckpts{}", k).c_str(),
                                 [k](benchmark::State& state) { run_point(state, k); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  const auto normal = cache.lookup(cell_key("SOR-1024", Scheme::kNone));
  util::Table table({"checkpoints", "interval (s)", "Coord_NB (s)", "Indep (s)",
                     "Coord_NBMS (s)", "NB per ckpt"});
  for (const auto& [k, by_scheme] : sweep()) {
    const double interval = normal ? normal->exec_time_s / (k + 1.0) : 0;
    table.add_row({util::Table::integer(k), util::Table::fixed(interval, 0),
                   util::Table::fixed(by_scheme.at("Coord_NB"), 2),
                   util::Table::fixed(by_scheme.at("Indep"), 2),
                   util::Table::fixed(by_scheme.at("Coord_NBMS"), 2),
                   util::Table::fixed(by_scheme.at("Coord_NB") / k, 2)});
  }
  std::fputs(
      table.render("Overhead (s) vs checkpoint frequency — SOR-1024, fixed run length")
          .c_str(),
      stdout);
  std::puts("\nOverhead scales with checkpoint count; the per-checkpoint cost is\n"
            "stable (Table 1's metric), and Coord_NBMS keeps even frequent\n"
            "checkpointing affordable.");
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  return 0;
}
