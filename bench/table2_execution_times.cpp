// Table 2 of the paper: execution times of the checkpointing schemes.
//
// SOR and ISING run 100 iterations, NBODY simulates 10 steps (as in the
// paper); every application is checkpointed 3 times during its execution,
// with a per-application interval (the paper used 1-7 minutes; here the
// interval is a quarter of the failure-free execution time so three
// checkpoints always fit, and is printed alongside, as in the paper).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

ExperimentConfig cell_config(const BenchRow& row, Scheme scheme, double normal_exec_s) {
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = scheme;
  config.checkpoints = 3;
  config.interval = des::Duration::seconds(normal_exec_s / 4.0);
  return config;
}

void run_cell(benchmark::State& state, const BenchRow& row, Scheme scheme) {
  auto& cache = ResultCache::instance();
  const auto& normal = cache.normal(row);
  for (auto _ : state) {
    const auto& result =
        cache.run(cell_key(row.label, scheme), cell_config(row, scheme, normal.exec_time_s));
    set_common_counters(state, result, normal);
  }
}

// Warm the cache in parallel: every (row, scheme) simulation is
// independent. The benchmark pass then reports the cached cells.
void prefetch() {
  prefetch_table(harness::table23_rows(), table23_schemes(),
                 [](const BenchRow& row, Scheme scheme, const ExperimentResult& normal) {
                   return cell_config(row, scheme, normal.exec_time_s);
                 });
}

void register_benchmarks() {
  for (const auto& row : harness::table23_rows()) {
    benchmark::RegisterBenchmark(
        util::format("Table2/{}/NORMAL", row.label).c_str(),
        [row](benchmark::State& state) {
          for (auto _ : state) {
            const auto& normal = ResultCache::instance().normal(row);
            state.counters["sim_exec_s"] = normal.exec_time_s;
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    for (Scheme scheme : table23_schemes()) {
      benchmark::RegisterBenchmark(
          util::format("Table2/{}/{}", row.label, to_string(scheme)).c_str(),
          [row, scheme](benchmark::State& state) { run_cell(state, row, scheme); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  util::Table table({"", "Interval (s)", "NORMAL", "COORD NB", "INDEP", "COORD NBMS",
                     "INDEP M"});
  for (const auto& row : harness::table23_rows()) {
    const auto normal = cache.lookup(cell_key(row.label, Scheme::kNone));
    std::vector<std::string> cells{row.label};
    if (normal) {
      cells.push_back(util::Table::fixed(normal->exec_time_s / 4.0, 0));
      cells.push_back(util::Table::fixed(normal->exec_time_s, 1));
    } else {
      cells.insert(cells.end(), {"-", "-"});
    }
    for (Scheme scheme : table23_schemes()) {
      const auto result = cache.lookup(cell_key(row.label, scheme));
      cells.push_back(result ? util::Table::fixed(result->exec_time_s, 1) : "-");
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render(
                 "Table 2: execution times (seconds), 3 checkpoints per run, 8 nodes")
                 .c_str(),
             stdout);
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  const bool warm = chk::bench::prefetch_enabled(argc, argv);
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  if (warm) chk::bench::prefetch();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  chk::bench::write_bench_json(
      "BENCH_table2.json",
      chk::bench::table_json("table2_execution_times", chk::harness::table23_rows(),
                             chk::bench::table23_schemes()));
  return 0;
}
