// Ablation: the two optimization techniques of §2.2 — main-memory
// checkpointing (M) and checkpoint staggering (S) — applied separately and
// together, for both protocol classes.
//
// Paper's finding: "checkpoint staggering was only an effective solution
// when used together with the other optimization technique: main-memory
// checkpointing". Staggering a *blocking* write (Coord_NBS) serializes the
// stalls and is no better (often worse) than Coord_NB; staggering the
// *background* writes (Coord_NBMS) removes the stable-storage contention
// and wins decisively.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

const std::vector<Scheme>& schemes() {
  static const std::vector<Scheme> all{
      Scheme::kCoordNB,   Scheme::kCoordNBS, Scheme::kCoordNBM,
      Scheme::kCoordNBMS, Scheme::kIndep,    Scheme::kIndepM,
      Scheme::kIndepMS,
  };
  return all;
}

ExperimentConfig cell_config(const BenchRow& row, Scheme scheme, double normal_exec_s) {
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = scheme;
  config.checkpoints = 3;
  config.interval = des::Duration::seconds(normal_exec_s / 4.0);
  return config;
}

void register_benchmarks() {
  for (const char* label : {"SOR-1024", "ISING-1024"}) {
    const BenchRow row = harness::find_row(label);
    for (Scheme scheme : schemes()) {
      benchmark::RegisterBenchmark(
          util::format("Stagger/{}/{}", row.label, to_string(scheme)).c_str(),
          [row, scheme](benchmark::State& state) {
            auto& cache = ResultCache::instance();
            const auto& normal = cache.normal(row);
            for (auto _ : state) {
              const auto& result = cache.run(cell_key(row.label, scheme),
                                             cell_config(row, scheme, normal.exec_time_s));
              set_common_counters(state, result, normal);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  for (const char* label : {"SOR-1024", "ISING-1024"}) {
    const auto normal = cache.lookup(cell_key(label, Scheme::kNone));
    if (!normal) continue;
    util::Table table({"scheme", "buffered?", "staggered?", "exec (s)", "overhead",
                       "app blocked (s)", "disk wait (s)"});
    for (Scheme scheme : schemes()) {
      const auto result = cache.lookup(cell_key(label, scheme));
      if (!result) continue;
      table.add_row({std::string(chklib::to_string(scheme)),
                     chklib::is_buffered(scheme) ? "yes" : "no",
                     chklib::is_staggered(scheme) ? "yes" : "no",
                     util::Table::fixed(result->exec_time_s, 1),
                     util::Table::percent(result->exec_time_s / normal->exec_time_s - 1.0, 2),
                     util::Table::fixed(result->app_blocked_s, 2),
                     util::Table::fixed(result->disk_wait_s, 2)});
    }
    std::fputs(table.render(util::format(
                                "Staggering x buffering ablation — {} (normal {:.1f} s)",
                                label, normal->exec_time_s))
                   .c_str(),
               stdout);
    std::puts("");
  }
  // The headline checks:
  const auto nb = cache.lookup(cell_key("SOR-1024", Scheme::kCoordNB));
  const auto nbs = cache.lookup(cell_key("SOR-1024", Scheme::kCoordNBS));
  const auto nbm = cache.lookup(cell_key("SOR-1024", Scheme::kCoordNBM));
  const auto nbms = cache.lookup(cell_key("SOR-1024", Scheme::kCoordNBMS));
  if (nb && nbs && nbm && nbms) {
    std::printf("Staggering alone:       %+.1f %% change vs Coord_NB (paper: not effective)\n",
                (nbs->exec_time_s / nb->exec_time_s - 1.0) * 100.0);
    std::printf("Buffering alone:        %+.1f %% change vs Coord_NB\n",
                (nbm->exec_time_s / nb->exec_time_s - 1.0) * 100.0);
    std::printf("Buffering + staggering: %+.1f %% change vs Coord_NB (the paper's winner)\n",
                (nbms->exec_time_s / nb->exec_time_s - 1.0) * 100.0);
  }
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  return 0;
}
