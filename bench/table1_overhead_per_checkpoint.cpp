// Table 1 of the paper: overhead per checkpoint (seconds) for the 21
// application configurations under Coord_NB, Indep, Coord_NBM, Indep_M and
// Coord_NBMS.
//
// Methodology (matching the paper's definition): run each configuration
// without checkpointing, then with exactly one checkpoint per process near
// mid-run; the overhead per checkpoint is the difference in completion
// time. Expected shape: Indep is NOT better than Coord_NB in most rows
// (autonomous checkpoints stall tightly-coupled neighbours once per node);
// Indep_M edges out Coord_NBM (spread background writes contend less); and
// Coord_NBMS beats everything.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace chk::bench {
namespace {

ExperimentConfig cell_config(const BenchRow& row, Scheme scheme, double normal_exec_s) {
  ExperimentConfig config;
  config.label = row.label;
  config.app = row.app;
  config.scheme = scheme;
  config.checkpoints = 1;
  config.interval = des::Duration::seconds(normal_exec_s / 2.0);
  return config;
}

void run_cell(benchmark::State& state, const BenchRow& row, Scheme scheme) {
  auto& cache = ResultCache::instance();
  const auto& normal = cache.normal(row);
  for (auto _ : state) {
    const auto& result =
        cache.run(cell_key(row.label, scheme), cell_config(row, scheme, normal.exec_time_s));
    set_common_counters(state, result, normal);
  }
}

// Warm the cache in parallel: every (row, scheme) simulation is
// independent. The benchmark pass then reports the cached cells.
void prefetch() {
  prefetch_table(harness::table1_rows(), table1_schemes(),
                 [](const BenchRow& row, Scheme scheme, const ExperimentResult& normal) {
                   return cell_config(row, scheme, normal.exec_time_s);
                 });
}

void register_benchmarks() {
  for (const auto& row : harness::table1_rows()) {
    for (Scheme scheme : table1_schemes()) {
      benchmark::RegisterBenchmark(
          util::format("Table1/{}/{}", row.label, to_string(scheme)).c_str(),
          [row, scheme](benchmark::State& state) { run_cell(state, row, scheme); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_table() {
  auto& cache = ResultCache::instance();
  util::Table table({"Applications", "Coord NB", "Indep", "Coord NBM", "Indep M",
                     "Coord NBMS"});
  int nb_wins = 0, nb_comparisons = 0;
  int indep_m_wins = 0, m_comparisons = 0;
  for (const auto& row : harness::table1_rows()) {
    const auto normal = cache.lookup(cell_key(row.label, Scheme::kNone));
    std::vector<std::string> cells{row.label};
    double nb = -1, indep = -1, nbm = -1, indep_m = -1;
    for (Scheme scheme : table1_schemes()) {
      const auto result = cache.lookup(cell_key(row.label, scheme));
      if (!result || !normal) {
        cells.push_back("-");
        continue;
      }
      const double overhead = result->exec_time_s - normal->exec_time_s;
      cells.push_back(util::Table::fixed(overhead, 2));
      if (scheme == Scheme::kCoordNB) nb = overhead;
      if (scheme == Scheme::kIndep) indep = overhead;
      if (scheme == Scheme::kCoordNBM) nbm = overhead;
      if (scheme == Scheme::kIndepM) indep_m = overhead;
    }
    if (nb >= 0 && indep >= 0) {
      ++nb_comparisons;
      nb_wins += (indep >= nb);
    }
    if (nbm >= 0 && indep_m >= 0) {
      ++m_comparisons;
      indep_m_wins += (indep_m <= nbm);
    }
    table.add_row(std::move(cells));
  }
  std::fputs(
      table.render("Table 1: overhead per checkpoint (seconds), 8 nodes").c_str(),
      stdout);
  std::printf("\nPaper's qualitative findings on this run:\n");
  std::printf("  Indep did not beat Coord_NB in %d of %d configurations"
              " (paper: 15 of 21).\n", nb_wins, nb_comparisons);
  std::printf("  Indep_M at least matched Coord_NBM in %d of %d configurations"
              " (paper: 12 of 15 decided).\n", indep_m_wins, m_comparisons);
}

}  // namespace
}  // namespace chk::bench

int main(int argc, char** argv) {
  const bool warm = chk::bench::prefetch_enabled(argc, argv);
  benchmark::Initialize(&argc, argv);
  chk::bench::register_benchmarks();
  if (warm) chk::bench::prefetch();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  chk::bench::print_table();
  chk::bench::write_bench_json(
      "BENCH_table1.json",
      chk::bench::table_json("table1_overhead_per_checkpoint",
                             chk::harness::table1_rows(), chk::bench::table1_schemes()));
  return 0;
}
